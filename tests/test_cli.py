"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Keep CLI runs out of the user's real result cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestCLI:
    def test_fig7_runs(self, capsys):
        assert main(["fig7", "--job-count", "100"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out
        assert "[fig7:" in out

    def test_table2_with_job_override(self, capsys):
        assert main(["table2", "--job-count", "24"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "MCCK" in out

    def test_motivation_job_mapping(self, capsys):
        assert main(["motivation", "--job-count", "30"]) == 0
        out = capsys.readouterr().out
        assert "core utilization" in out.lower()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_bad_worker_count_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig7", "--jobs", "0"])

    def test_seed_flag(self, capsys):
        main(["fig7", "--job-count", "50", "--seed", "7"])
        first = capsys.readouterr().out
        main(["fig7", "--job-count", "50", "--seed", "7"])
        second = capsys.readouterr().out
        # Deterministic output modulo the timing lines.
        strip = lambda s: [l for l in s.splitlines() if not l.startswith("[")]
        assert strip(first) == strip(second)

    def test_no_cache_recomputes(self, capsys):
        main(["fig7", "--job-count", "50", "--no-cache"])
        main(["fig7", "--job-count", "50", "--no-cache"])
        out = capsys.readouterr().out
        assert "0 computed" not in out

    def test_warm_cache_rerun_serves_cells(self, capsys):
        main(["table2", "--job-count", "24"])
        capsys.readouterr()
        main(["table2", "--job-count", "24"])
        out = capsys.readouterr().out
        assert "(0 computed" in out

    def test_clear_cache_flag(self, capsys):
        main(["fig7", "--job-count", "50"])
        capsys.readouterr()
        assert main(["fig7", "--job-count", "50", "--clear-cache"]) == 0
        out = capsys.readouterr().out
        assert "(1 computed, 0 cached)" in out

    def test_save_writes_artifact(self, tmp_path, monkeypatch, capsys):
        results = tmp_path / "results"
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(results))
        assert main(["fig7", "--job-count", "50", "--save"]) == 0
        saved = results / "fig7.txt"
        assert saved.exists()
        assert "Fig. 7" in saved.read_text()


class TestObservabilityFlags:
    """--profile / --trace / --metrics versus explicit parallelism."""

    def test_profile_with_parallel_jobs_is_an_error(self, capsys):
        # --profile used to silently discard an explicit --jobs 2.
        with pytest.raises(SystemExit):
            main(["fig7", "--job-count", "50", "--profile", "--jobs", "2"])
        assert "--profile" in capsys.readouterr().err

    def test_trace_with_parallel_jobs_is_an_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main([
                "fig7", "--job-count", "50",
                "--trace", str(tmp_path / "t.json"), "--jobs", "4",
            ])
        assert "--trace" in capsys.readouterr().err

    def test_metrics_with_parallel_jobs_is_an_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main([
                "fig7", "--job-count", "50",
                "--metrics", str(tmp_path / "m.txt"), "--jobs", "2",
            ])
        assert "--metrics" in capsys.readouterr().err

    def test_explicit_single_job_is_compatible(self, capsys):
        assert main(["fig7", "--job-count", "50", "--profile", "--jobs", "1"]) == 0
        assert "sim profiler" in capsys.readouterr().out

    def test_trace_writes_valid_json(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["table2", "--job-count", "12", "--trace", str(path)]) == 0
        assert "[trace:" in capsys.readouterr().out
        import json

        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "M" for e in events)

    def test_audit_run_reports_clean(self, capsys):
        assert main(["table2", "--job-count", "12", "--audit"]) == 0
        out = capsys.readouterr().out
        assert "[audit:" in out
        assert "0 violation(s)" in out

    def test_audit_with_parallel_jobs_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig7", "--job-count", "50", "--audit", "--jobs", "4"])
        assert "--audit" in capsys.readouterr().err

    def test_metrics_writes_summary(self, tmp_path, capsys):
        path = tmp_path / "metrics.txt"
        assert main(["table2", "--job-count", "12", "--metrics", str(path)]) == 0
        assert "[metrics:" in capsys.readouterr().out
        text = path.read_text()
        assert "schedd.jobs_submitted" in text
        assert "observability summary" in text


class TestNetworkFlags:
    """--net-loss / --net-delay / --net-partition and the consumer guard."""

    def test_netchaos_with_flags_runs(self, capsys):
        assert main([
            "ext-netchaos", "--job-count", "12",
            "--net-loss", "0.05",
            "--net-delay", "0.02",
            "--net-partition", "10:20:startd:*",
        ]) == 0
        out = capsys.readouterr().out
        assert "X6" in out
        assert "retrans" in out

    @pytest.mark.parametrize(
        "flags",
        [
            ["--net-loss", "0.05"],
            ["--net-delay", "0.1"],
            ["--net-partition", "10:20:*"],
            ["--fault-rate", "2.0"],
        ],
    )
    def test_flag_without_consumer_is_an_error(self, flags, capsys):
        # Satellite: a fabric/fault knob passed with an experiment that
        # would silently ignore it must fail loudly, not run.
        with pytest.raises(SystemExit):
            main(["fig7", "--job-count", "50", *flags])
        assert flags[0] in capsys.readouterr().err

    def test_bad_net_loss_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["ext-netchaos", "--net-loss", "1.5"])
        assert "--net-loss" in capsys.readouterr().err

    def test_bad_partition_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["ext-netchaos", "--net-partition", "bogus"])
        assert "--net-partition" in capsys.readouterr().err
