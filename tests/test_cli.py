"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Keep CLI runs out of the user's real result cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestCLI:
    def test_fig7_runs(self, capsys):
        assert main(["fig7", "--job-count", "100"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out
        assert "[fig7:" in out

    def test_table2_with_job_override(self, capsys):
        assert main(["table2", "--job-count", "24"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "MCCK" in out

    def test_motivation_job_mapping(self, capsys):
        assert main(["motivation", "--job-count", "30"]) == 0
        out = capsys.readouterr().out
        assert "core utilization" in out.lower()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_bad_worker_count_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig7", "--jobs", "0"])

    def test_seed_flag(self, capsys):
        main(["fig7", "--job-count", "50", "--seed", "7"])
        first = capsys.readouterr().out
        main(["fig7", "--job-count", "50", "--seed", "7"])
        second = capsys.readouterr().out
        # Deterministic output modulo the timing lines.
        strip = lambda s: [l for l in s.splitlines() if not l.startswith("[")]
        assert strip(first) == strip(second)

    def test_no_cache_recomputes(self, capsys):
        main(["fig7", "--job-count", "50", "--no-cache"])
        main(["fig7", "--job-count", "50", "--no-cache"])
        out = capsys.readouterr().out
        assert "0 computed" not in out

    def test_warm_cache_rerun_serves_cells(self, capsys):
        main(["table2", "--job-count", "24"])
        capsys.readouterr()
        main(["table2", "--job-count", "24"])
        out = capsys.readouterr().out
        assert "(0 computed" in out

    def test_clear_cache_flag(self, capsys):
        main(["fig7", "--job-count", "50"])
        capsys.readouterr()
        assert main(["fig7", "--job-count", "50", "--clear-cache"]) == 0
        out = capsys.readouterr().out
        assert "(1 computed, 0 cached)" in out

    def test_save_writes_artifact(self, tmp_path, monkeypatch, capsys):
        results = tmp_path / "results"
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(results))
        assert main(["fig7", "--job-count", "50", "--save"]) == 0
        saved = results / "fig7.txt"
        assert saved.exists()
        assert "Fig. 7" in saved.read_text()
