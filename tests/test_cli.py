"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import main


class TestCLI:
    def test_fig7_runs(self, capsys):
        assert main(["fig7", "--jobs", "100"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out
        assert "[fig7:" in out

    def test_table2_with_job_override(self, capsys):
        assert main(["table2", "--jobs", "24"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "MCCK" in out

    def test_motivation_job_mapping(self, capsys):
        assert main(["motivation", "--jobs", "30"]) == 0
        out = capsys.readouterr().out
        assert "core utilization" in out.lower()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_seed_flag(self, capsys):
        main(["fig7", "--jobs", "50", "--seed", "7"])
        first = capsys.readouterr().out
        main(["fig7", "--jobs", "50", "--seed", "7"])
        second = capsys.readouterr().out
        # Deterministic output modulo the timing line.
        strip = lambda s: [l for l in s.splitlines() if not l.startswith("[")]
        assert strip(first) == strip(second)
