"""Tests for post-run analysis and replication statistics."""

import math

import pytest

from repro.metrics import (
    Replicated,
    balance_stats,
    compare,
    concurrency_profile,
    offload_stats,
    queue_stats,
    replicate,
)
from repro.mpss import JobRunResult
from repro.phi import XeonPhi
from repro.sim import Environment


def result(job_id, start, end):
    return JobRunResult(job_id=job_id, start=start, end=end,
                        status="completed", offloads_run=1)


def device_with_offloads(env, spec):
    """spec: list of (threads, work, delay_before_start)."""
    phi = XeonPhi(env, name="micX")

    def job(env, owner, threads, work, delay):
        yield env.timeout(delay)
        phi.register_process(owner)
        yield from phi.run_offload(owner, threads, work)
        phi.unregister_process(owner)

    for i, (threads, work, delay) in enumerate(spec):
        env.process(job(env, f"j{i}", threads, work, delay))
    env.run()
    return phi


class TestOffloadStats:
    def test_solo_offloads_have_unit_slowdown(self):
        env = Environment()
        phi = device_with_offloads(env, [(240, 10.0, 0.0), (240, 5.0, 20.0)])
        stats = offload_stats(phi)
        assert stats.offloads == 2
        assert stats.total_work == 15.0
        assert stats.mean_slowdown == pytest.approx(1.0)
        assert stats.sharing_overhead == pytest.approx(0.0)
        assert stats.killed == 0

    def test_oversubscribed_offloads_show_slowdown(self):
        env = Environment()
        phi = device_with_offloads(env, [(240, 10.0, 0.0), (240, 10.0, 0.0)])
        stats = offload_stats(phi)
        assert stats.mean_slowdown > 2.0
        assert stats.max_slowdown >= stats.mean_slowdown
        assert stats.sharing_overhead > 1.0

    def test_empty_device(self):
        env = Environment()
        stats = offload_stats(XeonPhi(env))
        assert stats.offloads == 0
        assert stats.mean_slowdown == 1.0


class TestQueueStats:
    def test_waits_default_submit_zero(self):
        stats = queue_stats([result("a", 5, 10), result("b", 15, 30)])
        assert stats.mean_wait == 10.0
        assert stats.max_wait == 15.0
        assert stats.jobs == 2

    def test_submit_times_respected(self):
        stats = queue_stats(
            [result("a", 5, 10)], submit_times={"a": 4.0}
        )
        assert stats.mean_wait == 1.0

    def test_empty(self):
        stats = queue_stats([])
        assert stats.jobs == 0
        assert stats.mean_wait == 0.0


class TestBalanceStats:
    def test_work_split(self):
        env = Environment()
        a = device_with_offloads(env, [(60, 10.0, 0.0)])
        env2 = Environment()
        b = device_with_offloads(env2, [(60, 30.0, 0.0)])
        stats = balance_stats([a, b])
        assert stats.work_per_device == (10.0, 30.0)
        assert stats.work_imbalance == pytest.approx(30 / 20)

    def test_empty_cluster(self):
        assert balance_stats([]).work_imbalance == 1.0


class TestConcurrencyProfile:
    def test_profile_tracks_occupancy(self):
        env = Environment()
        phi = device_with_offloads(env, [(240, 10.0, 0.0)])
        profile = concurrency_profile(phi, 0, 20, buckets=2)
        assert profile[0] == pytest.approx(1.0)
        assert profile[1] == pytest.approx(0.0)

    def test_invalid_args(self):
        env = Environment()
        phi = XeonPhi(env)
        with pytest.raises(ValueError):
            concurrency_profile(phi, 5, 5)
        with pytest.raises(ValueError):
            concurrency_profile(phi, 0, 5, buckets=0)


class TestReplication:
    def test_replicate_collects_values(self):
        rep = replicate(lambda seed: float(seed * 2), seeds=[1, 2, 3])
        assert rep.values == (2.0, 4.0, 6.0)
        assert rep.mean == 4.0
        assert rep.n == 3
        assert rep.minimum == 2.0 and rep.maximum == 6.0

    def test_ci_widens_with_spread(self):
        tight = Replicated((10.0, 10.1, 9.9))
        wide = Replicated((5.0, 15.0, 10.0))
        assert (tight.ci95[1] - tight.ci95[0]) < (wide.ci95[1] - wide.ci95[0])

    def test_single_value_degenerate(self):
        rep = Replicated((7.0,))
        assert rep.std == 0.0
        assert rep.ci95 == (7.0, 7.0)

    def test_str(self):
        assert "n=2" in str(Replicated((1.0, 2.0)))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: 0.0, seeds=[])

    def test_compare_detects_gap(self):
        a = Replicated((10.0, 10.5, 9.5, 10.2))
        b = Replicated((20.0, 19.5, 20.5, 20.1))
        assert compare(a, b) < -5  # b is clearly larger

    def test_compare_identical_means(self):
        a = Replicated((10.0, 10.0))
        assert compare(a, a) == 0.0

    def test_compare_needs_replications(self):
        with pytest.raises(ValueError):
            compare(Replicated((1.0,)), Replicated((1.0, 2.0)))


class TestCondorTools:
    def test_condor_q_and_status(self):
        import random

        from repro.cluster import ComputeNode
        from repro.condor import CondorPool, RandomPlacement, condor_q, condor_status
        from repro.workloads import generate_table1_jobs

        env = Environment()
        nodes = [ComputeNode(env, f"n{i}") for i in range(2)]
        pool = CondorPool(env, nodes, RandomPlacement(random.Random(0)),
                          cycle_interval=2.0)
        pool.submit(generate_table1_jobs(6, seed=1))
        pool.start()
        env.run(until=5)

        q = condor_q(pool.schedd)
        assert "Schedd queue" in q
        assert "running" in q
        status = condor_status(pool)
        assert "slot1@n0" in status
        assert "mic0" in status
        env.run(until=pool.schedd.all_done())
        q_done = condor_q(pool.schedd, show_completed=True)
        assert "Completed" in q_done
