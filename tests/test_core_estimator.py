"""Tests for the automatic resource estimator (the paper's future work)."""

import numpy as np
import pytest

from repro.core import ResourceEstimator
from repro.workloads import (
    HostPhase,
    JobProfile,
    OffloadPhase,
    generate_table1_jobs,
)


def job(app, peak_mb, threads, job_id=None):
    return JobProfile(
        job_id=job_id or f"{app}-{peak_mb}-{threads}",
        app=app,
        phases=(HostPhase(1), OffloadPhase(work=1, threads=threads,
                                           memory_mb=peak_mb)),
        declared_memory_mb=peak_mb,
        declared_threads=threads,
    )


class TestObservation:
    def test_sample_count(self):
        estimator = ResourceEstimator()
        estimator.observe(job("KM", 500, 60))
        estimator.observe(job("KM", 700, 60))
        estimator.observe(job("SG", 3000, 60))
        assert estimator.sample_count("KM") == 2
        assert estimator.sample_count("SG") == 1
        assert estimator.sample_count("??") == 0

    def test_estimate_unknown_app_raises(self):
        with pytest.raises(KeyError):
            ResourceEstimator().estimate("ghost")


class TestEstimation:
    def test_estimate_covers_observed_range_with_headroom(self):
        estimator = ResourceEstimator(quantile=1.0, headroom=0.10)
        for mb in (500, 700, 900):
            estimator.observe(job("KM", mb, 60))
        estimate = estimator.estimate("KM")
        assert estimate.memory_mb >= 900 * 1.10 - 50  # quantized
        assert estimate.memory_mb % 50 == 0
        assert estimate.threads == 60
        assert estimate.samples == 3
        assert estimate.observed_peak_mb == 900

    def test_quantile_discounts_outliers(self):
        estimator = ResourceEstimator(quantile=0.5, headroom=0.0)
        for mb in [500] * 9 + [4000]:
            estimator.observe(job("A", mb, 60))
        assert estimator.estimate("A").memory_mb == 500

    def test_threads_use_observed_max(self):
        estimator = ResourceEstimator()
        estimator.observe(job("A", 100, 60))
        estimator.observe(job("A", 100, 180))
        assert estimator.estimate("A").threads == 180

    def test_declare_rewrites_profile(self):
        estimator = ResourceEstimator(quantile=1.0, headroom=0.0)
        estimator.observe(job("A", 2000, 120))
        naive = job("A", 100, 60, job_id="new")
        declared = estimator.declare(naive)
        assert declared.declared_memory_mb == 2000
        assert declared.declared_threads == 120
        assert declared.job_id == "new"

    def test_declare_unknown_app_passthrough(self):
        estimator = ResourceEstimator()
        original = job("A", 100, 60)
        assert estimator.declare(original) is original

    def test_coverage_on_real_workloads(self):
        # Train on half the SG instances; the estimate should cover the
        # vast majority of the held-out half.
        jobs = [j for j in generate_table1_jobs(400, seed=9) if j.app == "SG"]
        train, test = jobs[::2], jobs[1::2]
        estimator = ResourceEstimator(quantile=0.95, headroom=0.10)
        estimator.observe_many(train)
        coverage = estimator.coverage("SG", test)
        assert coverage >= 0.9

    def test_coverage_with_no_relevant_profiles(self):
        estimator = ResourceEstimator()
        estimator.observe(job("A", 100, 60))
        assert estimator.coverage("A", [job("B", 100, 60)]) == 1.0

    def test_would_cover(self):
        estimator = ResourceEstimator(quantile=1.0, headroom=0.0)
        estimator.observe(job("A", 1000, 120))
        estimate = estimator.estimate("A")
        assert estimate.would_cover(job("A", 900, 100))
        assert not estimate.would_cover(job("A", 1200, 100))
        assert not estimate.would_cover(job("A", 900, 240))

    @pytest.mark.parametrize(
        "kwargs",
        [{"quantile": 0}, {"quantile": 1.5}, {"headroom": -0.1},
         {"quantum_mb": 0}],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            ResourceEstimator(**kwargs)
