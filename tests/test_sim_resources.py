"""Unit tests for Resource, PriorityResource, Container and Store."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_under_capacity(self, env):
        res = Resource(env, capacity=2)
        log = []

        def proc(env, tag):
            with res.request() as req:
                yield req
                log.append((tag, env.now))
                yield env.timeout(5)

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert log == [("a", 0), ("b", 0)]

    def test_fifo_queueing(self, env):
        res = Resource(env, capacity=1)
        log = []

        def proc(env, tag, hold):
            with res.request() as req:
                yield req
                log.append((tag, env.now))
                yield env.timeout(hold)

        env.process(proc(env, "first", 3))
        env.process(proc(env, "second", 3))
        env.process(proc(env, "third", 3))
        env.run()
        assert log == [("first", 0), ("second", 3), ("third", 6)]

    def test_count_and_queue_length(self, env):
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def waiter(env):
            with res.request() as req:
                yield req

        env.process(holder(env))
        env.process(waiter(env))
        env.run(until=1)
        assert res.count == 1
        assert res.queue_length == 1

    def test_context_manager_releases(self, env):
        res = Resource(env, capacity=1)

        def proc(env):
            with res.request() as req:
                yield req
            # Released on exit even though we still run afterwards.
            yield env.timeout(1)

        env.process(proc(env))
        env.run()
        assert res.count == 0

    def test_cancel_waiting_request(self, env):
        res = Resource(env, capacity=1)
        got = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def impatient(env):
            req = res.request()
            result = yield req | env.timeout(2)
            if req not in result:
                req.cancel()
                got.append("gave up")
            else:  # pragma: no cover - not expected
                res.release(req)

        def patient(env):
            yield env.timeout(1)
            with res.request() as req:
                yield req
                got.append(("patient", env.now))

        env.process(holder(env))
        env.process(impatient(env))
        env.process(patient(env))
        env.run()
        assert "gave up" in got
        assert ("patient", 10) in got

    def test_release_unknown_request_is_noop(self, env):
        res = Resource(env, capacity=1)
        other = Resource(env, capacity=1)
        req = other.request()
        res.release(req)  # Must not raise.
        env.run()


class TestPriorityResource:
    def test_priority_order(self, env):
        res = PriorityResource(env, capacity=1)
        log = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(5)

        def proc(env, tag, priority, delay):
            yield env.timeout(delay)
            with res.request(priority=priority) as req:
                yield req
                log.append(tag)
                yield env.timeout(1)

        env.process(holder(env))
        env.process(proc(env, "low", 10, 1))
        env.process(proc(env, "high", 0, 2))
        env.run()
        assert log == ["high", "low"]

    def test_equal_priority_is_fifo(self, env):
        res = PriorityResource(env, capacity=1)
        log = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(5)

        def proc(env, tag):
            with res.request(priority=1) as req:
                yield req
                log.append(tag)

        env.process(holder(env))
        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert log == ["a", "b"]


class TestContainer:
    def test_init_validation(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=0)
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=11)

    def test_put_get_levels(self, env):
        tank = Container(env, capacity=100, init=50)

        def proc(env):
            yield tank.put(25)
            assert tank.level == 75
            yield tank.get(70)
            assert tank.level == 5

        env.process(proc(env))
        env.run()
        assert tank.level == 5

    def test_get_blocks_until_available(self, env):
        tank = Container(env, capacity=100, init=0)
        log = []

        def consumer(env):
            yield tank.get(10)
            log.append(env.now)

        def producer(env):
            yield env.timeout(4)
            yield tank.put(10)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert log == [4]

    def test_put_blocks_at_capacity(self, env):
        tank = Container(env, capacity=10, init=10)
        log = []

        def producer(env):
            yield tank.put(5)
            log.append(env.now)

        def consumer(env):
            yield env.timeout(3)
            yield tank.get(5)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log == [3]

    def test_nonpositive_amounts_rejected(self, env):
        tank = Container(env, capacity=10)
        with pytest.raises(ValueError):
            tank.put(0)
        with pytest.raises(ValueError):
            tank.get(-1)

    def test_conservation(self, env):
        # Total put == total got + level at all times.
        tank = Container(env, capacity=50, init=0)
        totals = {"put": 0.0, "got": 0.0}

        def producer(env, amount, period):
            while env.now < 40:
                yield tank.put(amount)
                totals["put"] += amount
                yield env.timeout(period)

        def consumer(env, amount, period):
            while env.now < 40:
                yield tank.get(amount)
                totals["got"] += amount
                yield env.timeout(period)

        env.process(producer(env, 3, 1))
        env.process(consumer(env, 2, 1))
        env.run(until=100)
        assert totals["put"] - totals["got"] == pytest.approx(tank.level)

    def test_get_fifo_no_starvation(self, env):
        tank = Container(env, capacity=100, init=0)
        log = []

        def consumer(env, tag, amount):
            yield tank.get(amount)
            log.append(tag)

        def producer(env):
            yield env.timeout(1)
            yield tank.put(100)

        env.process(consumer(env, "big", 60))
        env.process(consumer(env, "small", 10))
        env.process(producer(env))
        env.run()
        # FIFO: the big request is served first even though the small one
        # could have been satisfied earlier.
        assert log == ["big", "small"]


class TestStore:
    def test_put_get_fifo(self, env):
        store = Store(env)
        got = []

        def producer(env):
            for item in ("x", "y", "z"):
                yield store.put(item)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["x", "y", "z"]

    def test_get_blocks_when_empty(self, env):
        store = Store(env)
        log = []

        def consumer(env):
            item = yield store.get()
            log.append((env.now, item))

        def producer(env):
            yield env.timeout(7)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert log == [(7, "late")]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put(1)
            yield store.put(2)
            log.append(env.now)

        def consumer(env):
            yield env.timeout(5)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log == [5]

    def test_filtered_get(self, env):
        store = Store(env)
        got = []

        def producer(env):
            for item in (1, 2, 3, 4):
                yield store.put(item)

        def consumer(env):
            item = yield store.get(lambda x: x % 2 == 0)
            got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [2]
        assert store.items == [1, 3, 4]

    def test_unmatched_filter_does_not_block_others(self, env):
        store = Store(env)
        got = []

        def never(env):
            item = yield store.get(lambda x: x == "unicorn")
            got.append(item)  # pragma: no cover

        def normal(env):
            item = yield store.get()
            got.append(item)

        def producer(env):
            yield env.timeout(1)
            yield store.put("plain")

        env.process(never(env))
        env.process(normal(env))
        env.process(producer(env))
        env.run(until=10)
        assert got == ["plain"]

    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)
