"""End-to-end integration tests: MC / MCC / MCCK on small job sets.

These assert the paper's qualitative claims and the safety invariants on
full pipeline runs (Condor + COSMIC + MPSS + device).
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    ComputeNode,
    run_configuration,
    run_mc,
    run_mcc,
    run_mcck,
)
from repro.sim import Environment
from repro.workloads import generate_table1_jobs

SMALL = ClusterConfig(nodes=2, cycle_interval=2.0)


@pytest.fixture(scope="module")
def jobs():
    return generate_table1_jobs(40, seed=7)


@pytest.fixture(scope="module")
def results(jobs):
    return {
        "MC": run_mc(jobs, SMALL),
        "MCC": run_mcc(jobs, SMALL),
        "MCCK": run_mcck(jobs, SMALL),
    }


class TestEndToEnd:
    def test_all_jobs_complete_everywhere(self, results, jobs):
        for result in results.values():
            assert result.job_count == len(jobs)
            assert result.completed_jobs == len(jobs)
            assert result.failed_jobs == 0

    def test_sharing_reduces_makespan(self, results):
        assert results["MCC"].makespan < results["MC"].makespan
        assert results["MCCK"].makespan < results["MC"].makespan

    def test_sharing_raises_utilization(self, results):
        assert (
            results["MCC"].mean_core_utilization
            > results["MC"].mean_core_utilization
        )

    def test_mc_utilization_in_motivation_band(self, results):
        # SIII: exclusive allocation leaves cores mostly idle (~38-63%
        # in the paper; we accept a slightly wider band on 40 jobs).
        assert 0.25 <= results["MC"].mean_core_utilization <= 0.70

    def test_no_oversubscription_in_managed_modes(self, results):
        for name in ("MC", "MCC", "MCCK"):
            assert results[name].oom_kills == 0
            assert results[name].memory_limit_kills == 0

    def test_mcck_made_packing_decisions(self, results):
        assert results["MCCK"].packing_decisions > 0

    def test_negotiation_cycles_counted(self, results):
        for result in results.values():
            assert result.negotiation_cycles >= 1

    def test_run_configuration_dispatch(self, jobs):
        result = run_configuration("MC", jobs, SMALL)
        assert result.configuration == "MC"
        with pytest.raises(ValueError):
            run_configuration("XYZ", jobs, SMALL)


class TestDeterminism:
    def test_same_seed_same_makespan(self, jobs):
        a = run_mcc(jobs, SMALL)
        b = run_mcc(jobs, SMALL)
        assert a.makespan == b.makespan

    def test_mcck_deterministic(self, jobs):
        a = run_mcck(jobs, SMALL)
        b = run_mcck(jobs, SMALL)
        assert a.makespan == b.makespan

    def test_different_placement_seed_changes_mcc(self, jobs):
        from dataclasses import replace

        a = run_mcc(jobs, SMALL)
        b = run_mcc(jobs, replace(SMALL, seed=99))
        # Random placement differs; makespans almost surely differ.
        assert a.makespan != b.makespan


class TestSafetyInvariants:
    def test_thread_budget_never_exceeded_under_cosmic(self, jobs):
        config = ClusterConfig(nodes=2, cycle_interval=2.0)
        env_holder = {}

        # Run MCC and then inspect device telemetry directly.
        result = run_mcc(jobs, config)
        # busy_threads telemetry is clamped at hardware limit by
        # construction; the invariant is on demand under COSMIC:
        for r in result.job_results:
            assert r.status == "completed"

    def test_resident_memory_within_card(self, jobs):
        # Re-run MCC keeping handles on the devices.
        import random as _random

        from repro.condor import CondorPool, RandomPlacement

        env = Environment()
        nodes = [ComputeNode(env, f"n{i}", mode="cosmic") for i in range(2)]
        pool = CondorPool(env, nodes, RandomPlacement(_random.Random(1)),
                          cycle_interval=2.0)
        pool.submit(list(jobs))
        pool.run_to_completion()
        for node in nodes:
            for device in node.devices:
                peak = max(device.telemetry.resident_memory_mb.values, default=0)
                assert peak <= device.spec.usable_memory_mb

    def test_gated_thread_demand_within_budget(self, jobs):
        import random as _random

        from repro.condor import CondorPool, RandomPlacement

        env = Environment()
        nodes = [ComputeNode(env, f"n{i}", mode="cosmic") for i in range(2)]
        pool = CondorPool(env, nodes, RandomPlacement(_random.Random(1)),
                          cycle_interval=2.0)
        pool.submit(list(jobs))

        violations = []

        def monitor(env):
            while True:
                for node in nodes:
                    for device in node.devices:
                        if device.demanded_threads > device.spec.hardware_threads:
                            violations.append((env.now, device.name))
                yield env.timeout(0.5)

        env.process(monitor(env))
        pool.start()
        env.run(until=pool.schedd.all_done())
        assert not violations


class TestConfigValidation:
    def test_invalid_cluster_config(self):
        with pytest.raises(ValueError):
            ClusterConfig(nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(devices_per_node=0)

    def test_resized_preserves_other_fields(self):
        config = ClusterConfig(nodes=8, cycle_interval=3.0)
        resized = config.resized(4)
        assert resized.nodes == 4
        assert resized.cycle_interval == 3.0

    def test_oversized_job_rejected(self):
        from repro.workloads import HostPhase, JobProfile, OffloadPhase

        monster = JobProfile(
            job_id="monster",
            app="t",
            phases=(HostPhase(1), OffloadPhase(work=1, threads=60,
                                               memory_mb=9000)),
            declared_memory_mb=9000,
            declared_threads=60,
        )
        with pytest.raises(ValueError):
            run_mc([monster], SMALL)

    def test_empty_job_set_rejected(self):
        with pytest.raises(ValueError):
            run_mc([], SMALL)
