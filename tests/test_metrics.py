"""Tests for the metrics package: footprint, makespan, utilization, report."""

import pytest

from repro.metrics import (
    ascii_bar_chart,
    find_footprint,
    format_series,
    format_table,
    makespan_of,
    mean_busy_cores,
    percent_reduction,
    cluster_utilization,
    summarize,
)
from repro.mpss import JobRunResult
from repro.phi import XeonPhi
from repro.sim import Environment


def result(job_id, start, end, status="completed"):
    return JobRunResult(job_id=job_id, start=start, end=end, status=status,
                        offloads_run=1)


class TestFootprint:
    def test_finds_smallest_size(self):
        # Makespan halves with every doubling: sizes 1..8.
        makespans = {n: 800 / n for n in range(1, 9)}
        fp = find_footprint(lambda n: makespans[n], target_makespan=200, max_size=8)
        assert fp.cluster_size == 4
        assert fp.found
        assert fp.makespans[4] == 200
        assert fp.reduction_vs(8) == pytest.approx(0.5)

    def test_unreachable_target(self):
        fp = find_footprint(lambda n: 1000.0, target_makespan=10, max_size=4)
        assert fp.cluster_size is None
        assert not fp.found
        assert fp.reduction_vs(8) is None
        assert len(fp.makespans) == 4

    def test_scan_stops_at_first_hit(self):
        calls = []

        def runner(n):
            calls.append(n)
            return 10.0

        find_footprint(runner, target_makespan=10, max_size=8)
        assert calls == [1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            find_footprint(lambda n: 1.0, target_makespan=0, max_size=4)
        with pytest.raises(ValueError):
            find_footprint(lambda n: 1.0, target_makespan=1, max_size=0)


class TestMakespan:
    def test_makespan_of(self):
        results = [result("a", 0, 10), result("b", 5, 30), result("c", 0, 20)]
        assert makespan_of(results) == 30

    def test_empty(self):
        assert makespan_of([]) == 0.0
        stats = summarize([])
        assert stats.jobs == 0
        assert stats.throughput == 0.0

    def test_summarize(self):
        results = [result("a", 0, 10), result("b", 10, 40)]
        stats = summarize(results)
        assert stats.makespan == 40
        assert stats.mean_wall_time == pytest.approx(20.0)
        assert stats.max_wall_time == 30.0
        assert stats.mean_queue_to_start == pytest.approx(5.0)
        assert stats.throughput == pytest.approx(2 / 40)


class TestUtilization:
    def test_cluster_utilization(self):
        env = Environment()
        devices = [XeonPhi(env, name=f"mic{i}") for i in range(2)]
        devices[0].telemetry.busy_cores.record(0, 30)
        devices[1].telemetry.busy_cores.record(0, 60)
        summary = cluster_utilization(devices, 0, 10)
        assert summary.per_device == (0.5, 1.0)
        assert summary.mean == pytest.approx(0.75)
        assert summary.minimum == 0.5
        assert summary.maximum == 1.0

    def test_mean_busy_cores(self):
        env = Environment()
        devices = [XeonPhi(env, name=f"mic{i}") for i in range(2)]
        devices[0].telemetry.busy_cores.record(0, 15)
        devices[1].telemetry.busy_cores.record(0, 45)
        assert mean_busy_cores(devices, 0, 10) == pytest.approx(60.0)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a   | bb" in lines[1]
        assert all("|" in line for line in lines[1:] if "-+-" not in line)

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_format_series(self):
        text = format_series("x", [1, 2], {"MC": [10.0, 20.0], "MCC": [5.0, 9.0]})
        assert "MC" in text and "MCC" in text
        assert "20" in text and "9" in text

    def test_format_series_length_mismatch_names_series(self):
        # A short series used to surface as a bare IndexError from deep
        # inside the row loop; it must be a ValueError naming the series.
        with pytest.raises(ValueError, match="MCC"):
            format_series("x", [1, 2, 3], {"MC": [1.0, 2.0, 3.0], "MCC": [1.0]})

    def test_format_series_rejects_long_series_too(self):
        with pytest.raises(ValueError, match="MC"):
            format_series("x", [1], {"MC": [1.0, 2.0]})

    def test_percent_reduction(self):
        assert percent_reduction(100, 73) == pytest.approx(27.0)
        with pytest.raises(ValueError):
            percent_reduction(0, 1)

    def test_ascii_bar_chart(self):
        chart = ascii_bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_ascii_bar_chart_empty_and_mismatch(self):
        assert ascii_bar_chart([], []) == ""
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])
