"""Unit tests for ComputeNode: modes, device picking, execution regimes."""

import pytest

from repro.cluster import ComputeNode, run_best_fit
from repro.cluster.simulation import ClusterConfig
from repro.sim import Environment
from repro.workloads import HostPhase, JobProfile, OffloadPhase, generate_table1_jobs


def make_profile(job_id="j", memory=1000.0, threads=60, work=5.0):
    return JobProfile(
        job_id=job_id,
        app="t",
        phases=(HostPhase(1), OffloadPhase(work=work, threads=threads,
                                           memory_mb=memory)),
        declared_memory_mb=memory,
        declared_threads=threads,
    )


@pytest.fixture
def env():
    return Environment()


class TestConstruction:
    def test_invalid_mode_rejected(self, env):
        with pytest.raises(ValueError):
            ComputeNode(env, "n", mode="yolo")

    def test_invalid_device_count(self, env):
        with pytest.raises(ValueError):
            ComputeNode(env, "n", num_devices=0)

    def test_cosmic_mode_wires_middleware(self, env):
        node = ComputeNode(env, "n", mode="cosmic", num_devices=2)
        assert all(c is not None for c in node.cosmics)
        assert len(node.devices) == 2
        assert node.devices[1].name == "n/mic1"

    def test_exclusive_mode_has_no_cosmic(self, env):
        node = ComputeNode(env, "n", mode="exclusive")
        assert node.cosmics == [None]

    def test_repr(self, env):
        assert "mode=cosmic" in repr(ComputeNode(env, "n"))


class TestDeviceStates:
    def test_cosmic_states_track_admission(self, env):
        node = ComputeNode(env, "n", mode="cosmic")

        def run(env):
            result = yield from node.execute(make_profile(memory=3000))
            return result

        env.process(run(env))
        env.run(until=2)
        states = node.device_states()
        assert states[0].free_declared_mb == 8192 - 3000
        assert states[0].resident_jobs == 1
        env.run()
        assert node.device_states()[0].free_declared_mb == 8192

    def test_exclusive_states_binary(self, env):
        node = ComputeNode(env, "n", mode="exclusive")

        def run(env):
            yield from node.execute(make_profile(), exclusive=True)

        env.process(run(env))
        env.run(until=2)
        state = node.device_states()[0]
        assert state.free_declared_mb == 0.0
        assert state.resident_jobs == 1


class TestDevicePicking:
    def test_explicit_index_validated(self, env):
        node = ComputeNode(env, "n", num_devices=2)

        def run(env):
            yield from node.execute(make_profile(), device_index=5)

        proc = env.process(run(env))
        with pytest.raises(ValueError):
            env.run()
        assert not proc.ok

    def test_cosmic_prefers_most_free_memory(self, env):
        node = ComputeNode(env, "n", mode="cosmic", num_devices=2)
        done = []

        def run(env, job_id, work):
            result = yield from node.execute(
                make_profile(job_id, memory=3000, work=work)
            )
            done.append((result.job_id, env.now))

        env.process(run(env, "a", 20.0))
        env.process(run(env, "b", 20.0))
        env.run()
        # Both devices got one job: they ran fully parallel.
        assert all(end == pytest.approx(21.0) for _id, end in done)

    def test_unsafe_mode_spreads_by_load(self, env):
        node = ComputeNode(env, "n", mode="unsafe", num_devices=2)
        done = []

        def run(env, job_id):
            result = yield from node.execute(make_profile(job_id, work=10))
            done.append(result)

        env.process(run(env, "a"))
        env.process(run(env, "b"))
        env.run()
        assert {r.status for r in done} == {"completed"}


class TestBestFit:
    def test_best_fit_runs_end_to_end(self):
        jobs = generate_table1_jobs(30, seed=3)
        result = run_best_fit(jobs, ClusterConfig(nodes=2, cycle_interval=2.0))
        assert result.configuration == "BESTFIT"
        assert result.completed_jobs == 30
