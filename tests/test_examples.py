"""Every example script must run clean (guards against doc rot)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Knapsack packs" in out
        assert "MCCK" in out

    def test_real_workloads(self):
        out = run_example("real_workloads.py", "60")
        assert "Table II" in out
        assert "footprint" in out.lower()

    def test_sensitivity(self):
        out = run_example("sensitivity.py", "60")
        assert "Fig. 8" in out
        assert "Fig. 9" in out

    def test_oversubscription_demo(self):
        out = run_example("oversubscription_demo.py")
        assert "OOM kills" in out
        assert "cosmic" in out

    def test_dynamic_arrivals(self):
        out = run_example("dynamic_arrivals.py")
        assert "120/120 jobs completed" in out

    def test_fig2_fig3_timelines(self):
        out = run_example("fig2_fig3_timelines.py")
        assert "Fig. 2" in out
        assert "Fig. 3" in out
        assert "saves" in out

    def test_submit_file_workflow(self):
        out = run_example("submit_file_workflow.py")
        assert "parsed 40 jobs" in out
        assert "all invariants hold" in out
        assert "learned declaration" in out

    def test_every_example_is_covered(self):
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        covered = {
            "quickstart.py", "real_workloads.py", "sensitivity.py",
            "oversubscription_demo.py", "dynamic_arrivals.py",
            "fig2_fig3_timelines.py", "submit_file_workflow.py",
        }
        assert scripts == covered
