"""Integration tests: startd, collector, negotiator, and the full pool."""

import random

import pytest

from repro.cluster import ComputeNode
from repro.condor import (
    Collector,
    CondorPool,
    ExclusivePlacement,
    PinnedPlacement,
    RandomPlacement,
    Schedd,
    Startd,
)
from repro.sim import Environment
from repro.workloads import HostPhase, JobProfile, OffloadPhase


def make_profile(job_id, memory=1000.0, threads=60, work=5.0, host=1.0):
    return JobProfile(
        job_id=job_id,
        app="t",
        phases=(HostPhase(host), OffloadPhase(work=work, threads=threads,
                                              memory_mb=memory)),
        declared_memory_mb=memory,
        declared_threads=threads,
    )


@pytest.fixture
def env():
    return Environment()


class TestStartd:
    def test_snapshot_reflects_node(self, env):
        node = ComputeNode(env, "n0", mode="cosmic")
        startd = Startd(env, Schedd(env), node, slots=4)
        snapshot = startd.snapshot()
        assert snapshot.node == "n0"
        assert snapshot.free_slots == 4
        assert snapshot.devices[0].free_declared_mb == 8192

    def test_start_job_claims_slot_and_reports(self, env):
        node = ComputeNode(env, "n0", mode="cosmic")
        schedd = Schedd(env)
        startd = Startd(env, schedd, node, slots=2, dispatch_latency=0.5)
        record = schedd.submit(make_profile("j1"))
        startd.start_job(record, device_index=0, exclusive=False)
        assert startd.free_slots == 1
        env.run()
        assert startd.free_slots == 2
        assert schedd.get("j1").status == "Completed"
        assert schedd.get("j1").result.wall_time == pytest.approx(6.0)

    def test_exclusive_claims_device(self, env):
        node = ComputeNode(env, "n0", mode="exclusive")
        schedd = Schedd(env)
        startd = Startd(env, schedd, node, slots=4)
        record = schedd.submit(make_profile("j1"), sharing=False)
        startd.start_job(record, device_index=0, exclusive=True)
        assert startd.snapshot().devices_free == 0
        env.run()
        assert startd.snapshot().devices_free == 1

    def test_no_free_slot_raises(self, env):
        node = ComputeNode(env, "n0")
        schedd = Schedd(env)
        startd = Startd(env, schedd, node, slots=1)
        startd.start_job(schedd.submit(make_profile("a")), 0, False)
        with pytest.raises(RuntimeError):
            startd.start_job(schedd.submit(make_profile("b")), 0, False)

    def test_exclusive_double_claim_raises(self, env):
        node = ComputeNode(env, "n0", mode="exclusive")
        schedd = Schedd(env)
        startd = Startd(env, schedd, node, slots=4)
        startd.start_job(schedd.submit(make_profile("a"), sharing=False), 0, True)
        with pytest.raises(RuntimeError):
            startd.start_job(schedd.submit(make_profile("b"), sharing=False), 0, True)

    def test_exclusive_requires_device(self, env):
        node = ComputeNode(env, "n0", mode="exclusive")
        schedd = Schedd(env)
        startd = Startd(env, schedd, node, slots=4)
        with pytest.raises(ValueError):
            startd.start_job(schedd.submit(make_profile("a"), sharing=False),
                             None, True)

    def test_invalid_construction(self, env):
        node = ComputeNode(env, "n0")
        with pytest.raises(ValueError):
            Startd(env, Schedd(env), node, slots=0)
        with pytest.raises(ValueError):
            Startd(env, Schedd(env), node, dispatch_latency=-1)


class TestCollector:
    def test_register_and_snapshot(self, env):
        collector = Collector()
        schedd = Schedd(env)
        for i in range(3):
            collector.register(Startd(env, schedd, ComputeNode(env, f"n{i}")))
        assert len(collector) == 3
        assert [s.node for s in collector.snapshots()] == ["n0", "n1", "n2"]

    def test_duplicate_rejected(self, env):
        collector = Collector()
        schedd = Schedd(env)
        node = ComputeNode(env, "n0")
        collector.register(Startd(env, schedd, node))
        with pytest.raises(ValueError):
            collector.register(Startd(env, schedd, node))


def build_pool(env, policy, nodes=2, mode="cosmic", **kwargs):
    executors = [ComputeNode(env, f"n{i}", mode=mode) for i in range(nodes)]
    return CondorPool(env, executors, policy, **kwargs)


class TestPoolMC:
    def test_exclusive_serializes_per_device(self, env):
        pool = build_pool(env, ExclusivePlacement(), nodes=1, mode="exclusive",
                          cycle_interval=1.0, dispatch_latency=0.0)
        pool.submit([make_profile(f"j{i}", work=10, host=0) for i in range(3)])
        makespan = pool.run_to_completion()
        # 3 jobs, one device, ~10s each plus negotiation-cycle gaps.
        assert 30 <= makespan <= 35
        assert pool.schedd.unfinished_jobs == 0

    def test_exclusive_never_shares(self, env):
        pool = build_pool(env, ExclusivePlacement(), nodes=1, mode="exclusive",
                          cycle_interval=1.0)
        pool.submit([make_profile(f"j{i}") for i in range(4)])
        pool.run_to_completion()
        device = pool.startds[0].executor.devices[0]
        # Exclusive allocation: at most one offload ran at any time.
        assert max(device.telemetry.busy_threads.values, default=0) <= 60


class TestPoolMCC:
    def test_random_policy_shares_devices(self, env):
        pool = build_pool(env, RandomPlacement(random.Random(3)), nodes=1,
                          cycle_interval=1.0)
        pool.submit([make_profile(f"j{i}", memory=1000, work=10, host=0)
                     for i in range(4)])
        makespan = pool.run_to_completion()
        node = pool.startds[0].executor
        assert node.cosmics[0].stats.peak_concurrent_jobs >= 2
        # Sharing must beat strict serialization (4 x 10s) even with the
        # concurrency interference penalty.
        assert makespan < 40

    def test_declared_memory_never_oversubscribed(self, env):
        pool = build_pool(env, RandomPlacement(random.Random(3)), nodes=2,
                          cycle_interval=1.0)
        pool.submit([make_profile(f"j{i}", memory=3000) for i in range(8)])
        pool.run_to_completion()
        for startd in pool.startds:
            for device in startd.executor.devices:
                # Physical residency stayed within the card.
                peak = max(device.telemetry.resident_memory_mb.values, default=0)
                assert peak <= 8192


class TestPoolMCCK:
    def test_pinned_jobs_run_only_on_their_node(self, env):
        pool = build_pool(env, PinnedPlacement(), nodes=2, cycle_interval=1.0)
        pool.submit([make_profile("a"), make_profile("b")])
        pool.schedd.qedit("a", "Requirements", 'TARGET.Name == "slot1@n1"')
        pool.schedd.qedit("b", "Requirements", 'TARGET.Name == "slot1@n0"')
        pool.run_to_completion()
        assert pool.schedd.get("a").matched_node == "n1"
        assert pool.schedd.get("b").matched_node == "n0"

    def test_parked_jobs_never_dispatch(self, env):
        pool = build_pool(env, PinnedPlacement(), nodes=1, cycle_interval=1.0)
        pool.submit([make_profile("a"), make_profile("stuck")])
        pool.schedd.qedit("a", "Requirements", 'TARGET.Name == "slot1@n0"')
        pool.schedd.qedit("stuck", "Requirements", "false")
        pool.start()
        env.run(until=50)
        assert pool.schedd.get("a").status == "Completed"
        assert pool.schedd.get("stuck").status == "Idle"


class TestReschedule:
    def test_completion_triggers_extra_cycle(self, env):
        # With a huge periodic interval, only condor_reschedule can get
        # the second job started after the first completes.
        nodes = [ComputeNode(env, "n0", mode="exclusive")]
        pool = CondorPool(env, nodes, ExclusivePlacement(),
                          cycle_interval=1000.0, dispatch_latency=0.0,
                          reschedule_on_completion=True)
        pool.submit([make_profile("a", work=5, host=0),
                     make_profile("b", work=5, host=0)])
        makespan = pool.run_to_completion()
        # Without rescheduling 'b' would wait until t=1000.
        assert makespan < 20
        assert pool.negotiator.cycles_run >= 2

    def test_without_reschedule_waits_for_timer(self, env):
        nodes = [ComputeNode(env, "n0", mode="exclusive")]
        pool = CondorPool(env, nodes, ExclusivePlacement(),
                          cycle_interval=50.0, dispatch_latency=0.0)
        pool.submit([make_profile("a", work=5, host=0),
                     make_profile("b", work=5, host=0)])
        makespan = pool.run_to_completion()
        assert makespan >= 50  # 'b' started at the second periodic cycle

    def test_reschedule_storm_is_coalesced(self, env):
        nodes = [ComputeNode(env, "n0", mode="cosmic") for _ in range(1)]
        pool = CondorPool(env, nodes, RandomPlacement(random.Random(0)),
                          cycle_interval=100.0, dispatch_latency=0.0,
                          reschedule_on_completion=True)
        pool.submit([make_profile(f"j{i}", memory=500, work=2, host=0)
                     for i in range(10)])
        pool.run_to_completion()
        # Far fewer cycles than completions + periodic storms.
        assert pool.negotiator.cycles_run <= 14

    def test_invalid_reschedule_delay(self, env):
        from repro.condor import Negotiator, Schedd, Collector

        with pytest.raises(ValueError):
            Negotiator(env, Schedd(env), Collector(), ExclusivePlacement(),
                       reschedule_delay=-1)


class TestPoolValidation:
    def test_empty_pool_rejected(self, env):
        with pytest.raises(ValueError):
            CondorPool(env, [], ExclusivePlacement())

    def test_run_without_jobs_rejected(self, env):
        pool = build_pool(env, ExclusivePlacement(), mode="exclusive")
        with pytest.raises(ValueError):
            pool.run_to_completion()

    def test_run_with_limit_times_out(self, env):
        pool = build_pool(env, PinnedPlacement(), nodes=1)
        pool.submit([make_profile("never")])
        pool.schedd.qedit("never", "Requirements", "false")
        with pytest.raises(TimeoutError):
            pool.run_to_completion(limit=10.0)

    def test_negotiator_restart_rejected(self, env):
        pool = build_pool(env, ExclusivePlacement(), mode="exclusive")
        pool.submit([make_profile("a", memory=500)])
        pool.start()
        with pytest.raises(RuntimeError):
            pool.negotiator.start()

    def test_invalid_cycle_interval(self, env):
        from repro.condor import Negotiator
        pool = build_pool(env, ExclusivePlacement(), mode="exclusive")
        with pytest.raises(ValueError):
            Negotiator(env, pool.schedd, pool.collector, ExclusivePlacement(),
                       cycle_interval=0)
