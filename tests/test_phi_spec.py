"""Unit tests for the Xeon Phi hardware spec and contention models."""

import pytest

from repro.phi import (
    AffinitizedContention,
    PAPER_SPEC,
    UnmanagedContention,
    XeonPhiSpec,
    slowdown,
)


class TestSpec:
    def test_paper_spec_matches_evaluation_platform(self):
        assert PAPER_SPEC.cores == 60
        assert PAPER_SPEC.hardware_threads == 240
        assert PAPER_SPEC.memory_mb == 8192

    def test_usable_memory_subtracts_reservation(self):
        spec = XeonPhiSpec(memory_mb=8192, reserved_memory_mb=512)
        assert spec.usable_memory_mb == 8192 - 512

    @pytest.mark.parametrize(
        "threads,cores",
        [(0, 0), (1, 1), (4, 1), (5, 2), (60, 15), (120, 30), (240, 60), (241, 61)],
    )
    def test_cores_for_threads(self, threads, cores):
        assert PAPER_SPEC.cores_for_threads(threads) == cores

    def test_cores_for_negative_threads_rejected(self):
        with pytest.raises(ValueError):
            PAPER_SPEC.cores_for_threads(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cores": 0},
            {"threads_per_core": 0},
            {"memory_mb": 0},
            {"memory_mb": 100, "reserved_memory_mb": 100},
            {"reserved_memory_mb": -1},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            XeonPhiSpec(**kwargs)


class TestAffinitizedContention:
    def test_full_speed_within_budget(self):
        model = AffinitizedContention()
        for threads in (0, 1, 120, 240):
            assert model.rate(threads, PAPER_SPEC) == 1.0

    def test_oversubscription_slows_down(self):
        model = AffinitizedContention()
        assert model.rate(480, PAPER_SPEC) < 0.5  # worse than fair share

    def test_slowdown_monotone_in_demand(self):
        model = AffinitizedContention()
        rates = [model.rate(t, PAPER_SPEC) for t in range(240, 1200, 60)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_calibration_matches_cosmic_800_percent(self):
        # [6] reports up to 8x degradation; our model reaches that by
        # oversubscription ratio 2.5.
        model = AffinitizedContention()
        assert slowdown(model, 600, PAPER_SPEC) == pytest.approx(8.125)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            AffinitizedContention().rate(-1, PAPER_SPEC)


class TestUnmanagedContention:
    def test_interference_below_budget(self):
        model = UnmanagedContention()
        # Without affinitization, even a within-budget mix loses a little.
        assert model.rate(240, PAPER_SPEC) < 1.0
        assert model.rate(240, PAPER_SPEC) > 0.8

    def test_idle_device_full_speed_single_tiny_offload(self):
        model = UnmanagedContention(interference=0.15)
        # A tiny offload on an empty device barely suffers.
        assert model.rate(4, PAPER_SPEC) > 0.99

    def test_worse_than_affinitized(self):
        managed = AffinitizedContention()
        unmanaged = UnmanagedContention()
        for threads in (60, 240, 480):
            assert unmanaged.rate(threads, PAPER_SPEC) < managed.rate(
                threads, PAPER_SPEC
            )

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            UnmanagedContention().rate(-5, PAPER_SPEC)
