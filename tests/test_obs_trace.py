"""Tests for the observability layer: tracer, metrics, exporters.

The two load-bearing guarantees (ISSUE acceptance criteria):

* **Determinism** — two runs with the same seed export byte-identical
  Chrome trace JSON.
* **Structure** — every span has ``start <= end`` and nests within its
  parent; export is chronologically ordered per cell.

Plus the zero-overhead-off contract: a traced run must report the same
simulation results as an untraced run (tracing observes, never steers).
"""

import json

import pytest

from repro.cluster import ClusterConfig, run_configuration
from repro.obs import chrome_trace, render_summary
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import Tracer
from repro.workloads import generate_table1_jobs

SMALL = ClusterConfig(nodes=2, cycle_interval=2.0)

#: One span/instant name per lifecycle stage the issue enumerates.
LIFECYCLE_SPANS = ("job", "queued", "dispatch", "run", "admission",
                   "gate-wait", "offload", "negotiation-cycle")
LIFECYCLE_INSTANTS = ("matched", "completed")


@pytest.fixture(autouse=True)
def clean_globals():
    """Never leak an activated tracer/registry into other tests."""
    yield
    obs_trace.deactivate()
    obs_metrics.deactivate()


def traced_run(seed=7, configuration="MCCK", jobs=30):
    job_set = generate_table1_jobs(jobs, seed=seed)
    tracer = obs_trace.activate()
    registry = obs_metrics.activate()
    try:
        result = run_configuration(configuration, job_set, SMALL)
    finally:
        obs_trace.deactivate()
        obs_metrics.deactivate()
    return result, tracer, registry


class TestDeterminism:
    def test_same_seed_exports_identical_json(self):
        _, first, _ = traced_run(seed=11)
        _, second, _ = traced_run(seed=11)
        assert chrome_trace(first) == chrome_trace(second)

    def test_different_seed_exports_differ(self):
        _, first, _ = traced_run(seed=11)
        _, second, _ = traced_run(seed=12)
        assert chrome_trace(first) != chrome_trace(second)

    def test_tracing_does_not_change_results(self):
        job_set = generate_table1_jobs(30, seed=7)
        untraced = run_configuration("MCCK", job_set, SMALL)
        traced, _, _ = traced_run(seed=7)
        assert traced.makespan == untraced.makespan
        assert traced.mean_core_utilization == untraced.mean_core_utilization


class TestSpanStructure:
    def test_spans_are_well_formed_and_nest(self):
        _, tracer, _ = traced_run()
        cell_end = {cell.pid: cell.last_time for cell in tracer.cells}
        assert tracer.spans
        for span in tracer.spans:
            end = span.end if span.end is not None else cell_end[span.pid]
            assert span.start <= end, span
            parent = span.parent
            if parent is None:
                continue
            parent_end = (
                parent.end if parent.end is not None else cell_end[parent.pid]
            )
            assert parent.start <= span.start, (parent, span)
            assert end <= parent_end, (parent, span)
            assert parent.pid == span.pid

    def test_every_lifecycle_stage_appears(self):
        _, tracer, _ = traced_run()
        counts = tracer.span_counts()
        for name in LIFECYCLE_SPANS:
            assert counts.get(name, 0) >= 1, name
        instant_names = {inst.name for inst in tracer.instants}
        for name in LIFECYCLE_INSTANTS:
            assert name in instant_names

    def test_completed_jobs_close_their_spans(self):
        result, tracer, _ = traced_run()
        assert result.completed_jobs == result.job_count
        for span in tracer.spans:
            if span.name == "job":
                assert span.closed
                assert span.args.get("status") == "completed"


class TestChromeExport:
    def test_json_parses_and_is_chronological_per_cell(self):
        _, tracer, _ = traced_run()
        doc = json.loads(chrome_trace(tracer))
        assert doc["displayTimeUnit"] == "ms"
        timed = [
            e for e in doc["traceEvents"] if e["ph"] in ("X", "i")
        ]
        assert timed
        by_pid: dict[int, list[float]] = {}
        for event in timed:
            assert event["ts"] >= 0
            if event["ph"] == "X":
                assert event["dur"] >= 0
            by_pid.setdefault(event["pid"], []).append(event["ts"])
        for stamps in by_pid.values():
            assert stamps == sorted(stamps)

    def test_metadata_names_processes_and_tracks(self):
        _, tracer, _ = traced_run()
        doc = json.loads(chrome_trace(tracer))
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        process_names = [
            e for e in meta if e["name"] == "process_name"
        ]
        thread_names = [e for e in meta if e["name"] == "thread_name"]
        assert len(process_names) == len(tracer.cells)
        assert any(e["args"]["name"] == "negotiator" for e in thread_names)
        assert any(
            e["args"]["name"].startswith("job ") for e in thread_names
        )

    def test_unfinished_spans_are_closed_at_cell_end(self):
        tracer = Tracer()
        tracer.begin("dangling", "test", 5.0)
        tracer.instant("later", "test", 20.0)
        doc = json.loads(chrome_trace(tracer))
        (event,) = [e for e in doc["traceEvents"] if e["name"] == "dangling"]
        assert event["dur"] == pytest.approx((20.0 - 5.0) * 1e6)
        assert event["args"]["unfinished"] is True


class TestMetricsRegistry:
    def test_counters_match_simulation_outcomes(self):
        result, _, registry = traced_run()
        (cell,) = registry.cells
        assert cell.counters["schedd.jobs_submitted"].value == result.job_count
        assert (
            cell.counters["schedd.jobs_completed"].value
            == result.completed_jobs
        )

    def test_adopted_device_series_present(self):
        _, _, registry = traced_run()
        (cell,) = registry.cells
        assert any(
            name.endswith(".busy_cores") for name in cell.adopted
        )

    def test_summary_renders(self):
        _, tracer, registry = traced_run()
        text = render_summary(tracer, registry)
        assert "observability summary" in text
        assert "negotiator.cycles" in text
        assert "job.run_s" in text


class TestTracerUnit:
    def test_end_before_start_rejected(self):
        tracer = Tracer()
        span = tracer.begin("s", "t", 10.0)
        with pytest.raises(ValueError):
            tracer.end(span, 5.0)

    def test_double_end_rejected(self):
        tracer = Tracer()
        span = tracer.begin("s", "t", 1.0)
        tracer.end(span, 2.0)
        with pytest.raises(ValueError):
            tracer.end(span, 3.0)

    def test_end_keyed_is_noop_when_absent(self):
        tracer = Tracer()
        assert tracer.end_keyed(("missing", 1), 2.0) is None

    def test_enter_cell_renames_unused_first_cell(self):
        tracer = Tracer()
        tracer.enter_cell("fig8/uniform/MC")
        assert len(tracer.cells) == 1
        assert tracer.cell.label == "fig8/uniform/MC"

    def test_enter_cell_partitions_used_tracer(self):
        tracer = Tracer()
        tracer.enter_cell("a")
        tracer.begin("s", "t", 1.0)
        tracer.enter_cell("b")
        assert [cell.pid for cell in tracer.cells] == [1, 2]
        span = tracer.begin("s2", "t", 0.5)
        assert span.pid == 2
