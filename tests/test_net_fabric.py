"""Unit tests for the message fabric: delivery, weather, determinism."""

import pytest

from repro.net import (
    MessageFabric,
    NetProfile,
    PartitionSpec,
    derive_net_seed,
    parse_partition,
    startd_endpoint,
)
from repro.sim import Environment


def _fabric(profile=None, seed=7):
    env = Environment()
    fabric = MessageFabric(env, profile or NetProfile(), seed)
    return env, fabric


class TestProfile:
    def test_defaults_validate(self):
        NetProfile()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss": 1.0},
            {"loss": -0.1},
            {"dup": 1.5},
            {"delay_base_s": -1.0},
            {"rto_initial_s": 0.0},
            {"rto_backoff": 0.5},
            {"lease_duration_s": 0.0},
            {"renew_interval_s": 40.0},  # >= lease_duration_s
            {"match_timeout_s": 30.0},  # <= lease_duration_s
            {"heartbeat_timeout_s": 5.0},  # <= update_interval_s
            {"retry_jitter": 2.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            NetProfile(**kwargs)

    def test_chaos_dup_defaults_to_half_loss(self):
        profile = NetProfile.chaos(0.10)
        assert profile.loss == 0.10
        assert profile.dup == 0.05

    def test_derive_net_seed_is_stable_and_distinct(self):
        assert derive_net_seed(42) == derive_net_seed(42)
        assert derive_net_seed(42) != derive_net_seed(43)
        assert derive_net_seed(42) != 42


class TestPartitionSpec:
    def test_parse_round_trip(self):
        spec = parse_partition("120:240:startd:*")
        assert spec == PartitionSpec(120.0, 240.0, "startd:*")

    @pytest.mark.parametrize(
        "text", ["bogus", "1:2", "a:b:*", "10:5:*", "-1:5:*"]
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_partition(text)

    def test_pattern_matching(self):
        glob = PartitionSpec(0.0, 10.0, "startd:*")
        assert glob.matches(startd_endpoint("node3"))
        assert not glob.matches("schedd")
        exact = PartitionSpec(0.0, 10.0, "schedd")
        assert exact.matches("schedd")
        assert not exact.matches("schedd2")
        assert PartitionSpec(0.0, 10.0, "*").matches("anything")

    def test_cuts_either_direction_inside_window(self):
        spec = PartitionSpec(10.0, 20.0, "startd:*")
        assert spec.cuts("schedd", "startd:node0", 10.0)
        assert spec.cuts("startd:node0", "schedd", 15.0)
        assert not spec.cuts("schedd", "negotiator", 15.0)
        assert not spec.cuts("schedd", "startd:node0", 20.0)  # half-open


class TestDelivery:
    def test_clean_link_delivers_once_in_order(self):
        env, fabric = _fabric()
        seen = []
        fabric.register("b", "ping", lambda m: seen.append(m.payload["n"]))
        for n in range(5):
            fabric.send("a", "b", "ping", {"n": n})
        env.run(until=10.0)
        assert seen == [0, 1, 2, 3, 4]
        assert fabric.stats.delivered == 5
        assert fabric.stats.retransmits == 0

    def test_on_delivered_fires_once(self):
        env, fabric = _fabric(NetProfile(dup=0.9))
        fabric.register("b", "ping", lambda m: None)
        acks = []
        fabric.send("a", "b", "ping", {}, on_delivered=acks.append)
        env.run(until=30.0)
        assert len(acks) == 1

    def test_unregistered_kind_raises(self):
        env, fabric = _fabric()
        fabric.send("a", "b", "nope", {})
        with pytest.raises(KeyError):
            env.run(until=5.0)

    def test_duplicate_handler_registration_rejected(self):
        _env, fabric = _fabric()
        fabric.register("b", "ping", lambda m: None)
        with pytest.raises(ValueError):
            fabric.register("b", "ping", lambda m: None)

    def test_loss_is_recovered_by_retransmit(self):
        env, fabric = _fabric(NetProfile(loss=0.5), seed=3)
        seen = []
        fabric.register("b", "ping", lambda m: seen.append(m.payload["n"]))
        for n in range(20):
            fabric.send("a", "b", "ping", {"n": n})
        env.run(until=500.0)
        assert seen == list(range(20))
        assert fabric.stats.losses > 0
        assert fabric.stats.retransmits > 0

    def test_duplicates_are_dropped(self):
        env, fabric = _fabric(NetProfile(dup=0.9), seed=5)
        seen = []
        fabric.register("b", "ping", lambda m: seen.append(m.payload["n"]))
        for n in range(20):
            fabric.send("a", "b", "ping", {"n": n})
        env.run(until=100.0)
        assert seen == list(range(20))
        assert fabric.stats.duplicates_sent > 0
        assert fabric.stats.duplicates_dropped > 0

    def test_reordering_straightened_by_sequence_buffer(self):
        # Huge jitter vs tiny base: flights routinely overtake each other,
        # but handlers still observe send order.
        env, fabric = _fabric(
            NetProfile(delay_base_s=0.001, delay_jitter_s=5.0), seed=11
        )
        seen = []
        fabric.register("b", "ping", lambda m: seen.append(m.payload["n"]))
        for n in range(30):
            fabric.send("a", "b", "ping", {"n": n})
        env.run(until=100.0)
        assert seen == list(range(30))


class TestPartitionsAndDowntime:
    def test_partition_blocks_then_heals(self):
        profile = NetProfile(partitions=(PartitionSpec(0.0, 50.0, "b"),))
        env, fabric = _fabric(profile)
        seen = []
        fabric.register("b", "ping", lambda m: seen.append(env.now))
        fabric.send("a", "b", "ping", {})
        env.run(until=49.0)
        assert seen == []
        assert fabric.stats.partition_drops > 0
        env.run(until=200.0)
        assert len(seen) == 1
        assert seen[0] >= 50.0

    def test_down_endpoint_drops_until_restored(self):
        env, fabric = _fabric()
        seen = []
        fabric.register("b", "ping", lambda m: seen.append(env.now))
        fabric.set_down("b")
        assert fabric.is_down("b")
        fabric.send("a", "b", "ping", {})
        env.run(until=20.0)
        assert seen == []
        fabric.set_up("b")
        env.run(until=120.0)
        assert len(seen) == 1

    def test_unrelated_links_unaffected_by_partition(self):
        profile = NetProfile(partitions=(PartitionSpec(0.0, 50.0, "startd:*"),))
        env, fabric = _fabric(profile)
        seen = []
        fabric.register("negotiator", "ping", lambda m: seen.append(1))
        fabric.send("schedd", "negotiator", "ping", {})
        env.run(until=5.0)
        assert seen == [1]
        assert fabric.stats.partition_drops == 0


class TestDeterminism:
    def _trace_run(self, seed):
        profile = NetProfile.chaos(
            0.2, partitions=(PartitionSpec(5.0, 15.0, "b"),)
        )
        env, fabric = _fabric(profile, seed=seed)
        events = []
        fabric.register("b", "ping", lambda m: events.append((env.now, m.seq)))
        for n in range(25):
            fabric.send("a", "b", "ping", {"n": n})
        env.run(until=1000.0)
        return events, fabric.stats.as_dict()

    def test_same_seed_replays_identically(self):
        first = self._trace_run(derive_net_seed(42))
        second = self._trace_run(derive_net_seed(42))
        assert first == second

    def test_different_seed_changes_weather(self):
        first = self._trace_run(derive_net_seed(42))
        second = self._trace_run(derive_net_seed(43))
        assert first != second
