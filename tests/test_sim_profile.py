"""Tests for the built-in simulation profiler."""

from repro.sim import Environment, profile


def _workload(env, n=50):
    def worker(env, delay):
        for _ in range(4):
            yield env.timeout(delay)

    for i in range(n):
        env.process(worker(env, 0.5 + i * 0.01))


class TestSimProfiler:
    def teardown_method(self):
        profile.deactivate()

    def test_inactive_by_default(self):
        env = Environment()
        assert env.profiler is None

    def test_environment_attaches_active_profiler(self):
        prof = profile.activate()
        env = Environment()
        assert env.profiler is prof
        _workload(env)
        env.run()
        assert prof.events_scheduled.get("Timeout", 0) == 200
        assert prof.events_fired.get("Timeout", 0) == 200
        assert prof.process_switches >= 200
        assert prof.heap_peak > 0
        assert prof.total_fired == prof.total_scheduled

    def test_wall_window_and_rate(self):
        prof = profile.activate()
        env = Environment()
        _workload(env)
        env.run()
        assert prof.wall_total > 0
        assert prof.events_per_second() > 0

    def test_telemetry_records_counted(self):
        from repro.phi.telemetry import StepSeries

        prof = profile.activate()
        series = StepSeries()
        series.record(0.0, 1.0)
        series.record(1.0, 2.0)
        assert prof.telemetry_records == 2

    def test_render_mentions_every_section(self):
        prof = profile.activate()
        env = Environment()
        _workload(env)
        env.run()
        text = prof.render()
        for needle in (
            "event kind",
            "Timeout",
            "total",
            "process switches",
            "heap peak",
            "telemetry records",
            "events/sec",
        ):
            assert needle in text

    def test_deactivate_detaches_future_environments(self):
        prof = profile.activate()
        assert profile.deactivate() is prof
        assert profile.ACTIVE is None
        assert Environment().profiler is None

    def test_counters_span_multiple_environments(self):
        prof = profile.activate()
        for _ in range(2):
            env = Environment()
            _workload(env, n=10)
            env.run()
        assert prof.events_fired.get("Timeout", 0) == 2 * 40
