"""Tests for the runtime invariant auditor: unit triggers + clean runs."""

import pytest

from repro.cluster import ClusterConfig, run_mcc, run_mcck
from repro.net import NetProfile, derive_net_seed
from repro.obs import audit
from repro.obs.audit import Auditor, AuditViolation
from repro.workloads import generate_table1_jobs


@pytest.fixture
def auditor():
    return Auditor()


@pytest.fixture(autouse=True)
def _no_leaked_active():
    yield
    audit.deactivate()


class TestUnitViolations:
    def test_double_terminal_outcome(self, auditor):
        auditor.enter_cell("t")
        auditor.job_submitted("j1")
        auditor.job_terminal("j1", "Completed", 1.0)
        with pytest.raises(AuditViolation, match="double-terminal"):
            auditor.job_terminal("j1", "Failed", 2.0)

    def test_missing_terminal_outcome_caught_at_cell_end(self, auditor):
        auditor.enter_cell("t")
        auditor.job_submitted("j1")
        with pytest.raises(AuditViolation, match="job-without-terminal"):
            auditor.finish_cell()

    def test_job_on_two_nodes(self, auditor):
        auditor.enter_cell("t")
        auditor.run_started("node0", "j1", 1.0)
        with pytest.raises(AuditViolation, match="job-on-two-nodes"):
            auditor.run_started("node1", "j1", 2.0)

    def test_slot_oversubscription(self, auditor):
        auditor.enter_cell("t")
        auditor.slot_claimed("node0", "j1", 2, 1.0)
        auditor.slot_claimed("node0", "j2", 2, 1.0)
        with pytest.raises(AuditViolation, match="slot-oversubscription"):
            auditor.slot_claimed("node0", "j3", 2, 1.0)

    def test_slot_double_release(self, auditor):
        auditor.enter_cell("t")
        auditor.slot_claimed("node0", "j1", 4, 1.0)
        auditor.slot_released("node0", "j1", 2.0)
        with pytest.raises(AuditViolation, match="slot-double-release"):
            auditor.slot_released("node0", "j1", 3.0)

    def test_negative_device_memory(self, auditor):
        auditor.enter_cell("t")
        auditor.device_memory("mic0", 12.0, 1.0)
        auditor.device_memory("mic0", 0.0, 1.0)  # exact zero is fine
        with pytest.raises(AuditViolation, match="negative-device-memory"):
            auditor.device_memory("mic0", -5.0, 2.0)

    def test_double_claim(self, auditor):
        auditor.enter_cell("t")
        auditor.claim_opened("j1", 1, 1.0)
        with pytest.raises(AuditViolation, match="double-claim"):
            auditor.claim_opened("j1", 2, 2.0)

    def test_double_lease(self, auditor):
        auditor.enter_cell("t")
        auditor.lease_opened("node0", "j1", 1, 1.0)
        with pytest.raises(AuditViolation, match="double-lease"):
            auditor.lease_opened("node0", "j1", 2, 2.0)

    def test_ledger_leaks_at_cell_end(self, auditor):
        auditor.enter_cell("t")
        auditor.claim_opened("j1", 1, 1.0)
        with pytest.raises(AuditViolation, match="claim-ledger-leak"):
            auditor.finish_cell()

    def test_violation_message_carries_cell_context(self, auditor):
        auditor.enter_cell("my-cell")
        auditor.job_submitted("j9")
        auditor.job_terminal("j9", "Completed", 1.0)
        with pytest.raises(AuditViolation) as exc:
            auditor.job_terminal("j9", "Completed", 7.5)
        text = str(exc.value)
        assert "my-cell" in text
        assert "t=7.500" in text
        assert "submitted=1" in text

    def test_clean_cell_reconciles(self, auditor):
        auditor.enter_cell("t")
        auditor.job_submitted("j1")
        auditor.slot_claimed("node0", "j1", 4, 1.0)
        auditor.run_started("node0", "j1", 1.0)
        auditor.claim_opened("j1", 1, 1.0)
        auditor.lease_opened("node0", "j1", 1, 1.0)
        auditor.lease_closed("node0", "j1", 1, 5.0)
        auditor.claim_closed("j1", 1, 5.0)
        auditor.run_ended("node0", "j1", 5.0)
        auditor.slot_released("node0", "j1", 5.0)
        auditor.job_terminal("j1", "Completed", 5.0)
        auditor.finish_cell()
        assert auditor.violations == 0
        assert "0 violation(s)" in auditor.render()


class TestActivation:
    def test_activate_installs_and_deactivate_returns(self):
        assert audit.ACTIVE is None
        installed = audit.activate()
        assert audit.ACTIVE is installed
        returned = audit.deactivate()
        assert returned is installed
        assert audit.ACTIVE is None


class TestIntegration:
    def test_direct_pool_run_is_clean(self):
        auditor = audit.activate()
        auditor.enter_cell("direct")
        jobs = generate_table1_jobs(12, seed=5)
        result = run_mcc(jobs, ClusterConfig(nodes=2))
        auditor.finish_cell()
        assert result.completed_jobs == 12
        assert auditor.violations == 0
        assert auditor.checks > 0

    def test_fabric_chaos_run_is_clean(self):
        auditor = audit.activate()
        auditor.enter_cell("chaos")
        jobs = generate_table1_jobs(12, seed=5)
        result = run_mcck(
            jobs,
            ClusterConfig(nodes=2),
            net=NetProfile.chaos(0.10),
            net_seed=derive_net_seed(5),
        )
        auditor.finish_cell()
        assert result.completed_jobs == 12
        assert result.net_retransmits > 0
        assert auditor.violations == 0
