"""Smoke tests for the extension experiments (X1-X3)."""

from repro.cluster import ClusterConfig
from repro.experiments import ext_capacity, ext_multidevice, ext_oversubscription

TINY = ClusterConfig(nodes=2)


class TestCapacitySweep:
    def test_run_and_render(self):
        result = ext_capacity.run(
            jobs=24, capacities_mb=(4096, 8192), config=TINY
        )
        assert len(result.makespans["MC"]) == 2
        assert len(result.makespans["MCCK"]) == 2
        text = ext_capacity.render(result)
        assert "4GB" in text and "8GB" in text

    def test_larger_cards_never_hurt_sharing_much(self):
        result = ext_capacity.run(
            jobs=30, capacities_mb=(4096, 16384), config=TINY
        )
        small, big = result.makespans["MCCK"]
        assert big <= 1.1 * small


class TestMultiDevice:
    def test_shapes_hold_total_cards(self):
        result = ext_multidevice.run(
            jobs=24, shapes=((2, 1), (1, 2)), config=TINY
        )
        assert len(result.makespans["MCC"]) == 2
        text = ext_multidevice.render(result)
        assert "2 nodes x 1 Phi" in text
        assert "1 nodes x 2 Phi" in text

    def test_consolidation_same_regime(self):
        result = ext_multidevice.run(
            jobs=30, shapes=((2, 1), (1, 2)), config=TINY
        )
        a, b = result.makespans["MCCK"]
        assert min(a, b) > 0
        assert max(a, b) < 2.0 * min(a, b)


class TestOversubscriptionCurve:
    def test_managed_within_budget_is_free(self):
        result = ext_oversubscription.run(ratios=(0.5, 1.0, 2.0),
                                          memory_demand_mb=(4096, 12288))
        assert result.slowdowns_managed[0] == 1.0
        assert result.slowdowns_managed[1] == 1.0
        assert result.slowdowns_managed[2] > 2.0

    def test_unmanaged_dominated_by_managed(self):
        result = ext_oversubscription.run(ratios=(1.0, 2.0),
                                          memory_demand_mb=(4096,))
        for u, m in zip(result.slowdowns_unmanaged, result.slowdowns_managed):
            assert u >= m

    def test_survival_degrades_past_capacity(self):
        result = ext_oversubscription.run(
            ratios=(1.0,), memory_demand_mb=(4096, 16384)
        )
        assert result.survival_rate[0] == 1.0
        assert result.survival_rate[1] < 1.0

    def test_render(self):
        result = ext_oversubscription.run(ratios=(1.0,),
                                          memory_demand_mb=(4096,))
        text = ext_oversubscription.render(result)
        assert "X3a" in text and "X3b" in text
