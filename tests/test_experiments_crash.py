"""Tests for the ext-crash experiment: grid shape, determinism, caching."""

from repro.cluster import ClusterConfig
from repro.experiments import ext_crash, ext_faults
from repro.experiments.cache import ResultCache
from repro.experiments.runner import SimTask, TaskRunner
from repro.faults import FaultProfile, derive_fault_seed
from repro.net import NetProfile, derive_net_seed

SMALL = ClusterConfig(nodes=2, cycle_interval=2.0)
RATES = (0.0, 4.0)
SCRIPTED = ((40.0, "schedd"),)


def _run(runner=None, **kwargs):
    kwargs.setdefault("jobs", 20)
    kwargs.setdefault("rates", RATES)
    return ext_crash.run(config=SMALL, seed=7, runner=runner, **kwargs)


class TestGrid:
    def test_tasks_shape(self):
        grid = ext_crash.tasks(jobs=20, rates=RATES, config=SMALL, seed=7)
        assert len(grid) == len(RATES) * 3  # MC, MCC, MCCK per rate
        assert all(t.kind == "sim-crash" for t in grid)
        assert all(t.experiment == "ext-crash" for t in grid)
        labels = [t.label for t in grid]
        assert "MC@0/ks" in labels and "MCCK@4/ks" in labels

    def test_rate_zero_cells_run_without_faults_or_fabric(self):
        grid = ext_crash.tasks(jobs=20, rates=(0.0,), config=SMALL, seed=7)
        for task in grid:
            assert task.kwargs()["faults"] is None
            assert task.kwargs()["net"] is None

    def test_crash_cells_carry_profile_and_quiet_fabric(self):
        grid = ext_crash.tasks(jobs=20, rates=(2.0,), config=SMALL, seed=7)
        for task in grid:
            faults = task.kwargs()["faults"]
            assert faults == FaultProfile(daemon_crash_rate=2.0)
            # Crash cells isolate the cost of the crashes themselves:
            # the fabric is the default quiet, reliable profile.
            assert task.kwargs()["net"] == NetProfile()

    def test_scripted_crashes_force_faults_even_at_rate_zero(self):
        grid = ext_crash.tasks(
            jobs=20, rates=(0.0,), crashes=SCRIPTED, config=SMALL, seed=7
        )
        for task in grid:
            faults = task.kwargs()["faults"]
            assert faults is not None
            assert faults.crashes == SCRIPTED
            assert task.kwargs()["net"] is not None

    def test_seeds_derived_from_workload_seed(self):
        grid = ext_crash.tasks(jobs=20, rates=RATES, config=SMALL, seed=7)
        for task in grid:
            assert task.kwargs()["fault_seed"] == derive_fault_seed(7)
            assert task.kwargs()["net_seed"] == derive_net_seed(7)

    def test_merge_aligns_cells(self):
        grid = ext_crash.tasks(jobs=20, rates=RATES, config=SMALL, seed=7)
        values = [
            {"tag": i, "makespan": 1.0, "completed": 1}
            for i in range(len(grid))
        ]
        result = ext_crash.merge(
            values, jobs=20, rates=RATES, config=SMALL, seed=7
        )
        assert result.cells["MC"][0]["tag"] == 0
        assert result.cells["MCC"][0]["tag"] == 1
        assert result.cells["MCCK"][1]["tag"] == 5


class TestDeterminism:
    def test_two_runs_render_byte_identical(self):
        # The PR's acceptance criterion: same seed + rates, twice,
        # byte-identical metrics end to end (no cache involved).
        first = ext_crash.render(_run(crashes=SCRIPTED))
        second = ext_crash.render(_run(crashes=SCRIPTED))
        assert first == second

    def test_rate_zero_column_equals_paper_baseline(self):
        # The rate-0 cells run with no recovery subsystem at all, so
        # they byte-equal the fault-free cells X5 computes for the same
        # workload, cluster, and seed.
        crash = _run()
        faults = ext_faults.run(
            jobs=20, rates=(0.0,), config=SMALL, seed=7
        )
        for configuration in ("MC", "MCC", "MCCK"):
            ours = crash.cells[configuration][0]
            baseline = faults.cells[configuration][0]
            assert ours["makespan"] == baseline["makespan"]
            assert ours["completed"] == baseline["completed"]
            assert ours["crashes"] == 0
            assert ours["wal_records"] == 0

    def test_scripted_crash_cells_report_recovery_activity(self):
        # Scripted crashes land in every column (including rate 0), so
        # both cells report the schedd dying and recovering mid-run.
        result = _run(crashes=SCRIPTED)
        for configuration in ("MC", "MCC", "MCCK"):
            for cell in result.cells[configuration]:
                assert cell["crashes"] >= 1
                assert cell["recoveries"] >= 1
                assert cell["wal_replayed"] > 0
                assert cell["completed"] == 20

    def test_goodput_positive(self):
        result = _run(crashes=SCRIPTED)
        for configuration in ("MC", "MCC", "MCCK"):
            assert all(g > 0 for g in result.goodput(configuration))

    def test_parallel_matches_inline(self):
        runner = TaskRunner(workers=2, cache=None)
        assert ext_crash.render(_run(runner)) == ext_crash.render(_run())


class TestCacheKeys:
    def _task(self, faults, net):
        return SimTask.make(
            "ext-crash", "sim-crash",
            configuration="MCC", config=SMALL,
            workload=("table1", 20, 7),
            faults=faults, fault_seed=derive_fault_seed(7),
            net=net, net_seed=derive_net_seed(7),
        )

    def test_crash_profile_in_cache_key(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="fixed")
        keys = {
            cache.key_for(self._task(None, None)),
            cache.key_for(
                self._task(FaultProfile(daemon_crash_rate=1.0), NetProfile())
            ),
            cache.key_for(
                self._task(FaultProfile(daemon_crash_rate=2.0), NetProfile())
            ),
            cache.key_for(
                self._task(
                    FaultProfile(daemon_crash_rate=2.0, crashes=SCRIPTED),
                    NetProfile(),
                )
            ),
        }
        assert len(keys) == 4
