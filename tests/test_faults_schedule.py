"""Unit tests for fault profiles and deterministic schedule generation."""

import pytest

from repro.faults import (
    DAEMON_CRASH,
    DEVICE_FAIL,
    DEVICE_RESET,
    JOB_CRASH,
    KINDS,
    NODE_CRASH,
    FaultProfile,
    FaultSchedule,
    derive_fault_seed,
)


class TestFaultProfile:
    def test_null_by_default(self):
        profile = FaultProfile()
        assert profile.is_null
        assert profile.total_rate == 0.0

    def test_chaos_splits_total_rate(self):
        profile = FaultProfile.chaos(2.0)
        assert not profile.is_null
        assert profile.total_rate == pytest.approx(2.0)
        # Resets and transient crashes dominate; permanent losses are rare.
        assert profile.device_reset_rate > profile.device_fail_rate
        assert profile.job_crash_rate > profile.node_crash_rate

    def test_chaos_zero_is_null(self):
        assert FaultProfile.chaos(0.0).is_null

    def test_chaos_overrides(self):
        profile = FaultProfile.chaos(1.0, reset_downtime_s=5.0)
        assert profile.reset_downtime_s == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(device_fail_rate=-1.0)
        with pytest.raises(ValueError):
            FaultProfile(reset_downtime_s=-1.0)
        with pytest.raises(ValueError):
            FaultProfile(horizon_s=0.0)
        with pytest.raises(ValueError):
            FaultProfile(heartbeat_interval_s=0.0)


class TestDeriveFaultSeed:
    def test_deterministic(self):
        assert derive_fault_seed(42) == derive_fault_seed(42)

    def test_distinct_per_workload_seed(self):
        seeds = {derive_fault_seed(s) for s in range(50)}
        assert len(seeds) == 50

    def test_differs_from_workload_seed(self):
        # The fault stream must not replay the workload generator's draws.
        assert derive_fault_seed(42) != 42


class TestFaultSchedule:
    def test_generate_is_deterministic(self):
        profile = FaultProfile.chaos(3.0)
        a = FaultSchedule.generate(profile, 7)
        b = FaultSchedule.generate(profile, 7)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        profile = FaultProfile.chaos(3.0)
        a = FaultSchedule.generate(profile, 7)
        b = FaultSchedule.generate(profile, 8)
        assert a.events != b.events

    def test_null_profile_is_empty(self):
        schedule = FaultSchedule.generate(FaultProfile(), 7)
        assert len(schedule) == 0

    def test_events_sorted_and_sequenced(self):
        schedule = FaultSchedule.generate(FaultProfile.chaos(4.0), 11)
        times = [e.time for e in schedule.events]
        assert times == sorted(times)
        assert [e.seq for e in schedule.events] == list(range(len(times)))

    def test_events_respect_horizon(self):
        profile = FaultProfile.chaos(4.0, horizon_s=1000.0)
        schedule = FaultSchedule.generate(profile, 11)
        assert all(0.0 < e.time <= 1000.0 for e in schedule.events)
        assert all(0.0 <= e.pick < 1.0 for e in schedule.events)

    def test_rate_scales_event_count(self):
        low = FaultSchedule.generate(FaultProfile.chaos(0.5), 3)
        high = FaultSchedule.generate(FaultProfile.chaos(8.0), 3)
        assert len(high) > len(low)

    def test_single_kind_profile(self):
        profile = FaultProfile(job_crash_rate=2.0)
        schedule = FaultSchedule.generate(profile, 5)
        assert len(schedule) > 0
        assert all(e.kind == JOB_CRASH for e in schedule.events)

    def test_kind_constants_registered(self):
        # DAEMON_CRASH is appended last: the per-kind rate streams draw
        # from one shared RNG in KINDS order, so older profiles keep
        # byte-identical schedules only if new kinds never reorder them.
        assert KINDS == (
            DEVICE_FAIL, DEVICE_RESET, NODE_CRASH, JOB_CRASH, DAEMON_CRASH
        )
