"""Tests for the ext-faults experiment: grid shape, determinism, caching."""

import pytest

from repro.cluster import ClusterConfig
from repro.experiments import ext_faults
from repro.experiments.cache import ResultCache
from repro.experiments.runner import SimTask, TaskRunner
from repro.faults import FaultProfile, derive_fault_seed

SMALL = ClusterConfig(nodes=2, cycle_interval=2.0)
#: Short downtimes so chaos lands inside a 30-job run's makespan.
RATES = (0.0, 20.0)


def _run(runner=None):
    return ext_faults.run(jobs=30, rates=RATES, config=SMALL, seed=7, runner=runner)


class TestGrid:
    def test_tasks_shape(self):
        grid = ext_faults.tasks(jobs=30, rates=RATES, config=SMALL, seed=7)
        assert len(grid) == len(RATES) * 3  # MC, MCC, MCCK per rate
        assert all(t.kind == "sim-faults" for t in grid)
        assert all(t.experiment == "ext-faults" for t in grid)

    def test_rate_zero_cells_carry_no_profile(self):
        grid = ext_faults.tasks(jobs=30, rates=(0.0,), config=SMALL, seed=7)
        for task in grid:
            assert task.kwargs()["faults"] is None

    def test_fault_seed_derived_from_workload_seed(self):
        grid = ext_faults.tasks(jobs=30, rates=RATES, config=SMALL, seed=7)
        for task in grid:
            assert task.kwargs()["fault_seed"] == derive_fault_seed(7)

    def test_merge_aligns_cells(self):
        grid = ext_faults.tasks(jobs=30, rates=RATES, config=SMALL, seed=7)
        values = [{"tag": i, "makespan": 1.0, "completed": 1} for i in range(len(grid))]
        result = ext_faults.merge(values, jobs=30, rates=RATES, config=SMALL, seed=7)
        assert result.cells["MC"][0]["tag"] == 0
        assert result.cells["MCC"][0]["tag"] == 1
        assert result.cells["MCCK"][1]["tag"] == 5


class TestDeterminism:
    def test_two_runs_render_byte_identical(self):
        # The PR's acceptance criterion: same seed + profile, twice,
        # byte-identical metrics end to end (no cache involved).
        first = ext_faults.render(_run())
        second = ext_faults.render(_run())
        assert first == second

    def test_chaos_cells_report_activity(self):
        result = _run()
        chaotic = [result.cells[c][1] for c in ("MC", "MCC", "MCCK")]
        assert any(cell["faults_injected"] > 0 for cell in chaotic)
        # Every cell fully accounts its jobs.
        for config in ("MC", "MCC", "MCCK"):
            for cell in result.cells[config]:
                assert cell["completed"] + cell["failed"] + cell["killed"] == cell["jobs"]

    def test_goodput_positive(self):
        result = _run()
        for config in ("MC", "MCC", "MCCK"):
            assert all(g > 0 for g in result.goodput(config))

    def test_parallel_matches_inline(self, tmp_path):
        runner = TaskRunner(workers=2, cache=None)
        assert ext_faults.render(_run(runner)) == ext_faults.render(_run())


class TestCacheKeys:
    def _task(self, faults):
        return SimTask.make(
            "ext-faults", "sim-faults",
            configuration="MCC", config=SMALL,
            workload=("table1", 30, 7),
            faults=faults, fault_seed=derive_fault_seed(7),
        )

    def test_fault_profile_in_cache_key(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="fixed")
        keys = {
            cache.key_for(self._task(None)),
            cache.key_for(self._task(FaultProfile.chaos(1.0))),
            cache.key_for(self._task(FaultProfile.chaos(2.0))),
            cache.key_for(
                self._task(FaultProfile.chaos(2.0, reset_downtime_s=5.0))
            ),
        }
        assert len(keys) == 4

    def test_same_profile_same_key(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="fixed")
        a = cache.key_for(self._task(FaultProfile.chaos(2.0)))
        b = cache.key_for(self._task(FaultProfile.chaos(2.0)))
        assert a == b

    def test_fault_tasks_roundtrip_through_cache(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="fixed")
        task = self._task(FaultProfile.chaos(2.0))
        cache.put(task, {"makespan": 1.0})
        hit, value = cache.get(task)
        assert hit and value == {"makespan": 1.0}


class TestRegistration:
    def test_registered_in_experiments(self):
        from repro.experiments import EXPERIMENTS

        assert EXPERIMENTS["ext-faults"] is ext_faults

    def test_cli_fault_rate_flag(self):
        from repro.cli import _experiment_kwargs

        kwargs = _experiment_kwargs(
            "ext-faults", 30, 7, 1.0, fault_rates=[0.0, 2.0]
        )
        assert kwargs["rates"] == (0.0, 2.0)
        assert kwargs["jobs"] == 30
        # Other experiments ignore the flag.
        other = _experiment_kwargs("fig8", 30, 7, 1.0, fault_rates=[2.0])
        assert "rates" not in other
