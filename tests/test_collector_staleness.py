"""Collector heartbeat-staleness: drops, re-registration, observability.

Satellite coverage for the staleness path: a node whose heartbeat goes
quiet is dropped from negotiation snapshots, the transition (not every
query) emits a trace instant and bumps a counter, and a fresh heartbeat
re-admits the node with the mirror-image emission.
"""

import pytest

from repro.cluster.node import ComputeNode
from repro.condor import Collector, Schedd, Startd
from repro.condor.ads import copy_snapshot
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture(autouse=True)
def _no_leaked_active():
    yield
    obs_trace.deactivate()
    obs_metrics.deactivate()


def _collector(env, nodes=2, timeout=20.0):
    collector = Collector(heartbeat_timeout=timeout)
    schedd = Schedd(env)
    for i in range(nodes):
        collector.register(Startd(env, schedd, ComputeNode(env, f"n{i}")))
    return collector


class TestStalenessDrops:
    def test_quiet_node_dropped_until_it_reports_again(self, env):
        collector = _collector(env)
        collector.record_heartbeat("n0", 0.0)
        collector.record_heartbeat("n1", 0.0)
        assert len(collector.snapshots(now=10.0)) == 2
        collector.record_heartbeat("n1", 25.0)
        # n0's last report is 30s old: past the 20s timeout.
        assert [s.node for s in collector.snapshots(now=30.0)] == ["n1"]
        assert collector.stale_drops == 1
        collector.record_heartbeat("n0", 31.0)
        assert len(collector.snapshots(now=32.0)) == 2
        assert collector.reregistrations == 1

    def test_never_heartbeated_node_is_not_dropped(self, env):
        # Heartbeats are opt-in per node: pools that never report keep
        # the fault-free behaviour even with a timeout configured.
        collector = _collector(env)
        assert len(collector.snapshots(now=1e6)) == 2
        assert collector.stale_drops == 0

    def test_no_timeout_disables_staleness(self, env):
        collector = Collector()
        schedd = Schedd(env)
        collector.register(Startd(env, schedd, ComputeNode(env, "n0")))
        collector.record_heartbeat("n0", 0.0)
        assert len(collector.snapshots(now=1e6)) == 1

    def test_deregistered_node_is_not_double_counted_as_stale(self, env):
        collector = _collector(env)
        collector.record_heartbeat("n0", 0.0)
        collector.deregister("n0")
        assert [s.node for s in collector.snapshots(now=100.0)] == ["n1"]
        # Crash accounting belongs to the fault injector, not staleness.
        assert collector.stale_drops == 0


class TestTransitionEmissions:
    def test_drop_emits_instant_and_counter_once(self, env):
        tracer = obs_trace.activate()
        registry = obs_metrics.activate()
        collector = _collector(env)
        collector.record_heartbeat("n0", 0.0)
        collector.snapshots(now=30.0)
        collector.snapshots(now=40.0)
        collector.snapshots(now=50.0)
        stale = [i for i in tracer.instants if i.name == "node-stale"]
        # Transition-only: three stale queries, one emission.
        assert len(stale) == 1
        assert stale[0].tid == obs_trace.FAULTS_TID
        assert stale[0].args["node"] == "n0"
        assert stale[0].args["last_heartbeat"] == 0.0
        assert registry.cell.counters["collector.stale_drops"].value == 1

    def test_reregistration_emits_mirror_instant(self, env):
        tracer = obs_trace.activate()
        registry = obs_metrics.activate()
        collector = _collector(env)
        collector.record_heartbeat("n0", 0.0)
        collector.snapshots(now=30.0)
        collector.record_heartbeat("n0", 31.0)
        collector.snapshots(now=32.0)
        collector.snapshots(now=33.0)
        back = [i for i in tracer.instants if i.name == "node-reregistered"]
        assert len(back) == 1
        assert back[0].args["node"] == "n0"
        assert registry.cell.counters["collector.reregistrations"].value == 1

    def test_flapping_node_counts_every_transition(self, env):
        collector = _collector(env)
        now = 0.0
        for _ in range(3):
            collector.record_heartbeat("n0", now)
            collector.snapshots(now=now + 1.0)  # fresh
            now += 30.0
            collector.snapshots(now=now)  # stale again
        assert collector.stale_drops == 3
        assert collector.reregistrations == 2

    def test_counters_work_without_observability_active(self, env):
        # The plain counters are maintained even when no tracer/registry
        # is installed (the fabric validation layer reads them).
        collector = _collector(env)
        collector.record_heartbeat("n0", 0.0)
        collector.snapshots(now=30.0)
        assert collector.stale_drops == 1


class TestStoreMode:
    def test_store_serves_last_update_and_heartbeats(self, env):
        collector = _collector(env)
        collector.enable_store()
        live = collector.startd("n0").snapshot()
        collector.store_update(live, now=5.0)
        # Only reporting nodes appear; the update doubled as heartbeat.
        out = collector.snapshots(now=10.0)
        assert [s.node for s in out] == ["n0"]
        assert len(collector.snapshots(now=26.0)) == 0  # stale at 26 > 5+20
        assert collector.stale_drops == 1

    def test_store_snapshots_are_isolated_copies(self, env):
        collector = _collector(env, nodes=1)
        collector.enable_store()
        stored = collector.startd("n0").snapshot()
        collector.store_update(stored, now=0.0)
        first = collector.snapshots(now=1.0)[0]
        second = collector.snapshots(now=2.0)[0]
        assert first is not stored and second is not first
        # Negotiation-time deduction mutates the served copy; the stored
        # update must be untouched for the next cycle.
        first.devices[0].free_declared_mb = -1234.0
        served = collector.snapshots(now=3.0)[0]
        assert served.devices[0].free_declared_mb != -1234.0

    def test_copy_snapshot_helper_deep_copies_devices(self, env):
        snapshot = _collector(env, nodes=1).startd("n0").snapshot()
        clone = copy_snapshot(snapshot)
        assert clone is not snapshot
        assert clone.devices[0] is not snapshot.devices[0]
        assert clone.node == snapshot.node
