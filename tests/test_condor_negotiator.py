"""Unit tests for placement policies, machine/job ads, and negotiation."""

import random

import pytest

from repro.condor import (
    DeviceSnapshot,
    ExclusivePlacement,
    MachineSnapshot,
    PinnedPlacement,
    RandomPlacement,
    job_ad,
    machine_ad,
    symmetric_match,
)
from repro.workloads import HostPhase, JobProfile, OffloadPhase


def make_profile(job_id="j", memory=1000.0, threads=60):
    return JobProfile(
        job_id=job_id,
        app="t",
        phases=(HostPhase(1), OffloadPhase(work=1, threads=threads,
                                           memory_mb=memory)),
        declared_memory_mb=memory,
        declared_threads=threads,
    )


def snapshot(node="n0", free_slots=4, free_mb=8192.0, resident=0,
             claimed=False):
    return MachineSnapshot(
        node=node,
        total_slots=16,
        free_slots=free_slots,
        devices=[
            DeviceSnapshot(
                index=0, memory_mb=8192.0, free_declared_mb=free_mb,
                resident_jobs=resident, hardware_threads=240,
                claimed_exclusive=claimed,
            )
        ],
    )


class _FakeRecord:
    def __init__(self, profile, ad):
        self.profile = profile
        self.ad = ad


def record(memory=1000.0, sharing=True, memory_aware=True):
    profile = make_profile(memory=memory)
    return _FakeRecord(profile, job_ad(profile, sharing, memory_aware))


class TestAds:
    def test_machine_ad_attributes(self):
        ad = machine_ad(snapshot(free_slots=3, free_mb=5000))
        assert ad.evaluate("Machine") == "n0"
        assert ad.evaluate("Name") == "slot1@n0"
        assert ad.evaluate("FreeSlots") == 3
        assert ad.evaluate("PhiFreeMemory") == 5000.0
        assert ad.evaluate("PhiDevicesFree") == 1

    def test_exclusive_claim_lowers_devices_free(self):
        ad = machine_ad(snapshot(claimed=True))
        assert ad.evaluate("PhiDevicesFree") == 0

    def test_sharing_memory_aware_job_matches_only_with_free_memory(self):
        rec = record(memory=4000, memory_aware=True)
        assert symmetric_match(rec.ad, machine_ad(snapshot(free_mb=5000)))
        assert not symmetric_match(rec.ad, machine_ad(snapshot(free_mb=3000)))

    def test_sharing_unaware_job_ignores_free_memory(self):
        rec = record(memory=4000, memory_aware=False)
        assert symmetric_match(rec.ad, machine_ad(snapshot(free_mb=0)))

    def test_exclusive_job_needs_free_device(self):
        rec = record(sharing=False)
        assert symmetric_match(rec.ad, machine_ad(snapshot()))
        assert not symmetric_match(rec.ad, machine_ad(snapshot(claimed=True)))

    def test_all_jobs_need_free_slot(self):
        for kwargs in (dict(sharing=True), dict(sharing=False),
                       dict(sharing=True, memory_aware=False)):
            rec = record(**kwargs)
            assert not symmetric_match(rec.ad, machine_ad(snapshot(free_slots=0)))

    def test_machine_rejects_oversized_job(self):
        rec = record(memory=1000)
        machine = machine_ad(snapshot())
        assert symmetric_match(rec.ad, machine)
        # A job bigger than the card is refused by the machine's own
        # Requirements even if the job didn't check.
        big = record(memory=9000, memory_aware=False)
        assert not symmetric_match(big.ad, machine)


class TestExclusivePlacement:
    def test_first_fit(self):
        policy = ExclusivePlacement()
        snaps = [snapshot("n0", claimed=True), snapshot("n1")]
        placement = policy.place(record(sharing=False), snaps)
        assert placement is not None
        chosen, device, exclusive = placement
        assert chosen.node == "n1"
        assert exclusive is True

    def test_skips_busy_devices(self):
        policy = ExclusivePlacement()
        snaps = [snapshot("n0", resident=1)]
        assert policy.place(record(sharing=False), snaps) is None

    def test_exhausted(self):
        policy = ExclusivePlacement()
        assert policy.exhausted([snapshot(claimed=True)])
        assert policy.exhausted([snapshot(free_slots=0)])
        assert not policy.exhausted([snapshot()])

    def test_deduct_marks_claim(self):
        policy = ExclusivePlacement()
        snap = snapshot()
        policy.deduct(snap, 0, True, 1000)
        assert snap.free_slots == 3
        assert snap.devices[0].claimed_exclusive


class TestRandomPlacement:
    def test_uniform_choice_is_seeded(self):
        snaps = [snapshot(f"n{i}") for i in range(4)]
        a = RandomPlacement(random.Random(5)).place(record(), list(snaps))
        b = RandomPlacement(random.Random(5)).place(record(), list(snaps))
        assert a[0].node == b[0].node

    def test_memory_aware_filters_devices(self):
        policy = RandomPlacement(random.Random(0), memory_aware=True)
        snaps = [snapshot("n0", free_mb=100), snapshot("n1", free_mb=5000)]
        placement = policy.place(record(memory=4000), snaps)
        assert placement[0].node == "n1"

    def test_unaware_ignores_memory(self):
        policy = RandomPlacement(random.Random(0), memory_aware=False)
        snaps = [snapshot("n0", free_mb=0)]
        assert policy.place(record(memory=4000), snaps) is not None

    def test_no_free_slots_returns_none(self):
        policy = RandomPlacement(random.Random(0))
        assert policy.place(record(), [snapshot(free_slots=0)]) is None

    def test_prefilter(self):
        aware = RandomPlacement(random.Random(0), memory_aware=True)
        assert not aware.prefilter(record(memory=4000), [snapshot(free_mb=100)])
        assert aware.prefilter(record(memory=4000), [snapshot(free_mb=5000)])
        unaware = RandomPlacement(random.Random(0), memory_aware=False)
        assert unaware.prefilter(record(memory=4000), [snapshot(free_mb=100)])

    def test_deduct_updates_shared_device(self):
        policy = RandomPlacement(random.Random(0))
        snap = snapshot(free_mb=5000)
        policy.deduct(snap, 0, False, 2000)
        assert snap.devices[0].free_declared_mb == 3000
        assert snap.devices[0].resident_jobs == 1
        assert snap.free_slots == 3


class TestPinnedPlacement:
    def test_uses_assigned_device(self):
        policy = PinnedPlacement()
        rec = record()
        rec.ad["AssignedPhiDevice"] = 0
        placement = policy.place(rec, [snapshot("n2")])
        assert placement == (placement[0], 0, False)

    def test_defaults_device_zero_when_unset(self):
        policy = PinnedPlacement()
        placement = policy.place(record(), [snapshot()])
        assert placement[1] == 0

    def test_full_node_returns_none(self):
        policy = PinnedPlacement()
        assert policy.place(record(), [snapshot(free_slots=0)]) is None
