"""Unit tests for placement policies, machine/job ads, and negotiation."""

import random

import pytest

from repro.cluster import ComputeNode
from repro.condor import (
    Collector,
    DeviceSnapshot,
    ExclusivePlacement,
    MachineSnapshot,
    Negotiator,
    PinnedPlacement,
    RandomPlacement,
    Schedd,
    Startd,
    job_ad,
    machine_ad,
    pin_requirements,
    symmetric_match,
)
from repro.condor.collector import AMBIGUOUS_NAME
from repro.sim import Environment
from repro.workloads import HostPhase, JobProfile, OffloadPhase


def make_profile(job_id="j", memory=1000.0, threads=60):
    return JobProfile(
        job_id=job_id,
        app="t",
        phases=(HostPhase(1), OffloadPhase(work=1, threads=threads,
                                           memory_mb=memory)),
        declared_memory_mb=memory,
        declared_threads=threads,
    )


def snapshot(node="n0", free_slots=4, free_mb=8192.0, resident=0,
             claimed=False):
    return MachineSnapshot(
        node=node,
        total_slots=16,
        free_slots=free_slots,
        devices=[
            DeviceSnapshot(
                index=0, memory_mb=8192.0, free_declared_mb=free_mb,
                resident_jobs=resident, hardware_threads=240,
                claimed_exclusive=claimed,
            )
        ],
    )


class _FakeRecord:
    def __init__(self, profile, ad):
        self.profile = profile
        self.ad = ad


def record(memory=1000.0, sharing=True, memory_aware=True):
    profile = make_profile(memory=memory)
    return _FakeRecord(profile, job_ad(profile, sharing, memory_aware))


class TestAds:
    def test_machine_ad_attributes(self):
        ad = machine_ad(snapshot(free_slots=3, free_mb=5000))
        assert ad.evaluate("Machine") == "n0"
        assert ad.evaluate("Name") == "slot1@n0"
        assert ad.evaluate("FreeSlots") == 3
        assert ad.evaluate("PhiFreeMemory") == 5000.0
        assert ad.evaluate("PhiDevicesFree") == 1

    def test_exclusive_claim_lowers_devices_free(self):
        ad = machine_ad(snapshot(claimed=True))
        assert ad.evaluate("PhiDevicesFree") == 0

    def test_sharing_memory_aware_job_matches_only_with_free_memory(self):
        rec = record(memory=4000, memory_aware=True)
        assert symmetric_match(rec.ad, machine_ad(snapshot(free_mb=5000)))
        assert not symmetric_match(rec.ad, machine_ad(snapshot(free_mb=3000)))

    def test_sharing_unaware_job_ignores_free_memory(self):
        rec = record(memory=4000, memory_aware=False)
        assert symmetric_match(rec.ad, machine_ad(snapshot(free_mb=0)))

    def test_exclusive_job_needs_free_device(self):
        rec = record(sharing=False)
        assert symmetric_match(rec.ad, machine_ad(snapshot()))
        assert not symmetric_match(rec.ad, machine_ad(snapshot(claimed=True)))

    def test_all_jobs_need_free_slot(self):
        for kwargs in (dict(sharing=True), dict(sharing=False),
                       dict(sharing=True, memory_aware=False)):
            rec = record(**kwargs)
            assert not symmetric_match(rec.ad, machine_ad(snapshot(free_slots=0)))

    def test_machine_rejects_oversized_job(self):
        rec = record(memory=1000)
        machine = machine_ad(snapshot())
        assert symmetric_match(rec.ad, machine)
        # A job bigger than the card is refused by the machine's own
        # Requirements even if the job didn't check.
        big = record(memory=9000, memory_aware=False)
        assert not symmetric_match(big.ad, machine)

    def test_machine_ad_is_a_live_view(self):
        # Deductions show through without rebuilding the ad.
        snap = snapshot(free_slots=3, free_mb=5000)
        ad = machine_ad(snap)
        assert ad.evaluate("FreeSlots") == 3
        snap.free_slots -= 1
        snap.devices[0].free_declared_mb -= 2000.0
        assert ad.evaluate("FreeSlots") == 2
        assert ad.evaluate("PhiFreeMemory") == 3000.0

    def test_live_view_drives_rematch_after_deduction(self):
        snap = snapshot(free_mb=5000)
        ad = machine_ad(snap)
        rec = record(memory=4000, memory_aware=True)
        assert symmetric_match(rec.ad, ad)
        RandomPlacement(random.Random(0)).deduct(snap, 0, False, 4000.0)
        assert not symmetric_match(rec.ad, ad)

    def test_failed_devices_invisible_in_view(self):
        snap = snapshot()
        snap.devices[0].failed = True
        ad = machine_ad(snap)
        assert ad.evaluate("PhiDevices") == 0
        assert ad.evaluate("PhiMemory") == 0.0
        assert ad.evaluate("PhiFreeMemory") == 0.0

    def test_view_copy_freezes_current_state(self):
        snap = snapshot(free_slots=3)
        frozen = machine_ad(snap).copy()
        snap.free_slots = 0
        assert frozen.evaluate("FreeSlots") == 3
        assert frozen.evaluate("Requirements", record().ad) is True

    def test_view_mapping_protocol(self):
        ad = machine_ad(snapshot())
        assert "FreeSlots" in ad
        assert "Requirements" in ad
        assert "Nope" not in ad
        assert set(ad.keys()) == {
            "Name", "Machine", "TotalSlots", "FreeSlots", "PhiDevices",
            "PhiDevicesFree", "PhiMemory", "PhiFreeMemory", "Requirements",
        }

    def test_explicit_set_shadows_computed(self):
        ad = machine_ad(snapshot(free_slots=4))
        ad["FreeSlots"] = 0
        assert ad.evaluate("FreeSlots") == 0


class TestExclusivePlacement:
    def test_first_fit(self):
        policy = ExclusivePlacement()
        snaps = [snapshot("n0", claimed=True), snapshot("n1")]
        placement = policy.place(record(sharing=False), snaps)
        assert placement is not None
        chosen, device, exclusive = placement
        assert chosen.node == "n1"
        assert exclusive is True

    def test_skips_busy_devices(self):
        policy = ExclusivePlacement()
        snaps = [snapshot("n0", resident=1)]
        assert policy.place(record(sharing=False), snaps) is None

    def test_exhausted(self):
        policy = ExclusivePlacement()
        assert policy.exhausted([snapshot(claimed=True)])
        assert policy.exhausted([snapshot(free_slots=0)])
        assert not policy.exhausted([snapshot()])

    def test_deduct_marks_claim(self):
        policy = ExclusivePlacement()
        snap = snapshot()
        policy.deduct(snap, 0, True, 1000)
        assert snap.free_slots == 3
        assert snap.devices[0].claimed_exclusive


class TestRandomPlacement:
    def test_uniform_choice_is_seeded(self):
        snaps = [snapshot(f"n{i}") for i in range(4)]
        a = RandomPlacement(random.Random(5)).place(record(), list(snaps))
        b = RandomPlacement(random.Random(5)).place(record(), list(snaps))
        assert a[0].node == b[0].node

    def test_memory_aware_filters_devices(self):
        policy = RandomPlacement(random.Random(0), memory_aware=True)
        snaps = [snapshot("n0", free_mb=100), snapshot("n1", free_mb=5000)]
        placement = policy.place(record(memory=4000), snaps)
        assert placement[0].node == "n1"

    def test_unaware_ignores_memory(self):
        policy = RandomPlacement(random.Random(0), memory_aware=False)
        snaps = [snapshot("n0", free_mb=0)]
        assert policy.place(record(memory=4000), snaps) is not None

    def test_no_free_slots_returns_none(self):
        policy = RandomPlacement(random.Random(0))
        assert policy.place(record(), [snapshot(free_slots=0)]) is None

    def test_prefilter(self):
        aware = RandomPlacement(random.Random(0), memory_aware=True)
        assert not aware.prefilter(record(memory=4000), [snapshot(free_mb=100)])
        assert aware.prefilter(record(memory=4000), [snapshot(free_mb=5000)])
        unaware = RandomPlacement(random.Random(0), memory_aware=False)
        assert unaware.prefilter(record(memory=4000), [snapshot(free_mb=100)])

    def test_deduct_updates_shared_device(self):
        policy = RandomPlacement(random.Random(0))
        snap = snapshot(free_mb=5000)
        policy.deduct(snap, 0, False, 2000)
        assert snap.devices[0].free_declared_mb == 3000
        assert snap.devices[0].resident_jobs == 1
        assert snap.free_slots == 3


def _pool(env, policy, nodes=3, slots=4, use_pin_index=True):
    schedd = Schedd(env)
    collector = Collector()
    for i in range(nodes):
        collector.register(
            Startd(env, schedd, ComputeNode(env, f"n{i}", mode="cosmic"),
                   slots=slots)
        )
    negotiator = Negotiator(env, schedd, collector, policy,
                            use_pin_index=use_pin_index)
    return schedd, collector, negotiator


class TestNegotiatorRouting:
    def test_pinned_jobs_take_the_index_path(self):
        env = Environment()
        schedd, _, negotiator = _pool(env, PinnedPlacement())
        for i in range(4):
            schedd.submit(make_profile(f"j{i}"))
            schedd.qedit(f"j{i}", "Requirements", pin_requirements(f"n{i % 3}"))
        assert negotiator.negotiate_once() == 4
        stats = negotiator.last_cycle
        assert stats.pin_routed == 4
        assert stats.full_scans == 0
        assert stats.evals == 4  # one probe per job, not one per machine
        assert stats.examined == 4
        assert stats.matched == 4
        assert [schedd.get(f"j{i}").matched_node for i in range(4)] \
            == ["n0", "n1", "n2", "n0"]

    def test_index_off_gives_identical_matches(self):
        results = []
        for use_index in (True, False):
            env = Environment()
            schedd, _, negotiator = _pool(env, PinnedPlacement(),
                                          use_pin_index=use_index)
            for i in range(5):
                schedd.submit(make_profile(f"j{i}"))
                schedd.qedit(f"j{i}", "Requirements",
                             pin_requirements(f"n{i % 3}"))
            negotiator.negotiate_once()
            results.append([schedd.get(f"j{i}").matched_node
                            for i in range(5)])
        assert results[0] == results[1]
        assert results[0] == ["n0", "n1", "n2", "n0", "n1"]

    def test_full_scan_counts_every_machine(self):
        env = Environment()
        schedd, _, negotiator = _pool(
            env, RandomPlacement(random.Random(0)), nodes=3,
        )
        schedd.submit(make_profile("j0"))
        assert negotiator.negotiate_once() == 1
        stats = negotiator.last_cycle
        assert stats.full_scans == 1
        assert stats.pin_routed == 0
        assert stats.evals == 3

    def test_pin_to_unknown_node_matches_nothing(self):
        env = Environment()
        schedd, _, negotiator = _pool(env, PinnedPlacement())
        schedd.submit(make_profile("ghost"))
        schedd.qedit("ghost", "Requirements", pin_requirements("nowhere"))
        assert negotiator.negotiate_once() == 0
        stats = negotiator.last_cycle
        assert stats.pin_routed == 1
        assert stats.evals == 0  # the index miss is the proof; no probes
        assert schedd.get("ghost").status == "Idle"

    def test_case_colliding_names_fall_back_to_scan(self):
        env = Environment()
        schedd, collector, negotiator = _pool(env, PinnedPlacement(), nodes=1)
        collector.register(
            Startd(env, schedd, ComputeNode(env, "N0", mode="cosmic"), slots=4)
        )
        _, index = collector.indexed_snapshots()
        assert index["slot1@n0"] is AMBIGUOUS_NAME
        schedd.submit(make_profile("j0"))
        schedd.qedit("j0", "Requirements", pin_requirements("n0"))
        assert negotiator.negotiate_once() == 1
        stats = negotiator.last_cycle
        assert stats.full_scans == 1
        assert stats.pin_routed == 0

    def test_accounting_is_a_coherent_partition(self):
        env = Environment()
        schedd, _, negotiator = _pool(
            env, RandomPlacement(random.Random(1), memory_aware=True), nodes=2,
        )
        schedd.submit(make_profile("ok", memory=1000))       # examined+matched
        schedd.submit(make_profile("big", memory=9000))      # prefiltered
        schedd.submit(make_profile("parked"))                # parked
        schedd.qedit("parked", "Requirements", "false")
        schedd.submit(make_profile("ok2", memory=1000))      # examined+matched
        matched = negotiator.negotiate_once()
        stats = negotiator.last_cycle
        assert matched == stats.matched == 2
        assert stats.parked == 1
        assert stats.prefiltered == 1
        assert stats.examined == 2
        # The partition covers exactly the pending queue walked.
        assert stats.parked + stats.prefiltered + stats.examined == 4
        assert stats.matched <= stats.examined

    def test_collector_index_covers_all_live_nodes(self):
        env = Environment()
        _, collector, _ = _pool(env, PinnedPlacement(), nodes=3)
        snapshots, index = collector.indexed_snapshots()
        assert len(snapshots) == 3
        assert sorted(index) == ["slot1@n0", "slot1@n1", "slot1@n2"]
        collector.deregister("n1")
        snapshots, index = collector.indexed_snapshots()
        assert sorted(index) == ["slot1@n0", "slot1@n2"]


class TestPinnedPlacement:
    def test_uses_assigned_device(self):
        policy = PinnedPlacement()
        rec = record()
        rec.ad["AssignedPhiDevice"] = 0
        placement = policy.place(rec, [snapshot("n2")])
        assert placement == (placement[0], 0, False)

    def test_defaults_device_zero_when_unset(self):
        policy = PinnedPlacement()
        placement = policy.place(record(), [snapshot()])
        assert placement[1] == 0

    def test_full_node_returns_none(self):
        policy = PinnedPlacement()
        assert policy.place(record(), [snapshot(free_slots=0)]) is None
