"""Tests for the ASCII device/cluster timeline rendering."""

import pytest

from repro.metrics import cluster_timeline, device_timeline, legend
from repro.phi import XeonPhi
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def busy_device(env, name="mic0"):
    phi = XeonPhi(env, name=name)

    def job(env):
        phi.register_process("j")
        yield from phi.run_offload("j", 240, 10.0)
        yield env.timeout(10)
        yield from phi.run_offload("j", 120, 10.0)
        phi.unregister_process("j")

    env.process(job(env))
    env.run()
    return phi


class TestDeviceTimeline:
    def test_width_and_glyphs(self, env):
        phi = busy_device(env)
        row = device_timeline(phi, 0, 30, width=30)
        assert len(row) == 30
        # Full-thread burst renders the densest glyph; the idle gap the
        # lightest; the half-thread burst something between.
        assert row[0] == "@"
        assert row[15] == " "
        assert row[-1] not in (" ", "@")

    def test_idle_device_is_blank(self, env):
        phi = XeonPhi(env)
        assert set(device_timeline(phi, 0, 10, width=10)) == {" "}

    def test_invalid_window(self, env):
        phi = XeonPhi(env)
        with pytest.raises(ValueError):
            device_timeline(phi, 10, 10)
        with pytest.raises(ValueError):
            device_timeline(phi, 0, 10, width=0)


class TestClusterTimeline:
    def test_one_row_per_device(self, env):
        devices = [XeonPhi(env, name=f"mic{i}") for i in range(3)]
        text = cluster_timeline(devices, 0, 10, width=20)
        lines = text.splitlines()
        assert len(lines) == 3 + 3  # axis, rows, axis, scale
        assert "mic0" in lines[1]
        assert "mic2" in lines[3]

    def test_legend(self):
        text = legend()
        assert "@" in text and "idle" in text
