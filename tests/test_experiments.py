"""Smoke tests: every experiment module runs and renders at tiny scale."""

import pytest

from repro.cluster import ClusterConfig
from repro.experiments import (
    EXPERIMENTS,
    ablation_cycle,
    ablation_knapsack,
    ablation_value,
    fig7,
    fig8,
    fig9,
    fig10,
    motivation,
    table2,
    table3,
)

TINY = ClusterConfig(nodes=2)


class TestRegistry:
    def test_every_artifact_registered(self):
        expected = {
            "motivation", "table2", "table3", "fig7", "fig8", "fig9",
            "fig10", "ablation-value", "ablation-knapsack", "ablation-cycle",
            "ablation-placement", "ext-capacity", "ext-crash", "ext-faults",
            "ext-multidevice", "ext-netchaos", "ext-oversubscription",
            "ext-replication", "ext-scale",
        }
        assert set(EXPERIMENTS) == expected

    def test_modules_expose_run_and_render(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.render)


class TestMotivation:
    def test_run_and_render(self):
        result = motivation.run(real_jobs=30, synthetic_jobs=20, config=TINY)
        text = motivation.render(result)
        assert "Table-I mix" in text
        assert 0 < result.real_mix_utilization < 1
        assert set(result.synthetic_utilization) == {
            "uniform", "normal", "low-skew", "high-skew"
        }


class TestTable2:
    def test_run_with_footprint(self):
        result = table2.run(jobs=40, config=TINY)
        text = table2.render(result)
        assert "Table II" in text
        assert result.makespans["MCC"] < result.makespans["MC"]
        assert result.footprints["MCC"].found

    def test_run_without_footprint(self):
        result = table2.run(jobs=30, config=TINY, footprint=False)
        assert result.footprints == {}
        assert "-" in table2.render(result)


class TestFig7:
    def test_histograms_cover_all_jobs(self):
        result = fig7.run(jobs=100)
        for counts in result.histograms.values():
            assert counts.sum() == 100
        assert "low-skew" in fig7.render(result)


class TestFig8:
    def test_run_subset(self):
        result = fig8.run(jobs=30, config=TINY, distributions=("normal",))
        assert set(result.makespans) == {"normal"}
        assert result.reduction("normal", "MCC") != 0
        assert "Fig. 8" in fig8.render(result)


class TestFig9:
    def test_series_alignment(self):
        result = fig9.run(jobs=30, sizes=(1, 2), config=TINY,
                          distributions=("uniform",))
        series = result.makespans["uniform"]
        assert len(series["MC"]) == 2
        # More nodes never hurt.
        assert series["MC"][1] <= series["MC"][0]
        assert "nodes" in fig9.render(result)


class TestTable3:
    def test_footprints_found(self):
        result = table3.run(jobs=30, config=TINY, distributions=("normal",))
        fp = result.footprints["normal"]["MCC"]
        assert fp.found
        assert "Table III" in table3.render(result)


class TestFig10:
    def test_pressure_scaling(self):
        result = fig10.run(sizes=(1, 2), jobs_per_node=15, config=TINY)
        assert result.job_counts == [15, 30]
        assert "Fig. 10" in fig10.render(result)


class TestAblations:
    def test_value_ablation(self):
        result = ablation_value.run(jobs=24, config=TINY)
        assert len(result.makespans) == 5  # every registered value fn
        assert "A1" in ablation_value.render(result)

    def test_knapsack_ablation(self):
        result = ablation_knapsack.run(jobs=24, config=TINY)
        assert set(result.makespans) == {
            "cap-240 (paper)", "no-cap", "no-cap/no-slots"
        }
        assert "A2" in ablation_knapsack.render(result)

    def test_cycle_ablation(self):
        result = ablation_cycle.run(
            jobs=24, intervals=(2.0, 20.0), config=TINY,
            distributions=("normal",),
        )
        series = result.makespans["normal"]
        assert len(series["MCCK"]) == 2
        assert len(series["MCCK+resched"]) == 2
        assert "A3" in ablation_cycle.render(result)
