"""Integration tests: fault injection against live cluster simulations.

These drive real MC/MCC/MCCK runs through chaotic fault schedules and
assert the recovery invariants the subsystem promises: the queue always
drains, retries stay bounded, every injected event is accounted for, and
identical (seed, profile) pairs reproduce identical outcomes.
"""

import json
from dataclasses import asdict

import pytest

from repro.cluster import ClusterConfig, run_mc, run_mcc, run_mcck
from repro.condor import COMPLETED, FAILED, CondorPool, ExclusivePlacement
from repro.cluster import ComputeNode
from repro.faults import (
    DEVICE_FAIL,
    FaultInjector,
    FaultProfile,
    FaultSchedule,
    NODE_CRASH,
    derive_fault_seed,
)
from repro.sim import Environment
from repro.workloads import generate_table1_jobs

SMALL = ClusterConfig(nodes=2, cycle_interval=2.0)
#: Aggressive mix with short downtimes so faults land within the short
#: makespans of 40-job runs.
CHAOS = FaultProfile.chaos(
    20.0, reset_downtime_s=20.0, node_downtime_s=60.0
)
FAULT_SEED = derive_fault_seed(7)


@pytest.fixture(scope="module")
def jobs():
    return generate_table1_jobs(40, seed=7)


@pytest.fixture(scope="module")
def chaotic(jobs):
    return {
        "MC": run_mc(jobs, SMALL, faults=CHAOS, fault_seed=FAULT_SEED),
        "MCC": run_mcc(jobs, SMALL, faults=CHAOS, fault_seed=FAULT_SEED),
        "MCCK": run_mcck(jobs, SMALL, faults=CHAOS, fault_seed=FAULT_SEED),
    }


class TestRecoveryInvariants:
    def test_queue_drains_under_chaos(self, chaotic, jobs):
        # run_to_completion returned, so all_done fired; every job ended
        # as exactly one of completed / terminally failed.
        for result in chaotic.values():
            assert result.job_count == len(jobs)
            assert result.completed_jobs + result.infra_failed_jobs == len(jobs)

    def test_chaos_actually_happened(self, chaotic):
        assert any(r.faults_injected > 0 for r in chaotic.values())
        assert any(r.requeues > 0 for r in chaotic.values())

    def test_recoveries_are_counted(self, chaotic):
        for result in chaotic.values():
            # A job that completed after a failed run shows up in both
            # retried_completed and (through its earlier runs) requeues.
            assert result.retried_completed <= result.requeues

    def test_chaos_costs_makespan(self, chaotic, jobs):
        clean = run_mcc(jobs, SMALL)
        assert chaotic["MCC"].makespan >= clean.makespan

    def test_deterministic_replay(self, jobs, chaotic):
        again = run_mcck(jobs, SMALL, faults=CHAOS, fault_seed=FAULT_SEED)
        a = json.dumps(asdict(chaotic["MCCK"]), sort_keys=True)
        b = json.dumps(asdict(again), sort_keys=True)
        assert a == b

    def test_null_profile_matches_fault_free(self, jobs):
        base = json.dumps(asdict(run_mcck(jobs, SMALL)), sort_keys=True)
        null = json.dumps(
            asdict(run_mcck(jobs, SMALL, faults=FaultProfile(), fault_seed=1)),
            sort_keys=True,
        )
        assert base == null


class _Harness:
    """A tiny pool + injector the tests can inspect after the run."""

    def __init__(self, jobs, profile, seed, nodes=2, devices=1):
        self.env = Environment()
        self.nodes = [
            ComputeNode(
                self.env, name=f"node{i}", num_devices=devices,
                mode="exclusive",
            )
            for i in range(nodes)
        ]
        self.pool = CondorPool(
            self.env, self.nodes, ExclusivePlacement(),
            cycle_interval=2.0,
            heartbeat_timeout=3.0 * profile.heartbeat_interval_s,
        )
        self.pool.submit(jobs)
        self.schedule = FaultSchedule.generate(profile, seed)
        self.injector = FaultInjector(
            self.env, self.schedule, self.pool, self.nodes
        )
        self.injector.start()

    def run(self):
        return self.pool.run_to_completion()


class TestInjectorAccounting:
    def test_every_event_logged(self, jobs):
        harness = _Harness(jobs, CHAOS, FAULT_SEED)
        harness.run()
        injector = harness.injector
        fired = [
            e for e in harness.schedule.events if e.time <= harness.env.now
        ]
        assert len(injector.log) >= len(fired)
        assert injector.applied + injector.skipped == len(injector.log)
        for record in injector.log:
            assert record.outcome in ("applied", "skipped-last-device", "no-target")
            if record.outcome == "applied":
                assert record.target is not None

    def test_retries_bounded(self, jobs):
        harness = _Harness(jobs, CHAOS, FAULT_SEED)
        harness.run()
        policy = harness.pool.schedd.retry_policy
        for record in harness.pool.schedd.all_records():
            assert record.attempts <= policy.max_retries + 1
            assert record.status in (COMPLETED, FAILED)

    def test_last_device_is_never_killed_permanently(self, jobs):
        # One node, one card, permanent failures only: every device-fail
        # must be skipped (else the queue deadlocks) and logged as such.
        profile = FaultProfile(device_fail_rate=30.0)
        harness = _Harness(
            jobs[:10], profile, FAULT_SEED, nodes=1, devices=1
        )
        harness.run()
        assert harness.injector.applied == 0
        outcomes = {r.outcome for r in harness.injector.log}
        assert outcomes <= {"skipped-last-device", "no-target"}
        assert harness.nodes[0].devices[0].state == "healthy"

    def test_node_crash_deregisters_and_reinstates(self, jobs):
        profile = FaultProfile(node_crash_rate=10.0, node_downtime_s=50.0)
        harness = _Harness(jobs, profile, FAULT_SEED)
        harness.run()
        crashes = [
            r for r in harness.injector.log
            if r.kind == NODE_CRASH and r.outcome == "applied"
        ]
        if not crashes:
            pytest.skip("schedule landed no node crash inside the makespan")
        # Recovery completed: every startd is back and registered.
        collector = harness.pool.collector
        for node in harness.nodes:
            assert collector.startd(node.name).alive
            assert collector.is_alive(node.name, harness.env.now)

    def test_device_failure_requeues_and_completes(self, jobs):
        # Aggressive resets on a 2-node cluster: jobs die mid-run and the
        # requeue path must still finish the whole set.
        profile = FaultProfile(device_reset_rate=40.0, reset_downtime_s=15.0)
        harness = _Harness(jobs, profile, FAULT_SEED)
        harness.run()
        schedd = harness.pool.schedd
        completed = [r for r in schedd.all_records() if r.status == COMPLETED]
        retried = [r for r in completed if r.attempts > 0]
        assert len(completed) + len(schedd.failed()) == len(jobs)
        if harness.injector.applied:
            assert schedd.requeues > 0
            assert retried, "some job should have recovered from a failed run"

    def test_injector_refuses_double_start(self, jobs):
        harness = _Harness(jobs[:2], CHAOS, FAULT_SEED)
        with pytest.raises(RuntimeError):
            harness.injector.start()

    def test_empty_schedule_adds_no_processes(self, jobs):
        env = Environment()
        nodes = [ComputeNode(env, name="node0", mode="exclusive")]
        pool = CondorPool(env, nodes, ExclusivePlacement(), cycle_interval=2.0)
        pool.submit(jobs[:2])
        schedule = FaultSchedule.generate(FaultProfile(), 1)
        injector = FaultInjector(env, schedule, pool, nodes)
        before = len(env._queue)
        injector.start()
        assert len(env._queue) == before
