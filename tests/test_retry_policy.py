"""Unit tests for RetryPolicy and the schedd's requeue/backoff path."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.condor import (
    BACKOFF,
    FAILED,
    IDLE,
    INFRASTRUCTURE_STATUSES,
    RetryPolicy,
    Schedd,
)
from repro.mpss import JobRunResult
from repro.sim import Environment
from repro.workloads import generate_table1_jobs


@pytest.fixture
def env():
    return Environment()


def _failed_result(job_id, status="device-failed", attempt=0):
    return JobRunResult(
        job_id=job_id, start=0.0, end=1.0, status=status,
        offloads_run=0, attempt=attempt,
    )


class TestRetryPolicy:
    def test_defaults_bound_retries(self):
        policy = RetryPolicy()
        assert policy.should_retry("device-failed", 1)
        assert policy.should_retry("device-failed", policy.max_retries)
        assert not policy.should_retry("device-failed", policy.max_retries + 1)

    def test_container_kills_never_retry(self):
        policy = RetryPolicy()
        assert not policy.should_retry("memory-limit", 1)
        assert not policy.should_retry("oom-killed", 1)
        assert not policy.should_retry("completed", 1)

    def test_all_infrastructure_statuses_retry(self):
        policy = RetryPolicy()
        for status in INFRASTRUCTURE_STATUSES:
            assert policy.should_retry(status, 1)

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            base_backoff_s=10.0, backoff_factor=2.0, max_backoff_s=35.0
        )
        assert policy.backoff(1) == 10.0
        assert policy.backoff(2) == 20.0
        assert policy.backoff(3) == 35.0  # capped, not 40
        assert policy.backoff(10) == 35.0

    def test_zero_retries_allowed(self):
        policy = RetryPolicy(max_retries=0)
        assert not policy.should_retry("device-failed", 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestBackoffJitter:
    """Seeded deterministic jitter: spreads storms, never breaks replays."""

    def test_zero_jitter_and_keyless_calls_are_unchanged(self):
        plain = RetryPolicy(base_backoff_s=10.0)
        jittered = RetryPolicy(base_backoff_s=10.0, jitter=0.5)
        for attempt in (1, 2, 3):
            assert plain.backoff(attempt, key="job-1") == plain.backoff(attempt)
            # No key → no draw, even with jitter configured.
            assert jittered.backoff(attempt) == plain.backoff(attempt)

    def test_distinct_jobs_spread_out(self):
        # The point of the satellite: sixteen jobs failed by one node
        # crash must not all re-queue in the same negotiation cycle.
        policy = RetryPolicy(base_backoff_s=30.0, jitter=0.25, jitter_seed=7)
        delays = {policy.backoff(1, key=f"job-{i}") for i in range(16)}
        assert len(delays) > 1

    @given(
        jitter=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        attempt=st.integers(min_value=1, max_value=8),
        key=st.text(min_size=1, max_size=20),
        base=st.floats(min_value=0.1, max_value=100.0),
        factor=st.floats(min_value=1.0, max_value=4.0),
    )
    def test_jittered_delay_is_bounded_and_deterministic(
        self, jitter, seed, attempt, key, base, factor
    ):
        policy = RetryPolicy(
            base_backoff_s=base, backoff_factor=factor,
            jitter=jitter, jitter_seed=seed,
        )
        undithered = RetryPolicy(
            base_backoff_s=base, backoff_factor=factor
        ).backoff(attempt)
        delay = policy.backoff(attempt, key=key)
        # Bounded: scaled into [1 - jitter, 1] × the exponential delay.
        assert undithered * (1.0 - jitter) <= delay <= undithered
        # Deterministic: same (seed, key, attempt) → same draw, always.
        assert delay == policy.backoff(attempt, key=key)

    def test_draw_varies_with_seed_key_and_attempt(self):
        policy = RetryPolicy(base_backoff_s=30.0, jitter=0.5, jitter_seed=1)
        other_seed = RetryPolicy(base_backoff_s=30.0, jitter=0.5, jitter_seed=2)
        assert policy.backoff(1, key="j") != other_seed.backoff(1, key="j")
        assert policy.backoff(1, key="j1") != policy.backoff(1, key="j2")
        # Attempts 1 and 2 differ by more than the 2× exponential step
        # alone (the jitter draw is keyed on the attempt too).
        assert policy.backoff(2, key="j") != 2.0 * policy.backoff(1, key="j")


class TestScheddFailurePath:
    def _submit_one(self, env, **policy_kwargs):
        schedd = Schedd(env, retry_policy=RetryPolicy(**policy_kwargs))
        profile = generate_table1_jobs(1, seed=3)[0]
        record = schedd.submit(profile)
        return schedd, record

    def test_infrastructure_failure_requeues_after_backoff(self, env):
        schedd, record = self._submit_one(env, base_backoff_s=30.0)
        schedd.mark_running(record.job_id, "node0", 0)
        schedd.mark_failed(record.job_id, _failed_result(record.job_id))
        assert record.status == BACKOFF
        assert record.attempts == 1
        assert record.matched_node is None
        env.run(until=29.0)
        assert record.status == BACKOFF
        env.run(until=31.0)
        assert record.status == IDLE
        assert schedd.requeues == 1

    def test_requeue_restores_submit_requirements(self, env):
        schedd, record = self._submit_one(env)
        original = repr(record.ad.get_expr("Requirements"))
        schedd.qedit(record.job_id, "Requirements", "false")
        schedd.mark_running(record.job_id, "node0", 0)
        schedd.mark_failed(record.job_id, _failed_result(record.job_id))
        env.run(until=1000.0)
        assert record.status == IDLE
        assert repr(record.ad.get_expr("Requirements")) == original

    def test_retries_exhausted_is_terminal(self, env):
        schedd, record = self._submit_one(env, max_retries=2, base_backoff_s=1.0)
        for attempt in range(3):
            env.run(until=env.now + 100.0)
            assert record.status == IDLE
            schedd.mark_running(record.job_id, "node0", 0)
            schedd.mark_failed(
                record.job_id, _failed_result(record.job_id, attempt=attempt)
            )
        assert record.status == FAILED
        assert record.attempts == 3
        assert record.result is not None
        assert schedd.terminal_failures == 1
        assert len(record.failures) == 3

    def test_memory_limit_rejected_by_mark_failed_policy(self, env):
        # Kill-by-container is not retryable: it terminally fails even on
        # the first attempt (callers route kills through mark_completed;
        # this guards the policy if one reaches mark_failed anyway).
        schedd, record = self._submit_one(env)
        schedd.mark_running(record.job_id, "node0", 0)
        schedd.mark_failed(
            record.job_id, _failed_result(record.job_id, status="memory-limit")
        )
        assert record.status == FAILED

    def test_terminal_failure_triggers_all_done(self, env):
        schedd, record = self._submit_one(env, max_retries=0)
        done = schedd.all_done()
        schedd.mark_running(record.job_id, "node0", 0)
        schedd.mark_failed(record.job_id, _failed_result(record.job_id))
        env.run()
        assert done.triggered
        assert schedd.unfinished_jobs == 0

    def test_failure_and_requeue_listeners_fire(self, env):
        schedd, record = self._submit_one(env, base_backoff_s=5.0)
        failures = []
        requeues = []
        schedd.failure_listeners.append(
            lambda rec, res, retry: failures.append((rec.job_id, retry))
        )
        schedd.requeue_listeners.append(lambda rec: requeues.append(rec.job_id))
        schedd.mark_running(record.job_id, "node0", 0)
        schedd.mark_failed(record.job_id, _failed_result(record.job_id))
        assert failures == [(record.job_id, True)]
        env.run()
        assert requeues == [record.job_id]

    def test_mark_failed_requires_running(self, env):
        schedd, record = self._submit_one(env)
        with pytest.raises(ValueError):
            schedd.mark_failed(record.job_id, _failed_result(record.job_id))


class TestRetryBoundaryAcrossRecovery:
    """RetryPolicy boundary semantics, including across a schedd crash.

    The contract: a job is retried while ``attempts <= max_retries``, so
    it runs exactly ``max_retries + 1`` times before failing terminally —
    and a schedd crash/replay in the middle must neither reset nor
    double-count the attempt ledger.
    """

    def _recovery_pool(self, env, **policy_kwargs):
        import random

        from repro.cluster import ComputeNode
        from repro.condor import CondorPool, RandomPlacement
        from repro.net.profile import NetProfile

        executors = [ComputeNode(env, "node0", mode="cosmic")]
        return CondorPool(
            env,
            executors,
            RandomPlacement(random.Random(7)),
            net=NetProfile(),
            recovery=True,
            retry_policy=RetryPolicy(**policy_kwargs),
        )

    def _fail_once(self, schedd, record, attempt):
        schedd.mark_running(record.job_id, "node0", 0)
        schedd.mark_failed(
            record.job_id, _failed_result(record.job_id, attempt=attempt)
        )

    def test_attempts_exactly_at_max_retries_still_retries(self, env):
        schedd = Schedd(env, retry_policy=RetryPolicy(max_retries=1,
                                                      base_backoff_s=1.0))
        record = schedd.submit(generate_table1_jobs(1, seed=3)[0])
        self._fail_once(schedd, record, 0)
        # attempts == max_retries: exactly at the boundary, retried.
        assert record.attempts == 1
        assert record.status == BACKOFF
        env.run(until=env.now + 10.0)
        self._fail_once(schedd, record, 1)
        # attempts == max_retries + 1: one past the boundary, terminal —
        # the job ran max_retries + 1 = 2 times in total.
        assert record.attempts == 2
        assert record.status == FAILED

    def test_attempt_accounting_survives_schedd_crash(self, env):
        pool = self._recovery_pool(env, max_retries=3, base_backoff_s=50.0)
        schedd = pool.schedd
        old = schedd.submit(generate_table1_jobs(1, seed=3)[0])
        self._fail_once(schedd, old, 0)
        assert old.attempts == 1
        pool.supervisor.crash_daemon("schedd", downtime_s=5.0)
        env.run(until=env.timeout(10.0))
        record = schedd.get(old.job_id)
        assert record is not old  # replay rebuilt the record
        assert record.attempts == 1
        assert record.status == BACKOFF
        assert len(record.failures) == 1
        # The journaled backoff resumes its remaining delay, then the
        # retry budget continues from where the crash left it.
        env.run(until=env.timeout(60.0))
        assert record.status == IDLE
        for attempt in range(1, 4):
            self._fail_once(schedd, record, attempt)
            env.run(until=env.now + 1000.0)
        # 4 runs total = max_retries + 1, counted across the restart.
        assert record.attempts == 4
        assert record.status == FAILED

    def test_non_retryable_outcomes_stay_terminal_after_recovery(self, env):
        pool = self._recovery_pool(env, max_retries=0)
        schedd = pool.schedd
        jobs = generate_table1_jobs(2, seed=3)
        exhausted = schedd.submit(jobs[0])
        killed = schedd.submit(jobs[1])
        self._fail_once(schedd, exhausted, 0)
        assert exhausted.status == FAILED
        schedd.mark_running(killed.job_id, "node0", 0)
        schedd.mark_completed(
            killed.job_id,
            _failed_result(killed.job_id, status="memory-limit"),
        )
        pool.supervisor.crash_daemon("schedd", downtime_s=5.0)
        env.run(until=env.timeout(200.0))
        assert schedd.get(exhausted.job_id).status == FAILED
        assert schedd.get(killed.job_id).status == "Completed"
        assert schedd.get(killed.job_id).result.status == "memory-limit"
        # Neither terminal job re-entered the queue after the restart.
        assert schedd.pending() == []
        assert schedd.requeues == 0
