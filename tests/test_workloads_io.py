"""Tests for job-set JSON serialization."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    HostPhase,
    JobProfile,
    OffloadPhase,
    dump_jobs,
    dumps_jobs,
    generate_table1_jobs,
    load_jobs,
    loads_jobs,
)


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        jobs = generate_table1_jobs(25, seed=4)
        path = tmp_path / "jobs.json"
        dump_jobs(jobs, path)
        loaded = load_jobs(path)
        assert loaded == jobs  # frozen dataclasses: structural equality

    def test_string_roundtrip(self):
        jobs = generate_table1_jobs(5, seed=1)
        assert loads_jobs(dumps_jobs(jobs)) == jobs

    def test_loaded_jobs_run(self, tmp_path):
        from repro.cluster import ClusterConfig, run_mcc

        jobs = generate_table1_jobs(15, seed=4)
        path = tmp_path / "jobs.json"
        dump_jobs(jobs, path)
        result = run_mcc(load_jobs(path), ClusterConfig(nodes=2))
        assert result.completed_jobs == 15

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=50, allow_nan=False),
                st.integers(min_value=1, max_value=240),
                st.floats(min_value=0, max_value=4000, allow_nan=False),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_arbitrary_profiles_roundtrip(self, offloads):
        phases = []
        for work, threads, memory in offloads:
            phases.append(HostPhase(1.5))
            phases.append(
                OffloadPhase(work=work, threads=threads, memory_mb=memory,
                             transfer_mb=memory / 4)
            )
        job = JobProfile(
            job_id="prop", app="x",
            phases=tuple(phases),
            declared_memory_mb=4100.0, declared_threads=240,
            submit_time=3.25,
        )
        assert loads_jobs(dumps_jobs([job])) == [job]


class TestValidation:
    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError, match="not a repro job-set"):
            load_jobs(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro-jobset", "version": 99,
                                    "count": 0, "jobs": []}))
        with pytest.raises(ValueError, match="version"):
            load_jobs(path)

    def test_count_mismatch_rejected(self, tmp_path):
        jobs = generate_table1_jobs(3, seed=0)
        path = tmp_path / "bad.json"
        dump_jobs(jobs, path)
        payload = json.loads(path.read_text())
        payload["count"] = 5
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="count"):
            load_jobs(path)

    def test_unknown_phase_kind_rejected(self):
        text = json.dumps({
            "format": "repro-jobset", "version": 1, "count": 1,
            "jobs": [{
                "job_id": "x", "app": "a", "declared_memory_mb": 100,
                "declared_threads": 4, "submit_time": 0,
                "phases": [{"kind": "gpu"}],
            }],
        })
        with pytest.raises(ValueError, match="phase kind"):
            loads_jobs(text)
