"""Unit tests for the malleable-offload Xeon Phi device engine."""

import random

import pytest

from repro.phi import (
    AffinitizedContention,
    PAPER_SPEC,
    UnmanagedContention,
    XeonPhi,
    XeonPhiSpec,
    format_report,
    query_device,
    query_node,
)
from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def phi(env):
    return XeonPhi(env, name="mic0")


def _offload_job(env, phi, owner, threads, work, log):
    phi.register_process(owner)
    yield from phi.run_offload(owner, threads, work)
    log.append((owner, env.now))
    phi.unregister_process(owner)


class TestOffloadExecution:
    def test_single_offload_runs_at_full_speed(self, env, phi):
        log = []
        env.process(_offload_job(env, phi, "j1", 240, 10.0, log))
        env.run()
        assert log == [("j1", 10.0)]

    def test_two_within_budget_offloads_do_not_interfere(self, env, phi):
        log = []
        env.process(_offload_job(env, phi, "j1", 120, 10.0, log))
        env.process(_offload_job(env, phi, "j2", 120, 10.0, log))
        env.run()
        assert log == [("j1", 10.0), ("j2", 10.0)]

    def test_oversubscribed_offloads_slow_down(self, env, phi):
        log = []
        env.process(_offload_job(env, phi, "j1", 240, 10.0, log))
        env.process(_offload_job(env, phi, "j2", 240, 10.0, log))
        env.run()
        # Demand 480/240 = 2x: rate = 0.5 / (1 + 1.5) = 0.2 -> 50s each.
        assert log[0][1] == pytest.approx(50.0)
        assert log[1][1] == pytest.approx(50.0)

    def test_rate_recomputed_when_offload_finishes(self, env, phi):
        log = []

        def short(env):
            phi.register_process("short")
            yield from phi.run_offload("short", 240, 2.0)
            log.append(("short", env.now))
            phi.unregister_process("short")

        def long(env):
            phi.register_process("long")
            yield from phi.run_offload("long", 240, 2.0)
            log.append(("long", env.now))
            phi.unregister_process("long")

        env.process(short(env))
        env.process(long(env))
        env.run()
        # Both run at rate 0.2 while overlapped; each finishes 2/0.2 = 10s.
        assert log[0][1] == pytest.approx(10.0)

    def test_staggered_overlap_accounting(self, env, phi):
        log = []

        def first(env):
            phi.register_process("a")
            yield from phi.run_offload("a", 240, 10.0)
            log.append(("a", env.now))
            phi.unregister_process("a")

        def second(env):
            yield env.timeout(5)
            phi.register_process("b")
            yield from phi.run_offload("b", 240, 10.0)
            log.append(("b", env.now))
            phi.unregister_process("b")

        env.process(first(env))
        env.process(second(env))
        env.run()
        # 'a': 5s alone (5 units) + overlap at rate .2 needs 25s -> t=30.
        assert log[0] == ("a", pytest.approx(30.0))
        # 'b': 25s overlapped (5 units done) + 5s alone -> t=35.
        assert log[1] == ("b", pytest.approx(35.0))

    def test_zero_work_offload_finishes_immediately(self, env, phi):
        log = []
        env.process(_offload_job(env, phi, "j", 60, 0.0, log))
        env.run()
        assert log == [("j", 0.0)]

    def test_invalid_offload_parameters(self, env, phi):
        def bad_threads(env):
            phi.register_process("x")
            yield from phi.run_offload("x", 0, 1.0)

        p = env.process(bad_threads(env))
        with pytest.raises(ValueError):
            env.run()
        assert not p.ok

    def test_offload_outside_process_rejected(self, env, phi):
        phi.register_process("x")
        gen = phi.run_offload("x", 60, 1.0)
        with pytest.raises(RuntimeError):
            next(gen)

    def test_offload_log_records_history(self, env, phi):
        log = []
        env.process(_offload_job(env, phi, "j1", 60, 3.0, log))
        env.run()
        assert len(phi.offload_log) == 1
        record = phi.offload_log[0]
        assert record.owner == "j1"
        assert record.threads == 60
        assert record.completed
        assert record.end == pytest.approx(3.0)

    def test_repr(self, phi):
        assert "mic0" in repr(phi)


class TestTelemetry:
    def test_busy_cores_tracked(self, env, phi):
        log = []
        env.process(_offload_job(env, phi, "j1", 120, 10.0, log))
        env.run()
        # 120 threads = 30 cores busy for 10s out of 60 cores.
        assert phi.telemetry.core_utilization(60, 0, 10) == pytest.approx(0.5)

    def test_idle_gaps_reduce_utilization(self, env, phi):
        def job(env):
            phi.register_process("j")
            yield from phi.run_offload("j", 240, 5.0)
            yield env.timeout(5)  # host phase: device idle
            yield from phi.run_offload("j", 240, 5.0)
            phi.unregister_process("j")

        env.process(job(env))
        env.run()
        assert phi.telemetry.core_utilization(60, 0, 15) == pytest.approx(2 / 3)


class TestMemoryAndOOM:
    def test_register_twice_rejected(self, phi):
        phi.register_process("p")
        with pytest.raises(ValueError):
            phi.register_process("p")

    def test_allocate_unregistered_rejected(self, phi):
        with pytest.raises(KeyError):
            phi.allocate("ghost", 100)

    def test_allocation_within_capacity_is_safe(self, phi):
        phi.register_process("p")
        phi.allocate("p", 4000)
        assert phi.resident_of("p") == 4000
        assert phi.telemetry.oom_kills == 0

    def test_oom_kills_largest_resident(self, phi):
        killed = []
        phi.register_process("small", on_kill=killed.append)
        phi.register_process("big", on_kill=killed.append)
        phi.allocate("small", 2000)
        phi.allocate("big", 5000)
        phi.allocate("small", 2000)  # total 9000 > 8192
        assert killed == ["big"]
        assert phi.resident_of("big") == 0
        assert phi.telemetry.oom_kills == 1

    def test_oom_badness_tie_break_is_first_registered(self, phi):
        killed = []
        phi.register_process("first", on_kill=killed.append)
        phi.register_process("second", on_kill=killed.append)
        phi.allocate("first", 4500)
        phi.allocate("second", 4500)
        assert killed == ["first"]

    def test_oom_random_policy(self, env):
        phi = XeonPhi(env, oom_policy="random", rng=random.Random(7))
        killed = []
        phi.register_process("a", on_kill=killed.append)
        phi.register_process("b", on_kill=killed.append)
        phi.allocate("a", 4500)
        phi.allocate("b", 4500)
        assert len(killed) == 1

    def test_random_policy_requires_rng(self, env):
        with pytest.raises(ValueError):
            XeonPhi(env, oom_policy="random")

    def test_unknown_policy_rejected(self, env):
        with pytest.raises(ValueError):
            XeonPhi(env, oom_policy="lifo")

    def test_free_and_unregister(self, phi):
        phi.register_process("p")
        phi.allocate("p", 1000)
        phi.free("p", 400)
        assert phi.resident_of("p") == 600
        phi.unregister_process("p")
        assert phi.resident_memory_mb == 0

    def test_free_clamps_at_zero(self, phi):
        phi.register_process("p")
        phi.allocate("p", 100)
        phi.free("p", 500)
        assert phi.resident_of("p") == 0

    def test_set_resident(self, phi):
        phi.register_process("p")
        phi.set_resident("p", 1234)
        assert phi.resident_of("p") == 1234

    def test_negative_amounts_rejected(self, phi):
        phi.register_process("p")
        for method in (phi.allocate, phi.free, phi.set_resident):
            with pytest.raises(ValueError):
                method("p", -1)

    def test_oom_kill_interrupts_running_offload(self, env, phi):
        outcomes = []

        def victim(env):
            phi.register_process(
                "victim",
                on_kill=lambda owner: proc.interrupt("oom"),
            )
            phi.allocate("victim", 5000)
            try:
                yield from phi.run_offload("victim", 60, 100.0)
                outcomes.append("finished")
            except Interrupt as interrupt:
                outcomes.append(interrupt.cause)
            finally:
                phi.unregister_process("victim")

        def aggressor(env):
            yield env.timeout(1)
            phi.register_process("aggressor")
            phi.allocate("aggressor", 4000)  # pushes total past 8192
            phi.unregister_process("aggressor")

        proc = env.process(victim(env))
        env.process(aggressor(env))
        env.run()
        assert outcomes == ["oom"]
        assert phi.running_offloads == 0


class TestMicinfo:
    def test_query_device(self, env):
        phi = XeonPhi(env, spec=XeonPhiSpec(cores=57, memory_mb=6144), name="micX")
        info = query_device(phi, index=2)
        assert info.cores == 57
        assert info.memory_mb == 6144
        assert info.device_index == 2
        assert info.name == "micX"

    def test_query_node_and_report(self, env):
        devices = [XeonPhi(env, name=f"mic{i}") for i in range(2)]
        infos = query_node(devices)
        assert [i.device_index for i in infos] == [0, 1]
        report = format_report(infos)
        assert "2 device(s)" in report
        assert "mic1" in report
        assert "240" in report
