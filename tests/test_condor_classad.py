"""Unit tests for the ClassAd expression language."""

import pytest

from repro.condor.classad import (
    ERROR,
    UNDEFINED,
    ClassAd,
    ClassAdError,
    parse,
    rank,
    symmetric_match,
    tokenize,
)


def ev(expression, my=None, target=None):
    ad = ClassAd(my or {})
    ad.set_expr("X", expression)
    return ad.evaluate("X", ClassAd(target) if target is not None else None)


class TestLexer:
    def test_tokens(self):
        kinds = [k for k, _ in tokenize('1 2.5 "hi" Name == && =?= ?')]
        assert kinds == ["int", "float", "string", "name", "op", "op", "op", "op", "end"]

    def test_bad_character(self):
        with pytest.raises(ClassAdError):
            tokenize("a @ b")

    def test_scientific_notation(self):
        assert ev("1e3") == 1000.0
        assert ev("2.5e-1") == 0.25


class TestLiteralsAndArithmetic:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("42", 42),
            ("4.5", 4.5),
            ('"abc"', "abc"),
            ("true", True),
            ("false", False),
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("10 / 4", 2),  # integer division, C-style
            ("10.0 / 4", 2.5),
            ("-5 + 2", -3),
            ("7 - 10", -3),
            ('"a" + "b"', "ab"),
        ],
    )
    def test_evaluation(self, expr, expected):
        assert ev(expr) == expected

    def test_division_by_zero_is_error(self):
        assert ev("1 / 0") is ERROR

    def test_string_arith_is_error(self):
        assert ev('"a" * 3') is ERROR

    def test_bool_arith_is_error(self):
        assert ev("true + 1") is ERROR


class TestComparisons:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 < 2", True),
            ("2 <= 2", True),
            ("3 > 4", False),
            ("3 >= 3", True),
            ("1 == 1.0", True),
            ("1 != 2", True),
            ('"Foo" == "foo"', True),  # case-insensitive strings
            ('"a" < "b"', True),
            ("true == true", True),
        ],
    )
    def test_comparisons(self, expr, expected):
        assert ev(expr) is expected

    def test_mixed_type_comparison_is_error(self):
        assert ev('1 == "1"') is ERROR


class TestThreeValuedLogic:
    def test_undefined_propagates_through_arith(self):
        assert ev("Missing + 1") is UNDEFINED

    def test_false_and_undefined_is_false(self):
        assert ev("false && Missing") is False
        assert ev("Missing && false") is False

    def test_true_or_undefined_is_true(self):
        assert ev("true || Missing") is True
        assert ev("Missing || true") is True

    def test_true_and_undefined_is_undefined(self):
        assert ev("true && Missing") is UNDEFINED

    def test_not_undefined_is_undefined(self):
        assert ev("!Missing") is UNDEFINED

    def test_meta_equality_handles_undefined(self):
        assert ev("Missing =?= undefined") is True
        assert ev("1 =?= undefined") is False
        assert ev("Missing =!= undefined") is False
        assert ev('1 =?= "1"') is False
        assert ev("1 =?= 1") is True

    def test_error_dominates(self):
        assert ev("(1/0) && true") is ERROR
        assert ev("(1/0) + 1") is ERROR

    def test_non_bool_logical_operand_is_error(self):
        assert ev("1 && true") is ERROR


class TestTernaryAndFunctions:
    def test_ternary(self):
        assert ev("1 < 2 ? 10 : 20") == 10
        assert ev("1 > 2 ? 10 : 20") == 20

    def test_ternary_undefined_condition(self):
        assert ev("Missing ? 1 : 2") is UNDEFINED

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("floor(2.7)", 2),
            ("ceiling(2.1)", 3),
            ("min(3, 1, 2)", 1),
            ("max(3, 1, 2)", 3),
            ('strcat("a", 1, "b")', "a1b"),
            ('toLower("ABC")', "abc"),
            ('toUpper("abc")', "ABC"),
            ('stringListMember("b", "a, b, c")', True),
            ('stringListMember("z", "a, b, c")', False),
            ("isUndefined(Missing)", True),
            ("isUndefined(1)", False),
        ],
    )
    def test_builtins(self, expr, expected):
        assert ev(expr) == expected

    def test_unknown_function_is_error(self):
        assert ev("nosuch(1)") is ERROR

    def test_bad_argument_is_error(self):
        assert ev('floor("a")') is ERROR


class TestParserErrors:
    @pytest.mark.parametrize("bad", ["1 +", "(1", "? :", "a b", "my.", "1 ? 2"])
    def test_syntax_errors(self, bad):
        with pytest.raises(ClassAdError):
            parse(bad)


class TestAds:
    def test_attribute_case_insensitive(self):
        ad = ClassAd({"Memory": 8192})
        assert ad.evaluate("memory") == 8192
        assert ad.evaluate("MEMORY") == 8192
        assert "mEmOrY" in ad

    def test_missing_attribute_is_undefined(self):
        assert ClassAd().evaluate("nope") is UNDEFINED

    def test_attributes_reference_each_other(self):
        ad = ClassAd({"A": 2})
        ad.set_expr("B", "A * 10")
        assert ad.evaluate("B") == 20

    def test_circular_reference_is_error(self):
        ad = ClassAd()
        ad.set_expr("A", "B")
        ad.set_expr("B", "A")
        assert ad.evaluate("A") is ERROR

    def test_my_and_target_scoping(self):
        machine = ClassAd({"Memory": 8192, "Name": "slot1@node1"})
        job = ClassAd({"RequestMemory": 4000})
        job.set_expr("Fits", "MY.RequestMemory <= TARGET.Memory")
        assert job.evaluate("Fits", machine) is True

    def test_unqualified_falls_through_to_target(self):
        machine = ClassAd({"Memory": 8192})
        job = ClassAd()
        job.set_expr("X", "Memory > 1000")
        assert job.evaluate("X", machine) is True

    def test_target_attribute_evaluates_in_target_context(self):
        machine = ClassAd({"Total": 100})
        machine.set_expr("Free", "Total - 40")
        job = ClassAd()
        job.set_expr("X", "TARGET.Free")
        assert job.evaluate("X", machine) == 60

    def test_delete_and_keys(self):
        ad = ClassAd({"A": 1, "B": 2})
        del ad["a"]
        assert ad.keys() == ["B"]

    def test_copy_is_independent(self):
        ad = ClassAd({"A": 1})
        dup = ad.copy()
        dup["A"] = 2
        assert ad.evaluate("A") == 1
        assert dup.evaluate("A") == 2

    def test_unsupported_value_rejected(self):
        with pytest.raises(TypeError):
            ClassAd({"A": [1, 2, 3]})

    def test_string_stored_verbatim(self):
        ad = ClassAd({"Name": "slot1@node1"})
        assert ad.evaluate("Name") == "slot1@node1"


class TestMatchmaking:
    def _machine(self, memory=8192, free_devices=1):
        machine = ClassAd(
            {"Name": "slot1@n1", "PhiMemory": memory, "PhiDevicesFree": free_devices}
        )
        machine.set_expr("Requirements", "TARGET.RequestPhiMemory <= MY.PhiMemory")
        return machine

    def _job(self, memory=4000):
        job = ClassAd({"RequestPhiMemory": memory})
        job.set_expr(
            "Requirements",
            "TARGET.PhiDevicesFree >= 1 && MY.RequestPhiMemory <= TARGET.PhiMemory",
        )
        return job

    def test_mutual_match(self):
        assert symmetric_match(self._job(), self._machine())

    def test_job_rejects_machine(self):
        assert not symmetric_match(self._job(9000), self._machine())

    def test_machine_rejects_job(self):
        machine = self._machine()
        machine.set_expr("Requirements", "TARGET.RequestPhiMemory <= 1000")
        assert not symmetric_match(self._job(4000), machine)

    def test_undefined_requirements_do_not_match(self):
        assert not symmetric_match(ClassAd(), self._machine())

    def test_rank(self):
        job = ClassAd()
        job.set_expr("Rank", "TARGET.PhiDevicesFree * 10")
        assert rank(job, self._machine(free_devices=3)) == 30.0

    def test_rank_defaults_to_zero(self):
        assert rank(ClassAd(), self._machine()) == 0.0

    def test_pinning_requirement_matches_only_named_machine(self):
        # The paper's qedit integration: Name == "<slot>@<node>".
        job = self._job()
        job.set_expr("Requirements", 'TARGET.Name == "slot1@n1"')
        machine = self._machine()
        machine.set_expr("Requirements", "true")
        assert symmetric_match(job, machine)
        other = machine.copy()
        other["Name"] = "slot1@n2"
        assert not symmetric_match(job, other)
