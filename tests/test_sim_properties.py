"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, Environment, Resource, Store


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=10, allow_nan=False),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_timeout_workloads_fire_in_time_order(spec):
    """Whatever the mix of processes/timeouts, observed time never goes
    backwards and every process fires exactly once."""
    env = Environment()
    log = []

    def worker(env, delay, tag):
        yield env.timeout(delay)
        log.append((env.now, tag))

    for tag, (delay, _pri) in enumerate(spec):
        env.process(worker(env, delay, tag))
    env.run()
    times = [t for t, _ in log]
    assert times == sorted(times)
    assert len(log) == len(spec)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.1, max_value=10, allow_nan=False),
        min_size=1,
        max_size=15,
    ),
    st.integers(min_value=1, max_value=4),
)
def test_resource_serialization_conserves_work(durations, capacity):
    """A capacity-k resource runs at most k holders at once, and the
    makespan is at least total_work / k."""
    env = Environment()
    resource = Resource(env, capacity=capacity)
    active = [0]
    peak = [0]

    def worker(env, hold):
        with resource.request() as req:
            yield req
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield env.timeout(hold)
            active[0] -= 1

    for hold in durations:
        env.process(worker(env, hold))
    env.run()
    assert peak[0] <= capacity
    assert env.now >= sum(durations) / capacity - 1e-9
    assert env.now <= sum(durations) + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["put", "get"]),
                  st.integers(min_value=1, max_value=10)),
        min_size=1,
        max_size=30,
    )
)
def test_container_conservation(ops):
    """level == init + puts_granted - gets_granted at all times, and the
    level never leaves [0, capacity]."""
    env = Environment()
    tank = Container(env, capacity=50, init=25)
    granted = {"put": 0, "get": 0}

    def actor(env, op, amount):
        if op == "put":
            yield tank.put(amount)
        else:
            yield tank.get(amount)
        granted[op] += amount
        assert 0 <= tank.level <= 50

    for op, amount in ops:
        env.process(actor(env, op, amount))
    env.run()
    assert tank.level == 25 + granted["put"] - granted["get"]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=100), min_size=0,
                max_size=25))
def test_store_preserves_items(items):
    """Everything put into a Store comes out exactly once, FIFO."""
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == list(items)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=5, allow_nan=False),
            st.floats(min_value=0.1, max_value=5, allow_nan=False),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_identical_workloads_identical_traces(spec):
    """Full determinism: two environments given the same program produce
    the same event trace."""

    def run_once():
        env = Environment()
        trace = []

        def worker(env, a, b, tag):
            yield env.timeout(a)
            trace.append((env.now, tag, "a"))
            yield env.timeout(b)
            trace.append((env.now, tag, "b"))

        for tag, (a, b) in enumerate(spec):
            env.process(worker(env, a, b, tag))
        env.run()
        return trace

    assert run_once() == run_once()
