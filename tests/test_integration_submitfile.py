"""End-to-end: submit-description text all the way to a validated run."""

import pytest

from repro.cluster import ComputeNode, validate_pool
from repro.condor import CondorPool, PinnedPlacement
from repro.core import KnapsackClusterScheduler
from repro.metrics import offload_stats
from repro.sim import Environment
from repro.workloads import profiles_from_submit

SUBMIT = """\
executable          = mixed_kernel
request_phi_devices = 1
request_phi_memory  = 900
request_phi_threads = 120
queue 12
"""


@pytest.fixture
def pool_and_nodes():
    env = Environment()
    nodes = [ComputeNode(env, f"n{i}", mode="cosmic") for i in range(2)]
    pool = CondorPool(env, nodes, PinnedPlacement(), cycle_interval=2.0)
    return env, pool, nodes


class TestSubmitToSchedule:
    def test_full_pipeline(self, pool_and_nodes):
        env, pool, nodes = pool_and_nodes
        jobs = profiles_from_submit(SUBMIT, seed=3)
        pool.submit(jobs)
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()
        makespan = pool.run_to_completion()

        assert len(pool.schedd.completed()) == 12
        assert validate_pool(pool, expect_gated=True).ok
        # 900 MB declared: up to 9 jobs per 8 GB card; the knapsack's
        # thread cap (120x2 = 240) still allows pairs, so sharing happened.
        peak = max(
            node.cosmics[0].stats.peak_concurrent_jobs for node in nodes
        )
        assert peak >= 2

    def test_declarations_flow_into_ads(self, pool_and_nodes):
        env, pool, _nodes = pool_and_nodes
        jobs = profiles_from_submit(SUBMIT, seed=3)
        pool.submit(jobs)
        record = pool.schedd.get(jobs[0].job_id)
        assert record.ad.evaluate("RequestPhiThreads") == 120
        assert record.ad.evaluate("RequestPhiMemory") == jobs[0].declared_memory_mb

    def test_offloads_ran_at_reasonable_rates(self, pool_and_nodes):
        env, pool, nodes = pool_and_nodes
        pool.submit(profiles_from_submit(SUBMIT, seed=3))
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()
        pool.run_to_completion()
        for node in nodes:
            stats = offload_stats(node.devices[0])
            if stats.offloads:
                # COSMIC-gated: slowdowns only from the sharing penalty,
                # which is bounded for pairs at 1.35x (plus queue gaps are
                # not service time).
                assert stats.mean_slowdown < 2.5
