"""Property-based tests for the device's malleable-offload engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phi import AffinitizedContention, PAPER_SPEC, XeonPhi
from repro.sim import Environment

_offload_specs = st.lists(
    st.tuples(
        st.integers(min_value=4, max_value=240),   # threads
        st.floats(min_value=0.1, max_value=20.0, allow_nan=False),  # work
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),  # start
    ),
    min_size=1,
    max_size=10,
)


def _run_schedule(spec, contention=None):
    env = Environment()
    phi = XeonPhi(env, contention=contention or AffinitizedContention())
    finished = []

    def job(env, owner, threads, work, delay):
        yield env.timeout(delay)
        phi.register_process(owner)
        yield from phi.run_offload(owner, threads, work)
        finished.append((owner, env.now))
        phi.unregister_process(owner)

    for i, (threads, work, delay) in enumerate(spec):
        env.process(job(env, f"j{i}", threads, work, delay))
    env.run()
    return env, phi, finished


class TestWorkConservation:
    @settings(max_examples=50, deadline=None)
    @given(_offload_specs)
    def test_every_offload_completes(self, spec):
        _env, phi, finished = _run_schedule(spec)
        assert len(finished) == len(spec)
        assert all(record.completed for record in phi.offload_log)

    @settings(max_examples=50, deadline=None)
    @given(_offload_specs)
    def test_service_time_at_least_work(self, spec):
        """No offload can finish faster than running alone at rate 1."""
        _env, phi, _ = _run_schedule(spec)
        for record in phi.offload_log:
            assert record.end - record.start >= record.work - 1e-6

    @settings(max_examples=50, deadline=None)
    @given(_offload_specs)
    def test_thread_seconds_accounted_exactly_without_contention(self, spec):
        """With the ideal affinitized model and total demand within the
        budget at all times, the busy-thread integral equals the sum of
        work x threads (nothing is lost or double-counted)."""
        env, phi, _ = _run_schedule(spec)
        expected = sum(w * t for t, w, _ in spec)
        integral = phi.telemetry.busy_threads.integral(0, env.now + 1e-9)
        demand_peak = _max_concurrent_demand(phi)
        if demand_peak <= PAPER_SPEC.hardware_threads:
            assert integral == pytest.approx(expected, rel=1e-6)
        else:
            # Oversubscribed intervals clamp the busy-thread count at the
            # budget while stretching time superlinearly, so no tight
            # relation holds; the quantity is still finite and positive.
            assert integral > 0

    @settings(max_examples=50, deadline=None)
    @given(_offload_specs)
    def test_penalized_sharing_never_beats_ideal(self, spec):
        _env1, phi1, f1 = _run_schedule(spec, AffinitizedContention())
        _env2, phi2, f2 = _run_schedule(
            spec, AffinitizedContention(sharing_penalty=0.5)
        )
        ideal = max(t for _o, t in f1)
        penalized = max(t for _o, t in f2)
        assert penalized >= ideal - 1e-6


def _max_concurrent_demand(phi):
    events = []
    for record in phi.offload_log:
        events.append((record.start, 1, record.threads))
        events.append((record.end, 0, -record.threads))
    events.sort()
    current = peak = 0
    for _t, _k, delta in events:
        current += delta
        peak = max(peak, current)
    return peak
