"""Unit + property tests for the 0-1 knapsack solvers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Item,
    brute_force,
    knapsack_1d,
    knapsack_cardinality,
    knapsack_thread_capped,
)


def items_of(*triples):
    return [Item(weight=w, value=v, threads=t) for w, v, t in triples]


class TestItem:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"weight": -1, "value": 1},
            {"weight": 1, "value": -1},
            {"weight": 1, "value": 1, "threads": -1},
        ],
    )
    def test_invalid_items_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Item(**kwargs)


class TestKnapsack1D:
    def test_empty_input(self):
        result = knapsack_1d([], 1000)
        assert result.indices == ()
        assert result.total_value == 0

    def test_zero_capacity(self):
        result = knapsack_1d(items_of((100, 1.0, 0)), 10, quantum=50)
        assert result.indices == ()

    def test_single_fitting_item(self):
        result = knapsack_1d(items_of((100, 1.0, 0)), 1000, quantum=50)
        assert result.indices == (0,)
        assert result.total_weight == 100

    def test_picks_best_subset(self):
        # Capacity 100: {60,40} with value 2.0 beats {90} with value 1.5.
        items = items_of((90, 1.5, 0), (60, 1.0, 0), (40, 1.0, 0))
        result = knapsack_1d(items, 100, quantum=10)
        assert result.indices == (1, 2)
        assert result.total_value == pytest.approx(2.0)

    def test_never_exceeds_capacity(self):
        # 70 MB quantizes up to 2x50 MB, so only one item fits in 150 MB
        # under the coarse quantum; the fine quantum packs two.
        items = items_of((70, 1.0, 0), (70, 1.0, 0), (70, 1.0, 0))
        coarse = knapsack_1d(items, 150, quantum=50)
        assert coarse.total_weight <= 150
        assert coarse.count == 1
        fine = knapsack_1d(items, 150, quantum=10)
        assert fine.total_weight <= 150
        assert fine.count == 2

    def test_quantization_rounds_up(self):
        # 51 MB quantizes to 2 units of 50: two such items need 200 MB.
        items = items_of((51, 1.0, 0), (51, 1.0, 0))
        result = knapsack_1d(items, 150, quantum=50)
        assert result.count == 1

    def test_zero_value_items_not_packed(self):
        result = knapsack_1d(items_of((50, 0.0, 0)), 1000, quantum=50)
        assert result.indices == ()

    def test_oversized_item_skipped(self):
        items = items_of((2000, 5.0, 0), (100, 1.0, 0))
        result = knapsack_1d(items, 1000, quantum=50)
        assert result.indices == (1,)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            knapsack_1d([], -1)
        with pytest.raises(ValueError):
            knapsack_1d([], 100, quantum=0)

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=12),  # weight in quanta
                st.floats(min_value=0, max_value=5, allow_nan=False),
            ),
            min_size=0,
            max_size=10,
        ),
        st.integers(min_value=0, max_value=15),
    )
    def test_matches_brute_force(self, raw, capacity_units):
        items = [Item(weight=w, value=round(v, 3)) for w, v in raw]
        capacity = float(capacity_units)
        dp = knapsack_1d(items, capacity, quantum=1.0)
        reference = brute_force(items, capacity)
        assert dp.total_value == pytest.approx(reference.total_value, abs=1e-6)
        assert dp.total_weight <= capacity


class TestKnapsackCardinality:
    def test_count_bound_respected(self):
        items = items_of(*[(10, 1.0, 0)] * 6)
        result = knapsack_cardinality(items, 1000, max_items=3, quantum=10)
        assert result.count == 3

    def test_zero_max_items(self):
        result = knapsack_cardinality(items_of((10, 1.0, 0)), 100, max_items=0)
        assert result.indices == ()

    def test_negative_max_items_rejected(self):
        with pytest.raises(ValueError):
            knapsack_cardinality([], 100, max_items=-1)

    def test_prefers_valuable_items_under_count_bound(self):
        items = items_of((10, 0.1, 0), (10, 5.0, 0), (10, 3.0, 0))
        result = knapsack_cardinality(items, 1000, max_items=2, quantum=10)
        assert result.indices == (1, 2)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10),
                st.floats(min_value=0, max_value=5, allow_nan=False),
            ),
            min_size=0,
            max_size=9,
        ),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=5),
    )
    def test_matches_brute_force(self, raw, capacity_units, max_items):
        items = [Item(weight=w, value=round(v, 3)) for w, v in raw]
        capacity = float(capacity_units)
        dp = knapsack_cardinality(items, capacity, max_items=max_items, quantum=1.0)
        reference = brute_force(items, capacity, max_items=max_items)
        assert dp.total_value == pytest.approx(reference.total_value, abs=1e-6)
        assert dp.count <= max_items
        assert dp.total_weight <= capacity


class TestKnapsackThreadCapped:
    def test_thread_budget_respected(self):
        items = items_of((10, 1.0, 180), (10, 1.0, 180), (10, 1.0, 60))
        result = knapsack_thread_capped(items, 1000, thread_capacity=240, quantum=10)
        assert result.total_threads <= 240
        # Best feasible: one 180 + one 60 (240 exactly).
        assert result.count == 2

    def test_paper_zero_value_rule(self):
        # Two 240-thread jobs can never co-pack under the cap.
        items = items_of((10, 0.5, 240), (10, 0.5, 240))
        result = knapsack_thread_capped(items, 1000, thread_capacity=240, quantum=10)
        assert result.count == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            knapsack_thread_capped([], 100, thread_capacity=0)
        with pytest.raises(ValueError):
            knapsack_thread_capped([], 100, thread_capacity=240, thread_quantum=0)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=8),
                st.floats(min_value=0, max_value=5, allow_nan=False),
                st.integers(min_value=0, max_value=6),
            ),
            min_size=0,
            max_size=9,
        ),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=8),
    )
    def test_matches_brute_force(self, raw, capacity_units, thread_units):
        items = [Item(weight=w, value=round(v, 3), threads=t) for w, v, t in raw]
        capacity = float(capacity_units)
        thread_capacity = thread_units
        dp = knapsack_thread_capped(
            items, capacity, thread_capacity=thread_capacity,
            quantum=1.0, thread_quantum=1,
        )
        reference = brute_force(items, capacity, thread_capacity=thread_capacity)
        assert dp.total_value == pytest.approx(reference.total_value, abs=1e-6)
        assert dp.total_threads <= thread_capacity
        assert dp.total_weight <= capacity


class TestBruteForce:
    def test_too_many_items_rejected(self):
        with pytest.raises(ValueError):
            brute_force([Item(1, 1)] * 21, 100)

    def test_empty_set_feasible(self):
        result = brute_force([], 10)
        assert result.indices == ()
