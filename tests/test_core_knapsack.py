"""Unit + property tests for the 0-1 knapsack solvers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Item,
    brute_force,
    knapsack_1d,
    knapsack_cardinality,
    knapsack_thread_capped,
)


def items_of(*triples):
    return [Item(weight=w, value=v, threads=t) for w, v, t in triples]


class TestItem:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"weight": -1, "value": 1},
            {"weight": 1, "value": -1},
            {"weight": 1, "value": 1, "threads": -1},
        ],
    )
    def test_invalid_items_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Item(**kwargs)


class TestKnapsack1D:
    def test_empty_input(self):
        result = knapsack_1d([], 1000)
        assert result.indices == ()
        assert result.total_value == 0

    def test_zero_capacity(self):
        result = knapsack_1d(items_of((100, 1.0, 0)), 10, quantum=50)
        assert result.indices == ()

    def test_single_fitting_item(self):
        result = knapsack_1d(items_of((100, 1.0, 0)), 1000, quantum=50)
        assert result.indices == (0,)
        assert result.total_weight == 100

    def test_picks_best_subset(self):
        # Capacity 100: {60,40} with value 2.0 beats {90} with value 1.5.
        items = items_of((90, 1.5, 0), (60, 1.0, 0), (40, 1.0, 0))
        result = knapsack_1d(items, 100, quantum=10)
        assert result.indices == (1, 2)
        assert result.total_value == pytest.approx(2.0)

    def test_never_exceeds_capacity(self):
        # 70 MB quantizes up to 2x50 MB, so only one item fits in 150 MB
        # under the coarse quantum; the fine quantum packs two.
        items = items_of((70, 1.0, 0), (70, 1.0, 0), (70, 1.0, 0))
        coarse = knapsack_1d(items, 150, quantum=50)
        assert coarse.total_weight <= 150
        assert coarse.count == 1
        fine = knapsack_1d(items, 150, quantum=10)
        assert fine.total_weight <= 150
        assert fine.count == 2

    def test_quantization_rounds_up(self):
        # 51 MB quantizes to 2 units of 50: two such items need 200 MB.
        items = items_of((51, 1.0, 0), (51, 1.0, 0))
        result = knapsack_1d(items, 150, quantum=50)
        assert result.count == 1

    def test_zero_value_items_not_packed(self):
        result = knapsack_1d(items_of((50, 0.0, 0)), 1000, quantum=50)
        assert result.indices == ()

    def test_oversized_item_skipped(self):
        items = items_of((2000, 5.0, 0), (100, 1.0, 0))
        result = knapsack_1d(items, 1000, quantum=50)
        assert result.indices == (1,)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            knapsack_1d([], -1)
        with pytest.raises(ValueError):
            knapsack_1d([], 100, quantum=0)

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=12),  # weight in quanta
                st.floats(min_value=0, max_value=5, allow_nan=False),
            ),
            min_size=0,
            max_size=10,
        ),
        st.integers(min_value=0, max_value=15),
    )
    def test_matches_brute_force(self, raw, capacity_units):
        items = [Item(weight=w, value=round(v, 3)) for w, v in raw]
        capacity = float(capacity_units)
        dp = knapsack_1d(items, capacity, quantum=1.0)
        reference = brute_force(items, capacity)
        assert dp.total_value == pytest.approx(reference.total_value, abs=1e-6)
        assert dp.total_weight <= capacity


class TestKnapsackCardinality:
    def test_count_bound_respected(self):
        items = items_of(*[(10, 1.0, 0)] * 6)
        result = knapsack_cardinality(items, 1000, max_items=3, quantum=10)
        assert result.count == 3

    def test_zero_max_items(self):
        result = knapsack_cardinality(items_of((10, 1.0, 0)), 100, max_items=0)
        assert result.indices == ()

    def test_negative_max_items_rejected(self):
        with pytest.raises(ValueError):
            knapsack_cardinality([], 100, max_items=-1)

    def test_prefers_valuable_items_under_count_bound(self):
        items = items_of((10, 0.1, 0), (10, 5.0, 0), (10, 3.0, 0))
        result = knapsack_cardinality(items, 1000, max_items=2, quantum=10)
        assert result.indices == (1, 2)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10),
                st.floats(min_value=0, max_value=5, allow_nan=False),
            ),
            min_size=0,
            max_size=9,
        ),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=5),
    )
    def test_matches_brute_force(self, raw, capacity_units, max_items):
        items = [Item(weight=w, value=round(v, 3)) for w, v in raw]
        capacity = float(capacity_units)
        dp = knapsack_cardinality(items, capacity, max_items=max_items, quantum=1.0)
        reference = brute_force(items, capacity, max_items=max_items)
        assert dp.total_value == pytest.approx(reference.total_value, abs=1e-6)
        assert dp.count <= max_items
        assert dp.total_weight <= capacity


class TestKnapsackThreadCapped:
    def test_thread_budget_respected(self):
        items = items_of((10, 1.0, 180), (10, 1.0, 180), (10, 1.0, 60))
        result = knapsack_thread_capped(items, 1000, thread_capacity=240, quantum=10)
        assert result.total_threads <= 240
        # Best feasible: one 180 + one 60 (240 exactly).
        assert result.count == 2

    def test_paper_zero_value_rule(self):
        # Two 240-thread jobs can never co-pack under the cap.
        items = items_of((10, 0.5, 240), (10, 0.5, 240))
        result = knapsack_thread_capped(items, 1000, thread_capacity=240, quantum=10)
        assert result.count == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            knapsack_thread_capped([], 100, thread_capacity=0)
        with pytest.raises(ValueError):
            knapsack_thread_capped([], 100, thread_capacity=240, thread_quantum=0)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=8),
                st.floats(min_value=0, max_value=5, allow_nan=False),
                st.integers(min_value=0, max_value=6),
            ),
            min_size=0,
            max_size=9,
        ),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=8),
    )
    def test_matches_brute_force(self, raw, capacity_units, thread_units):
        items = [Item(weight=w, value=round(v, 3), threads=t) for w, v, t in raw]
        capacity = float(capacity_units)
        thread_capacity = thread_units
        dp = knapsack_thread_capped(
            items, capacity, thread_capacity=thread_capacity,
            quantum=1.0, thread_quantum=1,
        )
        reference = brute_force(items, capacity, thread_capacity=thread_capacity)
        assert dp.total_value == pytest.approx(reference.total_value, abs=1e-6)
        assert dp.total_threads <= thread_capacity
        assert dp.total_weight <= capacity


class TestBruteForce:
    def test_too_many_items_rejected(self):
        with pytest.raises(ValueError):
            brute_force([Item(1, 1)] * 21, 100)

    def test_empty_set_feasible(self):
        result = brute_force([], 10)
        assert result.indices == ()


class TestQuantizationGrid:
    """The ceil-weights / floor-capacity inconsistency (regression).

    The seed paired ceil-quantized weights with a floor-quantized
    capacity, so an item that exactly fits was unpackable whenever the
    capacity was not a quantum multiple.
    """

    def test_exact_fit_item_packable(self):
        # ISSUE example: item = capacity = 75 MB, quantum = 50.
        result = knapsack_1d([Item(75, 1.0)], 75, quantum=50)
        assert result.indices == (0,)

    def test_exact_fit_under_all_solvers(self):
        items = [Item(75, 1.0, threads=8)]
        assert knapsack_1d(items, 75, quantum=50).indices == (0,)
        assert knapsack_cardinality(items, 75, 4, quantum=50).indices == (0,)
        capped = knapsack_thread_capped(items, 75, 240, quantum=50)
        assert capped.indices == (0,)

    def test_partial_quantum_never_admits_overweight(self):
        # Capacity 55, quantum 50: floor grid W=1. Two 30 MB items would
        # be overweight (60 > 55) and must not both pack.
        result = knapsack_1d([Item(30, 1.0), Item(30, 1.0)], 55, quantum=50)
        assert result.count == 1
        assert result.total_weight <= 55

    def test_sub_quantum_capacity_packs_one_fitting_item(self):
        # Capacity 40 < quantum 50: exactly one fitting item may pack.
        items = [Item(30, 1.0), Item(30, 2.0), Item(45, 5.0)]
        result = knapsack_1d(items, 40, quantum=50)
        assert result.indices == (1,)  # best single fitting item

    def test_thread_grid_exact_fit(self):
        # 3 threads under a thread quantum of 4 with budget 3: the old
        # floor/ceil mismatch excluded the job outright.
        items = [Item(10, 1.0, threads=3)]
        result = knapsack_thread_capped(
            items, 1000, thread_capacity=3, quantum=10, thread_quantum=4
        )
        assert result.indices == (0,)

    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=12, allow_nan=False),
                st.floats(min_value=0, max_value=5, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        ),
        st.floats(min_value=0, max_value=15, allow_nan=False),
        st.floats(min_value=0.3, max_value=7, allow_nan=False),
    )
    def test_feasible_and_single_fit(self, raw, capacity, quantum):
        """Arbitrary (non-grid) weights: never overweight, and any item
        that truly fits is packable alone."""
        items = [Item(weight=w, value=round(v, 3)) for w, v in raw]
        result = knapsack_1d(items, capacity, quantum=quantum)
        assert result.total_weight <= capacity + 1e-9
        for item in items:
            if item.weight <= capacity and item.value > 0:
                alone = knapsack_1d([item], capacity, quantum=quantum)
                assert alone.indices == (0,)


class TestPropertyCrossCheck:
    """All three solvers vs brute_force on quantum-grid weights with
    non-multiple capacities, zero-weight / zero-value items included."""

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=8),  # weight in quanta
                st.floats(min_value=0, max_value=5, allow_nan=False),
                st.integers(min_value=0, max_value=3),  # threads in quanta
            ),
            min_size=0,
            max_size=9,
        ),
        st.floats(min_value=0, max_value=12, allow_nan=False),  # non-multiple
        st.floats(min_value=0.5, max_value=3, allow_nan=False),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=4),
    )
    def test_all_solvers_match_brute_force(
        self, raw, capacity_units, quantum, max_items, thread_units, thread_quantum
    ):
        # Weights/threads on the quantum grid keep the DP exact even when
        # the capacities are not grid multiples. Snapping the capacity to
        # 6 decimals keeps it off the float knife-edge: it is either an
        # exact grid multiple (where an exact-fit set's float sum can
        # exceed `capacity_units * quantum` by an ulp — absorbed by the
        # reference's fit_tolerance) or at least 1e-6 quanta away from
        # any feasibility boundary, where both solvers agree exactly.
        capacity_units = round(capacity_units, 6)
        items = [
            Item(
                weight=w * quantum,
                value=round(v, 3),
                threads=t * thread_quantum,
            )
            for w, v, t in raw
        ]
        capacity = capacity_units * quantum
        thread_capacity = thread_units * thread_quantum

        plain = knapsack_1d(items, capacity, quantum=quantum)
        reference = brute_force(items, capacity, fit_tolerance=1e-9)
        assert plain.total_value == pytest.approx(
            reference.total_value, abs=1e-6
        )
        assert plain.total_weight <= capacity + 1e-9

        card = knapsack_cardinality(
            items, capacity, max_items=max_items, quantum=quantum
        )
        reference = brute_force(
            items, capacity, max_items=max_items, fit_tolerance=1e-9
        )
        assert card.total_value == pytest.approx(
            reference.total_value, abs=1e-6
        )
        assert card.count <= max_items
        assert card.total_weight <= capacity + 1e-9

        capped = knapsack_thread_capped(
            items,
            capacity,
            thread_capacity=thread_capacity,
            quantum=quantum,
            thread_quantum=thread_quantum,
        )
        reference = brute_force(
            items, capacity, thread_capacity=thread_capacity,
            fit_tolerance=1e-9,
        )
        assert capped.total_value == pytest.approx(
            reference.total_value, abs=1e-6
        )
        assert capped.total_threads <= thread_capacity
        assert capped.total_weight <= capacity + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=8),
                st.floats(min_value=0, max_value=5, allow_nan=False),
                st.integers(min_value=0, max_value=8),
            ),
            min_size=0,
            max_size=9,
        ),
        st.integers(min_value=0, max_value=12),
    )
    def test_unconstrained_dimensions_agree_with_1d(self, raw, capacity_units):
        """A slack count bound / thread budget must not change the optimum."""
        items = [Item(weight=w, value=round(v, 3), threads=t) for w, v, t in raw]
        capacity = float(capacity_units)
        plain = knapsack_1d(items, capacity, quantum=1.0)
        card = knapsack_cardinality(
            items, capacity, max_items=len(items), quantum=1.0
        )
        capped = knapsack_thread_capped(
            items, capacity, thread_capacity=1000, quantum=1.0, thread_quantum=1
        )
        assert card.total_value == pytest.approx(plain.total_value, abs=1e-6)
        assert capped.total_value == pytest.approx(plain.total_value, abs=1e-6)
