"""Property tests guarding the kernel/telemetry fast paths.

Two families of invariants back the performance work:

* the bisect/prefix-sum ``StepSeries`` queries must return *bit-identical*
  floats to a naive linear walk over the segments (the pre-optimization
  implementation), on arbitrary monotone recording patterns;
* the event kernel must replay deterministically — the same seed yields
  the same simulation outcome, with and without an active fault profile.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.simulation import ClusterConfig, run_configuration
from repro.faults import FaultProfile
from repro.phi.telemetry import StepSeries
from repro.workloads import generate_synthetic_jobs


# -- naive reference implementations (the pre-optimization linear code) ------


def naive_value_at(times, values, time):
    result = 0.0
    for t, v in zip(times, values):
        if t <= time:
            result = v
        else:
            break
    return result


def naive_integral(times, values, start, end):
    if end <= start or not times:
        return 0.0
    total = 0.0
    n = len(times)
    for i in range(n):
        seg_end = times[i + 1] if i + 1 < n else end
        lo = max(times[i], start)
        hi = min(seg_end, end)
        if hi > lo:
            total += values[i] * (hi - lo)
    return total


#: Recording patterns: non-negative deltas (0 → same-instant overwrite)
#: and values drawn from a small pool so equal-value compaction and
#: overwrite-reversion both occur frequently.
_series_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=7.0, allow_nan=False),
        st.sampled_from([0.0, 1.0, 2.5, 4.0, 7.25]),
    ),
    min_size=0,
    max_size=30,
)

_window_strategy = st.tuples(
    st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
)


def _build(steps):
    """Record ``steps`` into a StepSeries and a raw segment list."""
    series = StepSeries()
    t = 0.0
    for delta, value in steps:
        t += delta
        series.record(t, value)
    return series


class TestStepSeriesMatchesNaiveWalk:
    @settings(max_examples=120, deadline=None)
    @given(_series_strategy, st.floats(min_value=-5, max_value=130))
    def test_value_at(self, steps, when):
        series = _build(steps)
        assert series.value_at(when) == naive_value_at(
            series.times, series.values, when
        )

    @settings(max_examples=150, deadline=None)
    @given(_series_strategy, _window_strategy)
    def test_integral_bit_identical(self, steps, window):
        series = _build(steps)
        start, end = sorted(window)
        expected = naive_integral(series.times, series.values, start, end)
        # Exact equality on purpose: both the prefix fast path and the
        # bisect walk accumulate the same terms in the same order.
        assert series.integral(start, end) == expected
        # A second query runs against the now-built prefix cache.
        assert series.integral(start, end) == expected

    @settings(max_examples=100, deadline=None)
    @given(_series_strategy, _window_strategy)
    def test_integral_after_more_records(self, steps, window):
        """Interleaving queries and records keeps the cache coherent."""
        series = _build(steps)
        start, end = sorted(window)
        series.integral(start, end)  # populate the prefix cache
        tail = (series.times[-1] if series.times else 0.0) + 1.0
        series.record(tail, 3.0)
        series.record(tail + 2.0, 0.0)
        expected = naive_integral(series.times, series.values, start, end)
        assert series.integral(start, end) == expected

    @settings(max_examples=100, deadline=None)
    @given(_series_strategy, _window_strategy)
    def test_mean(self, steps, window):
        series = _build(steps)
        start, end = sorted(window)
        expected = naive_integral(series.times, series.values, start, end)
        if end > start:
            assert series.mean(start, end) == expected / (end - start)
        else:
            assert series.mean(start, end) == 0.0

    def test_overwrite_reverting_to_previous_value_recompacts(self):
        series = StepSeries()
        series.record(0.0, 5.0)
        series.record(3.0, 8.0)
        series.record(3.0, 5.0)  # back to the previous segment's value
        assert series.times == [0.0]
        assert series.values == [5.0]
        assert series.integral(0.0, 10.0) == 50.0

    def test_recompaction_interacts_with_prefix_cache(self):
        series = StepSeries()
        series.record(0.0, 2.0)
        series.record(4.0, 6.0)
        assert series.integral(0.0, 4.0) == 8.0  # builds the cache
        series.record(4.0, 2.0)  # drops the breakpoint at t=4
        assert len(series) == 1
        assert series.integral(0.0, 10.0) == 20.0


# -- kernel replay determinism -----------------------------------------------


def _small_config():
    return ClusterConfig(nodes=2, slots_per_node=8, seed=97)


def _run(faults=None):
    jobs = generate_synthetic_jobs(count=40, distribution="normal", seed=11)
    kwargs = {}
    if faults is not None:
        kwargs = {"faults": faults, "fault_seed": 1311}
    return run_configuration("MCCK", jobs, _small_config(), **kwargs)


class TestKernelReplay:
    def test_same_seed_same_outcome(self):
        first = _run()
        second = _run()
        assert first.makespan == second.makespan
        assert first.per_device_utilization == second.per_device_utilization
        assert first.job_results == second.job_results

    def test_same_seed_same_outcome_under_faults(self):
        profile = FaultProfile(
            device_fail_rate=8.0,
            device_reset_rate=4.0,
            node_crash_rate=2.0,
            job_crash_rate=8.0,
            reset_downtime_s=20.0,
            node_downtime_s=60.0,
        )
        first = _run(faults=profile)
        second = _run(faults=profile)
        assert first.faults_injected == second.faults_injected
        assert first.faults_injected > 0, "profile should actually inject"
        assert first.makespan == second.makespan
        assert first.per_device_utilization == second.per_device_utilization
        assert first.job_results == second.job_results
