"""Property-based tests for the ClassAd language (hypothesis).

The evaluator must be *total*: whatever expression the fuzzer builds,
evaluation returns a value (possibly UNDEFINED/ERROR) and never raises.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.condor import ClassAd, parse, set_compilation
from repro.condor.classad import ERROR, UNDEFINED, Expr, Value
from repro.condor.submit import format_classad, parse_classad_text

# -- expression generators ----------------------------------------------------

_numbers = st.one_of(
    st.integers(min_value=-1000, max_value=1000).map(str),
    st.floats(min_value=0.001, max_value=1000, allow_nan=False).map(
        lambda f: f"{f:.3f}"
    ),
)
_strings = st.text(
    alphabet="abcXYZ 09_", min_size=0, max_size=8
).map(lambda s: '"' + s + '"')
_names = st.sampled_from(["Memory", "Name", "Missing", "Threads", "Busy"])
_atoms = st.one_of(_numbers, _strings, _names,
                   st.sampled_from(["true", "false", "undefined"]))

_binops = st.sampled_from(
    ["+", "-", "*", "/", "==", "!=", "<", "<=", ">", ">=", "&&", "||",
     "=?=", "=!="]
)


@st.composite
def expressions(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return draw(_atoms)
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        left = draw(expressions(depth=depth - 1))
        right = draw(expressions(depth=depth - 1))
        op = draw(_binops)
        return f"({left} {op} {right})"
    if kind == 1:
        inner = draw(expressions(depth=depth - 1))
        return f"(!{inner})" if draw(st.booleans()) else f"(-{inner})"
    if kind == 2:
        c = draw(expressions(depth=depth - 1))
        t = draw(expressions(depth=depth - 1))
        f = draw(expressions(depth=depth - 1))
        return f"({c} ? {t} : {f})"
    inner = draw(expressions(depth=depth - 1))
    fn = draw(st.sampled_from(["floor", "ceiling", "isUndefined", "toLower"]))
    return f"{fn}({inner})"


_CONTEXT = ClassAd({"Memory": 8192, "Name": "slot1@n0", "Threads": 240,
                    "Busy": False})

#: A nastier target for the compiled-vs-interpreted sweep: attributes
#: that are expressions (role-swapped evaluation), literally undefined,
#: and self-referential (depth guard).
_EXPR_CONTEXT = ClassAd({"Name": "slot1@n0", "Busy": False})
_EXPR_CONTEXT.set_expr("Memory", "Threads * 34 + 32")
_EXPR_CONTEXT.set_expr("Threads", "240")
_EXPR_CONTEXT["Missing"] = UNDEFINED

_LOOP_MY = ClassAd()
_LOOP_MY.set_expr("Memory", "Memory + 1")  # circular: must yield ERROR


def _interpreted(ad, target):
    """Evaluate ``ad.X`` with the compiled path globally disabled."""
    set_compilation(False)
    try:
        return ad.evaluate("X", target)
    finally:
        set_compilation(True)


@settings(max_examples=300, deadline=None)
@given(expressions())
def test_evaluator_is_total(text):
    """Parsing succeeds and evaluation never raises."""
    expr = parse(text)
    ad = ClassAd()
    ad.set_expr("X", text)
    value = ad.evaluate("X", _CONTEXT)
    assert isinstance(expr, Expr)
    _assert_classad_value(value)


@settings(max_examples=300, deadline=None)
@given(expressions())
def test_evaluation_is_deterministic(text):
    ad = ClassAd()
    ad.set_expr("X", text)
    assert _norm(ad.evaluate("X", _CONTEXT)) == _norm(ad.evaluate("X", _CONTEXT))


@settings(max_examples=200, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["A", "B", "C", "D"]),
        st.one_of(
            st.integers(min_value=-100, max_value=100),
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            st.booleans(),
            st.text(alphabet="xyz 12", max_size=6),
        ),
        max_size=4,
    )
)
def test_text_format_roundtrips_literal_ads(attrs):
    """format -> parse -> evaluate matches the original literals."""
    ad = ClassAd(attrs)
    dup = parse_classad_text(format_classad(ad))
    for name in attrs:
        assert dup.evaluate(name) == pytest.approx(ad.evaluate(name)) \
            if isinstance(attrs[name], float) \
            else dup.evaluate(name) == ad.evaluate(name)


@settings(max_examples=300, deadline=None)
@given(expressions())
def test_compiled_evaluator_matches_interpreted(text):
    """The closure compiler is an exact drop-in for the tree-walker:
    same values AND same UNDEFINED/ERROR propagation."""
    ad = ClassAd()
    ad.set_expr("X", text)
    for target in (_CONTEXT, _EXPR_CONTEXT, None):
        assert _norm(ad.evaluate("X", target)) == _norm(_interpreted(ad, target))


@settings(max_examples=150, deadline=None)
@given(expressions())
def test_compiled_matches_interpreted_with_expression_my_ad(text):
    """Unscoped references resolving to expression-valued (even circular)
    my-attributes take the interpreted fallback — still equivalent."""
    ad = _LOOP_MY.copy()
    ad.set_expr("X", text)
    assert _norm(ad.evaluate("X", _CONTEXT)) == _norm(_interpreted(ad, _CONTEXT))


@settings(max_examples=150, deadline=None)
@given(expressions(), expressions())
def test_qedit_mid_run_swaps_compiled_closure(first, second):
    """Rewriting an attribute mid-run (condor_qedit) must never serve a
    stale closure: the post-edit value equals a fresh interpreted
    evaluation of the new expression."""
    ad = ClassAd()
    ad.set_expr("X", first)
    ad.evaluate("X", _CONTEXT)  # populate the compile cache
    ad.set_expr("X", second)
    after = ad.evaluate("X", _CONTEXT)
    fresh = ClassAd()
    fresh.set_expr("X", second)
    assert _norm(after) == _norm(_interpreted(fresh, _CONTEXT))


def _assert_classad_value(value: Value) -> None:
    assert (
        value is UNDEFINED
        or value is ERROR
        or isinstance(value, (bool, int, float, str))
    )


def _norm(value):
    if value is UNDEFINED:
        return "UNDEF"
    if value is ERROR:
        return "ERR"
    return value
