"""Property-based tests for the ClassAd language (hypothesis).

The evaluator must be *total*: whatever expression the fuzzer builds,
evaluation returns a value (possibly UNDEFINED/ERROR) and never raises.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.condor import ClassAd, parse
from repro.condor.classad import ERROR, UNDEFINED, Expr, Value
from repro.condor.submit import format_classad, parse_classad_text

# -- expression generators ----------------------------------------------------

_numbers = st.one_of(
    st.integers(min_value=-1000, max_value=1000).map(str),
    st.floats(min_value=0.001, max_value=1000, allow_nan=False).map(
        lambda f: f"{f:.3f}"
    ),
)
_strings = st.text(
    alphabet="abcXYZ 09_", min_size=0, max_size=8
).map(lambda s: '"' + s + '"')
_names = st.sampled_from(["Memory", "Name", "Missing", "Threads", "Busy"])
_atoms = st.one_of(_numbers, _strings, _names,
                   st.sampled_from(["true", "false", "undefined"]))

_binops = st.sampled_from(
    ["+", "-", "*", "/", "==", "!=", "<", "<=", ">", ">=", "&&", "||",
     "=?=", "=!="]
)


@st.composite
def expressions(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return draw(_atoms)
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        left = draw(expressions(depth=depth - 1))
        right = draw(expressions(depth=depth - 1))
        op = draw(_binops)
        return f"({left} {op} {right})"
    if kind == 1:
        inner = draw(expressions(depth=depth - 1))
        return f"(!{inner})" if draw(st.booleans()) else f"(-{inner})"
    if kind == 2:
        c = draw(expressions(depth=depth - 1))
        t = draw(expressions(depth=depth - 1))
        f = draw(expressions(depth=depth - 1))
        return f"({c} ? {t} : {f})"
    inner = draw(expressions(depth=depth - 1))
    fn = draw(st.sampled_from(["floor", "ceiling", "isUndefined", "toLower"]))
    return f"{fn}({inner})"


_CONTEXT = ClassAd({"Memory": 8192, "Name": "slot1@n0", "Threads": 240,
                    "Busy": False})


@settings(max_examples=300, deadline=None)
@given(expressions())
def test_evaluator_is_total(text):
    """Parsing succeeds and evaluation never raises."""
    expr = parse(text)
    ad = ClassAd()
    ad.set_expr("X", text)
    value = ad.evaluate("X", _CONTEXT)
    assert isinstance(expr, Expr)
    _assert_classad_value(value)


@settings(max_examples=300, deadline=None)
@given(expressions())
def test_evaluation_is_deterministic(text):
    ad = ClassAd()
    ad.set_expr("X", text)
    assert _norm(ad.evaluate("X", _CONTEXT)) == _norm(ad.evaluate("X", _CONTEXT))


@settings(max_examples=200, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["A", "B", "C", "D"]),
        st.one_of(
            st.integers(min_value=-100, max_value=100),
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            st.booleans(),
            st.text(alphabet="xyz 12", max_size=6),
        ),
        max_size=4,
    )
)
def test_text_format_roundtrips_literal_ads(attrs):
    """format -> parse -> evaluate matches the original literals."""
    ad = ClassAd(attrs)
    dup = parse_classad_text(format_classad(ad))
    for name in attrs:
        assert dup.evaluate(name) == pytest.approx(ad.evaluate(name)) \
            if isinstance(attrs[name], float) \
            else dup.evaluate(name) == ad.evaluate(name)


def _assert_classad_value(value: Value) -> None:
    assert (
        value is UNDEFINED
        or value is ERROR
        or isinstance(value, (bool, int, float, str))
    )


def _norm(value):
    if value is UNDEFINED:
        return "UNDEF"
    if value is ERROR:
        return "ERR"
    return value
