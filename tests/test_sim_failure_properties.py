"""Property tests for failure propagation through the event kernel.

The fault subsystem leans on two kernel guarantees:

* a failure reaching a waiting process is *defused* exactly once — the
  waiter's ``except`` handles it and the simulation keeps running, and
  the waiter is never resumed twice for one wait;
* a failure nobody handles is *never silently dropped* — it surfaces
  from ``Environment.step`` (including the late-failure case where a
  sub-event of an already-triggered condition fails afterwards).

These are exercised here through randomized ``AnyOf`` / ``AllOf``
combinations of succeeding and failing events (hypothesis).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment


class Boom(Exception):
    pass


def _driver(env, event, delay, fails):
    yield env.timeout(delay)
    if fails:
        event.fail(Boom(delay))
    else:
        event.succeed(delay)


#: (delay, fails) per event; distinct delays keep firing order unambiguous.
_spec = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=30),
        st.booleans(),
    ),
    min_size=2,
    max_size=6,
    unique_by=lambda pair: pair[0],
)


@settings(max_examples=60, deadline=None)
@given(spec=_spec, use_all=st.booleans())
def test_handled_condition_failure_resumes_waiter_exactly_once(spec, use_all):
    """With every event also individually absorbed, a failing condition
    never crashes the run, and the waiter resumes exactly once."""
    env = Environment()
    events = [env.event() for _ in spec]
    for event, (delay, fails) in zip(events, spec):
        env.process(_driver(env, event, delay, fails))

    resumes = []
    absorbed = []

    def waiter(env):
        cond = env.all_of(events) if use_all else env.any_of(events)
        try:
            value = yield cond
            resumes.append(("ok", value))
        except Boom as exc:
            resumes.append(("fail", exc))

    def absorber(env, event):
        # Late failures (after the condition triggered) are nobody
        # else's to handle; each event gets a dedicated waiter.
        try:
            yield event
            absorbed.append(True)
        except Boom:
            absorbed.append(False)

    env.process(waiter(env))
    for event in events:
        env.process(absorber(env, event))
    env.run()

    assert len(resumes) == 1, "waiter must resume exactly once"
    assert len(absorbed) == len(events)

    by_time = sorted(zip(spec, events))
    failures = [delay for (delay, fails), _ in by_time if fails]
    if use_all:
        # AllOf fails at the first failure; succeeds only if none fail.
        expected = "fail" if failures else "ok"
    else:
        # AnyOf takes the outcome of the earliest-firing event.
        first_delay, first_fails = min(spec)
        expected = "fail" if first_fails else "ok"
    assert resumes[0][0] == expected


@settings(max_examples=60, deadline=None)
@given(spec=_spec, seed=st.integers(min_value=0, max_value=2**16))
def test_nested_conditions_never_double_resume(spec, seed):
    """Random &/| trees over absorbed events: the tree's waiter resumes
    exactly once and nothing escapes the run."""
    import random

    rng = random.Random(seed)
    env = Environment()
    events = [env.event() for _ in spec]
    for event, (delay, fails) in zip(events, spec):
        env.process(_driver(env, event, delay, fails))

    tree = events[0]
    inner_nodes = []
    for event in events[1:]:
        tree = (tree & event) if rng.random() < 0.5 else (tree | event)
        inner_nodes.append(tree)

    resumes = []

    def waiter(env):
        try:
            yield tree
            resumes.append("ok")
        except Boom:
            resumes.append("fail")

    def absorber(env, event):
        try:
            yield event
        except Boom:
            pass

    env.process(waiter(env))
    # Absorb leaves AND intermediate condition nodes: an inner condition
    # failing after its parent triggered is itself a late failure that
    # would (correctly) surface if nobody handled it.
    for event in events + inner_nodes:
        env.process(absorber(env, event))
    env.run()
    assert len(resumes) == 1


@settings(max_examples=40, deadline=None)
@given(
    delay=st.integers(min_value=1, max_value=10),
    caught=st.booleans(),
)
def test_direct_event_failure_defused_iff_caught(delay, caught):
    """A failed event is defused by a catching waiter; an uncaught one
    surfaces from env.run as the original exception."""
    import pytest

    env = Environment()
    event = env.event()
    env.process(_driver(env, event, delay, True))

    outcomes = []

    def catching(env):
        try:
            yield event
        except Boom:
            outcomes.append("caught")

    def oblivious(env):
        yield env.timeout(0)

    env.process(catching(env) if caught else oblivious(env))
    if caught:
        env.run()
        assert outcomes == ["caught"]
        assert event.defused
    else:
        with pytest.raises(Boom):
            env.run()


def test_late_failure_after_anyof_trigger_surfaces():
    """AnyOf triggers on the first event; a second event failing later
    is NOT swallowed by the already-triggered condition — it must crash
    the run unless some other waiter defuses it."""
    import pytest

    env = Environment()
    a, b = env.event(), env.event()
    env.process(_driver(env, a, 1, False))
    env.process(_driver(env, b, 2, True))

    got = []

    def waiter(env):
        value = yield env.any_of([a, b])
        got.append(value)

    env.process(waiter(env))
    with pytest.raises(Boom):
        env.run()
    assert len(got) == 1  # the condition itself succeeded first


def test_late_failure_after_allof_failure_surfaces():
    """AllOf fails at the first failure; a *second* failure arriving
    later is separate and surfaces even when the first was handled."""
    import pytest

    env = Environment()
    a, b = env.event(), env.event()
    env.process(_driver(env, a, 1, True))
    env.process(_driver(env, b, 2, True))

    caught = []

    def waiter(env):
        try:
            yield env.all_of([a, b])
        except Boom:
            caught.append(True)

    env.process(waiter(env))
    with pytest.raises(Boom):
        env.run()
    assert caught == [True]
