"""Scale invariance: idle nodes must be behaviorally invisible.

The cluster-scale fast path (delta-maintained live sets, lazy node
materialization, O(1) idle cycles) is only admissible if a big idle pool
is *observationally identical* to a small one: embedding the paper's
8-node workload in an otherwise-idle 1024-node pool must yield the same
per-job outcomes — matched node, final status, start/end timestamps —
and the same makespan as the plain 8-node run.

The embedding restricts every job's Requirements to the first eight
machine names (applied identically to both pools, so the job ads match
byte-for-byte); the extra nodes advertise normally but can never match,
never receive a dispatch, and — per the fast path — never build a
device stack or schedule an event.

The property is checked by hypothesis across workload sizes, seeds, and
both submit-file styles (exclusive MC and random-placement MCC; the
random policy is the sharpest probe, since a single extra rng draw or a
reordered viable list would shift every later placement).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ComputeNode
from repro.condor import CondorPool, ExclusivePlacement, RandomPlacement
from repro.sim import Environment
from repro.workloads import generate_table1_jobs

WORKLOAD_NODES = 8
BIG_POOL = 1024

#: The submit-file Requirements each style produces (see
#: :func:`repro.condor.ads.job_ad`), restated so the embedding can AND a
#: machine-name restriction onto them as a qedit string.
_STYLE_REQUIREMENTS = {
    "exclusive": (
        "TARGET.PhiDevicesFree >= MY.RequestPhiDevices"
        " && MY.RequestPhiMemory <= TARGET.PhiMemory"
        " && TARGET.FreeSlots >= 1"
    ),
    "random": (
        "TARGET.PhiDevices >= MY.RequestPhiDevices"
        " && MY.RequestPhiMemory <= TARGET.PhiMemory"
        " && TARGET.FreeSlots >= 1"
    ),
}


def _restriction() -> str:
    clause = " || ".join(
        f'TARGET.Machine == "n{i}"' for i in range(WORKLOAD_NODES)
    )
    return f"({clause})"


def _policy(style: str):
    if style == "exclusive":
        return ExclusivePlacement()
    return RandomPlacement(random.Random(7), memory_aware=False)


def _run(style: str, pool_nodes: int, jobs, cycle_interval: float = 15.0):
    """One pool run; returns (makespan, per-job outcome map)."""
    env = Environment()
    mode = "exclusive" if style == "exclusive" else "cosmic"
    executors = [
        ComputeNode(env, f"n{i}", mode=mode) for i in range(pool_nodes)
    ]
    pool = CondorPool(
        env,
        executors,
        _policy(style),
        slots_per_node=4,
        cycle_interval=cycle_interval,
        dispatch_latency=1.0,
    )
    pool.submit(jobs)
    # The embedding: restrict every job to the workload's eight nodes,
    # in BOTH pools, so the job ads are identical byte-for-byte.
    edit = f"{_restriction()} && {_STYLE_REQUIREMENTS[style]}"
    pool.schedd.qedit_batch(
        [
            (record.job_id, "Requirements", edit)
            for record in pool.schedd.pending()
        ]
    )
    makespan = pool.run_to_completion()
    outcomes = {}
    for record in pool.schedd.completed():
        result = record.result
        outcomes[record.job_id] = (
            record.matched_node,
            result.status,
            result.start,
            result.end,
        )
    return makespan, outcomes, pool


@settings(deadline=None, max_examples=8)
@given(
    jobs=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=2**16),
    style=st.sampled_from(["exclusive", "random"]),
)
def test_idle_pool_is_invisible(jobs, seed, style):
    workload = generate_table1_jobs(jobs, seed=seed)
    small_makespan, small, _ = _run(style, WORKLOAD_NODES, workload)
    big_makespan, big, big_pool = _run(style, BIG_POOL, workload)

    assert small_makespan == big_makespan
    assert small == big
    # Every matched node lies inside the embedded 8-node cluster.
    assert all(
        node in {f"n{i}" for i in range(WORKLOAD_NODES)}
        for node, _status, _start, _end in big.values()
    )
    # The fast path held: no idle node ever materialized a device stack.
    lazy = sum(
        1
        for startd in big_pool.startds[WORKLOAD_NODES:]
        if not startd.executor.materialized
    )
    assert lazy == BIG_POOL - WORKLOAD_NODES


def test_embedded_run_matches_exactly_at_1024():
    """One paper-size deterministic spot check (40 Table-I jobs)."""
    workload = generate_table1_jobs(40, seed=42)
    small_makespan, small, _ = _run("random", WORKLOAD_NODES, workload)
    big_makespan, big, _ = _run("random", BIG_POOL, workload)
    assert small_makespan == big_makespan
    assert small == big
