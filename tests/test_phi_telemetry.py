"""Unit tests for the step-series telemetry used for utilization."""

import pytest

from repro.phi import DeviceTelemetry, StepSeries


class TestStepSeries:
    def test_empty_integral_is_zero(self):
        assert StepSeries().integral(0, 100) == 0.0

    def test_constant_segment(self):
        s = StepSeries()
        s.record(0, 30)
        assert s.integral(0, 10) == 300

    def test_two_segments(self):
        s = StepSeries()
        s.record(0, 10)
        s.record(5, 20)
        assert s.integral(0, 10) == 10 * 5 + 20 * 5

    def test_clipping_window(self):
        s = StepSeries()
        s.record(0, 10)
        s.record(10, 0)
        assert s.integral(5, 15) == 10 * 5

    def test_window_before_first_record(self):
        s = StepSeries()
        s.record(10, 7)
        assert s.integral(0, 10) == 0.0

    def test_same_instant_update_overwrites(self):
        s = StepSeries()
        s.record(0, 10)
        s.record(0, 20)
        assert s.integral(0, 1) == 20
        assert len(s) == 1

    def test_no_change_is_compacted(self):
        s = StepSeries()
        s.record(0, 5)
        s.record(3, 5)
        assert len(s) == 1

    def test_time_must_not_decrease(self):
        s = StepSeries()
        s.record(5, 1)
        with pytest.raises(ValueError):
            s.record(4, 2)

    def test_value_at(self):
        s = StepSeries()
        s.record(0, 1)
        s.record(10, 2)
        assert s.value_at(-1) == 0
        assert s.value_at(0) == 1
        assert s.value_at(9.99) == 1
        assert s.value_at(10) == 2
        assert s.value_at(1e9) == 2

    def test_mean(self):
        s = StepSeries()
        s.record(0, 0)
        s.record(5, 10)
        assert s.mean(0, 10) == pytest.approx(5.0)

    def test_mean_of_empty_window(self):
        s = StepSeries()
        s.record(0, 3)
        assert s.mean(5, 5) == 0.0

    def test_invalid_integral_bounds(self):
        with pytest.raises(ValueError):
            StepSeries().integral(10, 5)

    def test_invalid_mean_bounds(self):
        # mean and integral agree on inverted windows: both raise (mean
        # used to return 0.0 silently, hiding swapped arguments).
        s = StepSeries()
        s.record(0, 3)
        with pytest.raises(ValueError):
            s.mean(10, 5)

    def test_iteration(self):
        s = StepSeries()
        s.record(0, 1)
        s.record(2, 3)
        assert list(s) == [(0, 1), (2, 3)]


class TestDeviceTelemetry:
    def test_core_utilization(self):
        t = DeviceTelemetry()
        t.busy_cores.record(0, 30)  # half of 60 cores busy
        assert t.core_utilization(60, 0, 100) == pytest.approx(0.5)

    def test_idle_device_utilization_zero(self):
        t = DeviceTelemetry()
        assert t.core_utilization(60, 0, 10) == 0.0

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            DeviceTelemetry().core_utilization(0, 0, 10)

    def test_zero_window(self):
        t = DeviceTelemetry()
        t.busy_cores.record(0, 60)
        assert t.core_utilization(60, 5, 5) == 0.0
