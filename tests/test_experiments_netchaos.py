"""Tests for the ext-netchaos experiment: grid shape, determinism, caching."""

import pytest

from repro.cluster import ClusterConfig
from repro.experiments import ext_netchaos
from repro.experiments.cache import ResultCache
from repro.experiments.runner import SimTask, TaskRunner
from repro.net import NetProfile, PartitionSpec, derive_net_seed

SMALL = ClusterConfig(nodes=2, cycle_interval=2.0)
LOSSES = (0.0, 0.10)


def _run(runner=None, **kwargs):
    kwargs.setdefault("jobs", 20)
    kwargs.setdefault("losses", LOSSES)
    return ext_netchaos.run(config=SMALL, seed=7, runner=runner, **kwargs)


class TestGrid:
    def test_tasks_shape(self):
        grid = ext_netchaos.tasks(jobs=20, losses=LOSSES, config=SMALL, seed=7)
        assert len(grid) == len(LOSSES) * 3  # MC, MCC, MCCK per loss
        assert all(t.kind == "sim-net" for t in grid)
        assert all(t.experiment == "ext-netchaos" for t in grid)
        labels = [t.label for t in grid]
        assert "MC@loss0" in labels and "MCCK@loss0.1" in labels

    def test_loss_zero_cells_run_without_fabric(self):
        grid = ext_netchaos.tasks(jobs=20, losses=(0.0,), config=SMALL, seed=7)
        for task in grid:
            assert task.kwargs()["net"] is None

    def test_lossy_cells_carry_chaos_profile(self):
        grid = ext_netchaos.tasks(jobs=20, losses=(0.05,), config=SMALL, seed=7)
        for task in grid:
            net = task.kwargs()["net"]
            assert net == NetProfile.chaos(0.05)

    def test_partitions_force_fabric_even_at_loss_zero(self):
        cut = (PartitionSpec(10.0, 20.0, "startd:*"),)
        grid = ext_netchaos.tasks(
            jobs=20, losses=(0.0,), partitions=cut, config=SMALL, seed=7
        )
        for task in grid:
            net = task.kwargs()["net"]
            assert net is not None
            assert net.partitions == cut

    def test_net_seed_derived_from_workload_seed(self):
        grid = ext_netchaos.tasks(jobs=20, losses=LOSSES, config=SMALL, seed=7)
        for task in grid:
            assert task.kwargs()["net_seed"] == derive_net_seed(7)

    def test_merge_aligns_cells(self):
        grid = ext_netchaos.tasks(jobs=20, losses=LOSSES, config=SMALL, seed=7)
        values = [
            {"tag": i, "makespan": 1.0, "completed": 1}
            for i in range(len(grid))
        ]
        result = ext_netchaos.merge(
            values, jobs=20, losses=LOSSES, config=SMALL, seed=7
        )
        assert result.cells["MC"][0]["tag"] == 0
        assert result.cells["MCC"][0]["tag"] == 1
        assert result.cells["MCCK"][1]["tag"] == 5


class TestDeterminism:
    def test_two_runs_render_byte_identical(self):
        # The PR's acceptance criterion: same seed + profile, twice,
        # byte-identical metrics end to end (no cache involved).
        first = ext_netchaos.render(_run())
        second = ext_netchaos.render(_run())
        assert first == second

    def test_lossy_cells_report_transport_activity(self):
        result = _run()
        for configuration in ("MC", "MCC", "MCCK"):
            clean, lossy = result.cells[configuration]
            assert clean["retransmits"] == 0  # no fabric at loss 0
            assert lossy["retransmits"] > 0
            assert lossy["completed"] == 20

    def test_goodput_positive(self):
        result = _run()
        for configuration in ("MC", "MCC", "MCCK"):
            assert all(g > 0 for g in result.goodput(configuration))

    def test_parallel_matches_inline(self):
        runner = TaskRunner(workers=2, cache=None)
        assert ext_netchaos.render(_run(runner)) == ext_netchaos.render(_run())


class TestCacheKeys:
    def _task(self, net):
        return SimTask.make(
            "ext-netchaos", "sim-net",
            configuration="MCC", config=SMALL,
            workload=("table1", 20, 7),
            net=net, net_seed=derive_net_seed(7),
        )

    def test_net_profile_in_cache_key(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="fixed")
        keys = {
            cache.key_for(self._task(None)),
            cache.key_for(self._task(NetProfile.chaos(0.05))),
            cache.key_for(self._task(NetProfile.chaos(0.10))),
            cache.key_for(
                self._task(
                    NetProfile.chaos(
                        0.10, partitions=(PartitionSpec(1.0, 2.0, "*"),)
                    )
                )
            ),
        }
        assert len(keys) == 4

    def test_same_profile_same_key(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="fixed")
        a = cache.key_for(self._task(NetProfile.chaos(0.10)))
        b = cache.key_for(self._task(NetProfile.chaos(0.10)))
        assert a == b

    def test_net_tasks_roundtrip_through_cache(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="fixed")
        task = self._task(NetProfile.chaos(0.10))
        cache.put(task, {"makespan": 1.0})
        hit, value = cache.get(task)
        assert hit and value == {"makespan": 1.0}


class TestRegistration:
    def test_registered_in_experiments(self):
        from repro.experiments import EXPERIMENTS

        assert EXPERIMENTS["ext-netchaos"] is ext_netchaos

    def test_cli_net_flags(self):
        from repro.cli import _experiment_kwargs

        kwargs = _experiment_kwargs(
            "ext-netchaos", 20, 7, 1.0,
            net_losses=[0.0, 0.05],
            net_delay=0.2,
            net_partitions=[PartitionSpec(10.0, 20.0, "startd:*")],
        )
        assert kwargs["losses"] == (0.0, 0.05)
        assert kwargs["delay_s"] == 0.2
        assert kwargs["partitions"] == (PartitionSpec(10.0, 20.0, "startd:*"),)
        # Other experiments ignore the flags.
        other = _experiment_kwargs("fig8", 20, 7, 1.0, net_losses=[0.05])
        assert "losses" not in other
