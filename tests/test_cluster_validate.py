"""Tests for the post-run invariant validator."""

import random

import pytest

from repro.cluster import (
    ComputeNode,
    ValidationReport,
    validate_devices,
    validate_exclusive,
    validate_pool,
)
from repro.condor import CondorPool, ExclusivePlacement, RandomPlacement
from repro.phi import UnmanagedContention, XeonPhi
from repro.sim import Environment
from repro.workloads import generate_table1_jobs


def run_pool(env, mode, policy, jobs):
    nodes = [ComputeNode(env, f"n{i}", mode=mode) for i in range(2)]
    pool = CondorPool(env, nodes, policy, cycle_interval=2.0)
    pool.submit(jobs)
    pool.run_to_completion()
    return pool


class TestCleanRuns:
    def test_mcc_run_validates(self):
        env = Environment()
        pool = run_pool(env, "cosmic", RandomPlacement(random.Random(1)),
                        generate_table1_jobs(30, seed=2))
        report = validate_pool(pool, expect_gated=True)
        assert report.ok, str(report)
        assert str(report) == "all invariants hold"

    def test_mc_run_validates_exclusive(self):
        env = Environment()
        pool = run_pool(env, "exclusive", ExclusivePlacement(),
                        generate_table1_jobs(20, seed=2))
        devices = [d for s in pool.startds for d in s.executor.devices]
        assert validate_exclusive(devices).ok
        assert validate_pool(pool).ok


class TestViolationDetection:
    @staticmethod
    def _run_raw(env, phi, memory_mb, threads, count):
        from dataclasses import replace

        from repro.mpss import FREE_TRANSFERS, OffloadRuntime
        from repro.workloads import HostPhase, JobProfile, OffloadPhase

        runtime = OffloadRuntime(env, phi, scif=FREE_TRANSFERS)
        job = JobProfile(
            job_id="big",
            app="t",
            phases=(HostPhase(0.5),
                    OffloadPhase(work=10, threads=threads, memory_mb=memory_mb)),
            declared_memory_mb=memory_mb,
            declared_threads=threads,
        )

        def driver(env, suffix):
            yield from runtime.execute(replace(job, job_id=f"big-{suffix}"))

        for i in range(count):
            env.process(driver(env, i))
        env.run()

    def test_unsafe_memory_oversubscription_flags_oom(self):
        # Three 5 GB processes on an 8 GB card: the OOM killer fires.
        env = Environment()
        phi = XeonPhi(env, contention=UnmanagedContention(), name="raw0")
        self._run_raw(env, phi, memory_mb=5000, threads=240, count=3)
        report = validate_devices([phi], expect_gated=True)
        kinds = {v.kind for v in report.violations}
        assert "oom-kill" in kinds
        with pytest.raises(AssertionError):
            report.raise_if_failed()

    def test_unsafe_thread_oversubscription_flagged(self):
        # Three 240-thread offloads fit memory but not the thread budget.
        env = Environment()
        phi = XeonPhi(env, contention=UnmanagedContention(), name="raw1")
        self._run_raw(env, phi, memory_mb=2000, threads=240, count=3)
        report = validate_devices([phi], expect_gated=True)
        kinds = {v.kind for v in report.violations}
        assert "thread-oversubscription" in kinds
        assert "oom-kill" not in kinds

    def test_exclusivity_violation_detected(self):
        env = Environment()
        phi = XeonPhi(env, name="shared")

        def job(env, owner):
            phi.register_process(owner)
            yield from phi.run_offload(owner, 60, 5.0)
            phi.unregister_process(owner)

        env.process(job(env, "a"))
        env.process(job(env, "b"))
        env.run()
        report = validate_exclusive([phi])
        assert not report.ok
        assert report.violations[0].kind == "exclusivity"

    def test_back_to_back_offloads_are_not_overlap(self):
        env = Environment()
        phi = XeonPhi(env, name="serial")

        def first(env):
            phi.register_process("a")
            yield from phi.run_offload("a", 240, 5.0)
            phi.unregister_process("a")

        def second(env):
            yield env.timeout(5.0)  # starts exactly when the first ends
            phi.register_process("b")
            yield from phi.run_offload("b", 240, 5.0)
            phi.unregister_process("b")

        env.process(first(env))
        env.process(second(env))
        env.run()
        assert validate_exclusive([phi]).ok
        assert validate_devices([phi]).ok

    def test_report_formatting(self):
        report = ValidationReport()
        report.add("demo", "here", "something broke")
        assert "[demo] here: something broke" in str(report)
