"""Tests for the content-addressed result cache and the task runner."""

import pickle

import pytest

from repro.cluster import ClusterConfig
from repro.experiments.cache import (
    ResultCache,
    canonical,
    default_cache_dir,
    source_fingerprint,
    task_key,
)
from repro.experiments.runner import SimTask, TaskRunner, compute_task, sim_task


def _task(**overrides):
    params = dict(configuration="MC", nodes=4, seed=42)
    params.update(overrides)
    return SimTask.make("table2", "sim", **params)


class TestKeying:
    def test_same_params_same_key(self):
        assert task_key(_task(), "fp") == task_key(_task(), "fp")

    def test_label_not_part_of_key(self):
        a = SimTask.make("table2", "sim", label="a", nodes=4)
        b = SimTask.make("table2", "sim", label="b", nodes=4)
        assert task_key(a, "fp") == task_key(b, "fp")
        assert a == b  # label excluded from equality too

    def test_param_change_changes_key(self):
        assert task_key(_task(), "fp") != task_key(_task(seed=43), "fp")

    def test_fingerprint_change_changes_key(self):
        assert task_key(_task(), "fp1") != task_key(_task(), "fp2")

    def test_experiment_name_shared_across_grids(self):
        # fig8's 8-node cells are fig9's: the key ignores the experiment.
        a = SimTask.make("fig8", "sim", configuration="MC", nodes=8)
        b = SimTask.make("fig9", "sim", configuration="MC", nodes=8)
        assert task_key(a, "fp") == task_key(b, "fp")

    def test_dataclass_params_canonicalise(self):
        config = ClusterConfig(nodes=4)
        same = ClusterConfig(nodes=4)
        other = ClusterConfig(nodes=5)
        assert canonical(config) == canonical(same)
        assert canonical(config) != canonical(other)

    def test_float_params_keep_precision(self):
        assert canonical(0.1) != canonical(0.1 + 1e-12)

    def test_source_fingerprint_stable_in_process(self):
        assert source_fingerprint() == source_fingerprint()


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        task = _task()
        hit, _ = cache.get(task)
        assert not hit
        cache.put(task, {"makespan": 12.5})
        hit, value = cache.get(task)
        assert hit
        assert value == {"makespan": 12.5}
        assert cache.hits == 1 and cache.misses == 1

    def test_fingerprint_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, fingerprint="before-edit")
        old.put(_task(), 1.0)
        fresh = ResultCache(tmp_path, fingerprint="after-edit")
        hit, _ = fresh.get(_task())
        assert not hit

    def test_corrupted_entry_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        task = _task()
        cache.put(task, 42.0)
        path = cache._path(cache.key_for(task))
        path.write_bytes(b"not a pickle at all")
        hit, _ = cache.get(task)
        assert not hit
        assert not path.exists()  # the bad entry was dropped
        cache.put(task, 42.0)
        hit, value = cache.get(task)
        assert hit and value == 42.0

    def test_truncated_entry_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        task = _task()
        cache.put(task, {"makespan": 9.0})
        path = cache._path(cache.key_for(task))
        path.write_bytes(pickle.dumps({"makespan": 9.0})[:5])
        hit, _ = cache.get(task)
        assert not hit

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fingerprint="fp")
        cache.put(_task(), 1.0)
        cache.clear()
        assert not (tmp_path / "cache").exists()
        hit, _ = cache.get(_task())
        assert not hit

    def test_env_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"


class TestTaskRunner:
    def _grid(self, jobs=16):
        config = ClusterConfig(nodes=2)
        workload = ("table1", jobs, 42)
        return [
            sim_task("test", c, config, workload) for c in ("MC", "MCC")
        ]

    def test_results_cached_across_runs(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        grid = self._grid()
        first = TaskRunner(workers=1, cache=cache).map_tasks(grid)
        assert all(not o.cached for o in first)
        second = TaskRunner(workers=1, cache=cache).map_tasks(grid)
        assert all(o.cached for o in second)
        assert [o.value for o in first] == [o.value for o in second]

    def test_duplicate_cells_computed_once(self):
        grid = self._grid() + self._grid()
        runner = TaskRunner(workers=1, cache=None)
        outcomes = runner.map_tasks(grid)
        assert sum(1 for o in outcomes if not o.cached) == 2
        assert outcomes[0].value == outcomes[2].value
        assert outcomes[1].value == outcomes[3].value

    def test_inline_matches_runner(self, tmp_path):
        grid = self._grid()
        inline = [compute_task(task) for task in grid]
        pooled = TaskRunner(
            workers=1, cache=ResultCache(tmp_path, fingerprint="fp")
        ).map_tasks(grid)
        assert inline == [o.value for o in pooled]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            TaskRunner(workers=0)
