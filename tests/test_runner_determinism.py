"""Regression: parallel fan-out output is byte-identical to sequential.

The runner merges cell values in grid order — never completion order —
so ``--jobs 4`` must render exactly what ``--jobs 1`` renders. These
tests exercise the real ``ProcessPoolExecutor`` path at smoke scale.
"""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def no_cache_bleed(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def _rendered(capsys, argv) -> list[str]:
    assert main(argv) == 0
    out = capsys.readouterr().out
    # Timing/status lines are bracketed; everything else is the artifact.
    return [line for line in out.splitlines() if not line.startswith("[")]


@pytest.mark.parametrize("experiment", ["table2", "fig8"])
def test_parallel_matches_sequential(experiment, capsys):
    base = [experiment, "--job-count", "24", "--no-cache"]
    sequential = _rendered(capsys, base + ["--jobs", "1"])
    parallel = _rendered(capsys, base + ["--jobs", "4"])
    assert parallel == sequential


def test_cached_rerun_matches_cold_run(capsys):
    cold = _rendered(capsys, ["fig8", "--job-count", "24", "--jobs", "2"])
    warm = _rendered(capsys, ["fig8", "--job-count", "24", "--jobs", "2"])
    assert warm == cold
