"""Unit tests for the schedd job queue and qedit."""

import pytest

from repro.condor import Schedd
from repro.mpss import JobRunResult
from repro.sim import Environment
from repro.workloads import HostPhase, JobProfile, OffloadPhase


def make_profile(job_id="j1", submit_time=0.0, memory=1000.0):
    return JobProfile(
        job_id=job_id,
        app="t",
        phases=(HostPhase(1.0), OffloadPhase(work=5, threads=60, memory_mb=memory)),
        declared_memory_mb=memory,
        declared_threads=60,
        submit_time=submit_time,
    )


def result_for(job_id, end=10.0):
    return JobRunResult(job_id=job_id, start=0.0, end=end, status="completed",
                        offloads_run=1)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def schedd(env):
    return Schedd(env)


class TestSubmission:
    def test_submit_builds_ad(self, schedd):
        record = schedd.submit(make_profile())
        assert record.ad.evaluate("RequestPhiMemory") == 1000.0
        assert record.is_pending

    def test_duplicate_rejected(self, schedd):
        schedd.submit(make_profile())
        with pytest.raises(ValueError):
            schedd.submit(make_profile())

    def test_pending_fifo_order(self, schedd):
        schedd.submit(make_profile("b", submit_time=5.0))
        schedd.submit(make_profile("a", submit_time=0.0))
        schedd.submit(make_profile("c", submit_time=0.0))
        assert [r.job_id for r in schedd.pending()] == ["a", "c", "b"]

    def test_submit_many(self, schedd):
        schedd.submit_many([make_profile(f"j{i}") for i in range(5)])
        assert schedd.total_jobs == 5

    def test_submit_listeners_fire_on_submission(self, schedd):
        seen = []
        schedd.submit_listeners.append(lambda r: seen.append(r.job_id))
        schedd.submit(make_profile("a"))
        schedd.submit_many([make_profile("b"), make_profile("c")])
        assert seen == ["a", "b", "c"]

    def test_submit_listener_may_qedit_new_job(self, schedd):
        # The external scheduler parks arrivals from this hook; the job
        # must still be idle (editable) when the listener runs.
        schedd.submit_listeners.append(
            lambda r: schedd.qedit(r.job_id, "Requirements", "false")
        )
        record = schedd.submit(make_profile("a"))
        assert record.ad.evaluate("Requirements") is False


class TestQedit:
    def test_qedit_rewrites_requirements(self, schedd):
        schedd.submit(make_profile())
        schedd.qedit("j1", "Requirements", 'TARGET.Name == "slot1@n3"')
        record = schedd.get("j1")
        from repro.condor import ClassAd
        machine = ClassAd({"Name": "slot1@n3"})
        assert record.ad.evaluate("Requirements", machine) is True

    def test_qedit_running_job_rejected(self, schedd):
        schedd.submit(make_profile())
        schedd.mark_running("j1", "n1", 0)
        with pytest.raises(ValueError):
            schedd.qedit("j1", "Requirements", "false")

    def test_qedit_batch(self, schedd):
        schedd.submit(make_profile("a"))
        schedd.submit(make_profile("b"))
        schedd.qedit_batch(
            [("a", "AssignedPhiDevice", "0"), ("b", "AssignedPhiDevice", "1")]
        )
        assert schedd.get("a").ad.evaluate("AssignedPhiDevice") == 0
        assert schedd.get("b").ad.evaluate("AssignedPhiDevice") == 1


class TestLifecycle:
    def test_mark_running_and_completed(self, schedd):
        schedd.submit(make_profile())
        schedd.mark_running("j1", "node3", 0)
        assert schedd.get("j1").matched_node == "node3"
        assert not schedd.pending()
        schedd.mark_completed("j1", result_for("j1"))
        assert schedd.get("j1").status == "Completed"
        assert schedd.unfinished_jobs == 0

    def test_double_running_rejected(self, schedd):
        schedd.submit(make_profile())
        schedd.mark_running("j1", "n", 0)
        with pytest.raises(ValueError):
            schedd.mark_running("j1", "n", 0)

    def test_complete_idle_job_rejected(self, schedd):
        schedd.submit(make_profile())
        with pytest.raises(ValueError):
            schedd.mark_completed("j1", result_for("j1"))

    def test_completion_event_fires(self, env, schedd):
        record = schedd.submit(make_profile())
        schedd.mark_running("j1", "n", 0)
        schedd.mark_completed("j1", result_for("j1"))
        env.run()
        assert record.completion.value.job_id == "j1"

    def test_start_listeners_fire_on_dispatch(self, schedd):
        seen = []
        schedd.start_listeners.append(
            lambda r: seen.append((r.job_id, r.matched_node))
        )
        schedd.submit(make_profile("a"))
        schedd.mark_running("a", "n0", 0)
        assert seen == [("a", "n0")]

    def test_completion_listeners(self, schedd):
        seen = []
        schedd.completion_listeners.append(lambda r: seen.append(r.job_id))
        schedd.submit(make_profile())
        schedd.mark_running("j1", "n", 0)
        schedd.mark_completed("j1", result_for("j1"))
        assert seen == ["j1"]

    def test_all_done_event(self, env, schedd):
        schedd.submit(make_profile("a"))
        schedd.submit(make_profile("b"))
        done = schedd.all_done()
        for job_id in ("a", "b"):
            schedd.mark_running(job_id, "n", 0)
            schedd.mark_completed(job_id, result_for(job_id, end=7.0))
        env.run()
        assert done.triggered

    def test_makespan(self, schedd):
        schedd.submit(make_profile("a"))
        schedd.submit(make_profile("b"))
        for job_id, end in (("a", 30.0), ("b", 12.0)):
            schedd.mark_running(job_id, "n", 0)
            schedd.mark_completed(job_id, result_for(job_id, end=end))
        assert schedd.makespan() == 30.0

    def test_repr(self, schedd):
        schedd.submit(make_profile())
        assert "idle=1" in repr(schedd)
