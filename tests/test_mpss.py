"""Unit tests for the MPSS stack: SCIF, COI processes, offload runtime."""

import pytest

from repro.cosmic import Cosmic, DeclaredMemoryEnforcer
from repro.mpss import (
    COIProcess,
    FREE_TRANSFERS,
    OffloadRuntime,
    SCIFModel,
)
from repro.phi import UnmanagedContention, XeonPhi
from repro.sim import Environment
from repro.workloads import HostPhase, JobProfile, OffloadPhase


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def phi(env):
    return XeonPhi(env, name="mic0")


def simple_job(job_id="j1", work=10.0, threads=60, memory=500.0, host=2.0,
               declared_memory=None, declared_threads=None, transfer=0.0):
    return JobProfile(
        job_id=job_id,
        app="test",
        phases=(
            HostPhase(host),
            OffloadPhase(work=work, threads=threads, memory_mb=memory,
                         transfer_mb=transfer),
        ),
        declared_memory_mb=declared_memory or memory,
        declared_threads=declared_threads or threads,
    )


class TestSCIF:
    def test_transfer_time_linear(self):
        model = SCIFModel(latency_s=0.001, bandwidth_mb_per_s=1000)
        assert model.transfer_time(500) == pytest.approx(0.001 + 0.5)

    def test_zero_bytes_zero_time(self):
        assert SCIFModel().transfer_time(0) == 0.0

    def test_free_transfers(self):
        assert FREE_TRANSFERS.transfer_time(10_000) == 0.0

    def test_negative_mb_rejected(self):
        with pytest.raises(ValueError):
            SCIFModel().transfer_time(-1)

    @pytest.mark.parametrize("kwargs", [{"latency_s": -1}, {"bandwidth_mb_per_s": 0}])
    def test_invalid_model_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SCIFModel(**kwargs)


class TestCOIProcess:
    def test_lifecycle(self, phi):
        coi = COIProcess(phi, "j1", base_memory_mb=64)
        assert coi.alive
        assert coi.resident_mb == 64
        coi.grow_to(512)
        assert coi.resident_mb == 512
        coi.destroy()
        assert not coi.alive
        assert phi.resident_memory_mb == 0

    def test_growth_is_monotone(self, phi):
        coi = COIProcess(phi, "j1")
        coi.grow_to(1000)
        coi.grow_to(200)  # Smaller request: footprint stays (stacks grow).
        assert coi.resident_mb == 1000
        coi.destroy()

    def test_grow_after_destroy_rejected(self, phi):
        coi = COIProcess(phi, "j1")
        coi.destroy()
        with pytest.raises(RuntimeError):
            coi.grow_to(10)

    def test_double_destroy_is_noop(self, phi):
        coi = COIProcess(phi, "j1")
        coi.destroy()
        coi.destroy()

    def test_negative_base_memory_rejected(self, phi):
        with pytest.raises(ValueError):
            COIProcess(phi, "j1", base_memory_mb=-1)

    def test_repr(self, phi):
        assert "j1" in repr(COIProcess(phi, "j1"))


class TestRuntimeBasics:
    def test_job_completes_with_nominal_duration(self, env, phi):
        runtime = OffloadRuntime(env, phi, scif=FREE_TRANSFERS)
        results = []

        def run(env):
            result = yield from runtime.execute(simple_job(work=10, host=2))
            results.append(result)

        env.process(run(env))
        env.run()
        (result,) = results
        assert result.completed
        assert result.wall_time == pytest.approx(12.0)
        assert result.offloads_run == 1

    def test_transfer_time_extends_wall_time(self, env, phi):
        scif = SCIFModel(latency_s=0.0, bandwidth_mb_per_s=100)
        runtime = OffloadRuntime(env, phi, scif=scif)
        results = []

        def run(env):
            result = yield from runtime.execute(
                simple_job(work=10, host=0, transfer=200)
            )
            results.append(result)

        env.process(run(env))
        env.run()
        # 200 MB split into 100 in + 100 out at 100 MB/s = 2s extra.
        assert results[0].wall_time == pytest.approx(12.0)

    def test_memory_released_after_job(self, env, phi):
        runtime = OffloadRuntime(env, phi, scif=FREE_TRANSFERS, coi_base_mb=32)

        def run(env):
            yield from runtime.execute(simple_job())

        env.process(run(env))
        env.run()
        assert phi.resident_memory_mb == 0

    def test_execute_outside_process_rejected(self, env, phi):
        runtime = OffloadRuntime(env, phi)
        with pytest.raises(RuntimeError):
            next(runtime.execute(simple_job()))

    def test_results_accumulate(self, env, phi):
        runtime = OffloadRuntime(env, phi, scif=FREE_TRANSFERS)

        def run(env, job_id):
            yield from runtime.execute(simple_job(job_id=job_id))

        env.process(run(env, "a"))
        env.process(run(env, "b"))
        env.run()
        assert sorted(r.job_id for r in runtime.results) == ["a", "b"]


class TestRuntimeWithCosmic:
    def test_gate_prevents_thread_oversubscription(self, env, phi):
        cosmic = Cosmic(env, phi)
        runtime = OffloadRuntime(env, phi, scif=FREE_TRANSFERS, gate=cosmic)
        results = []

        def run(env, job_id):
            result = yield from runtime.execute(
                simple_job(job_id=job_id, work=10, threads=240, host=0)
            )
            results.append(result)

        env.process(run(env, "a"))
        env.process(run(env, "b"))
        env.run()
        # Serialized by the gate: 10s + 10s, both at full speed.
        ends = sorted(r.end for r in results)
        assert ends == [pytest.approx(10.0), pytest.approx(20.0)]

    def test_within_budget_offloads_overlap(self, env, phi):
        cosmic = Cosmic(env, phi)
        runtime = OffloadRuntime(env, phi, scif=FREE_TRANSFERS, gate=cosmic)
        results = []

        def run(env, job_id):
            result = yield from runtime.execute(
                simple_job(job_id=job_id, work=10, threads=120, host=0)
            )
            results.append(result)

        env.process(run(env, "a"))
        env.process(run(env, "b"))
        env.run()
        assert all(r.end == pytest.approx(10.0) for r in results)

    def test_enforcer_kills_underdeclared_job(self, env, phi):
        enforcer = DeclaredMemoryEnforcer()
        runtime = OffloadRuntime(env, phi, scif=FREE_TRANSFERS, enforcer=enforcer)
        results = []

        def run(env):
            result = yield from runtime.execute(
                simple_job(memory=2000, declared_memory=1000)
            )
            results.append(result)

        env.process(run(env))
        env.run()
        assert results[0].status == "memory-limit"
        assert enforcer.kills == ["j1"]
        assert phi.resident_memory_mb == 0  # container cleanup

    def test_honest_job_survives_enforcer(self, env, phi):
        runtime = OffloadRuntime(
            env, phi, scif=FREE_TRANSFERS, enforcer=DeclaredMemoryEnforcer()
        )
        results = []

        def run(env):
            result = yield from runtime.execute(simple_job())
            results.append(result)

        env.process(run(env))
        env.run()
        assert results[0].completed


class TestOOMPaths:
    def test_unmanaged_sharing_can_oom(self, env):
        # Without COSMIC, two 5 GB jobs on an 8 GB card trigger the OOM
        # killer; the victim reports "oom-killed" and the other completes.
        phi = XeonPhi(env, contention=UnmanagedContention(), name="raw")
        runtime = OffloadRuntime(env, phi, scif=FREE_TRANSFERS)
        results = []

        def run(env, job_id, delay):
            yield env.timeout(delay)
            result = yield from runtime.execute(
                simple_job(job_id=job_id, work=20, threads=240, memory=5000, host=0)
            )
            results.append(result)

        env.process(run(env, "first", 0.0))
        env.process(run(env, "second", 1.0))
        env.run()
        statuses = {r.job_id: r.status for r in results}
        assert "oom-killed" in statuses.values()
        assert phi.telemetry.oom_kills == 1
        assert phi.resident_memory_mb == 0

    def test_self_oom_on_own_allocation(self, env):
        # One job alone asking for more than the card: it kills itself.
        phi = XeonPhi(env, name="raw")
        runtime = OffloadRuntime(env, phi, scif=FREE_TRANSFERS)
        results = []

        def run(env):
            result = yield from runtime.execute(
                simple_job(work=5, memory=9000, declared_memory=9000)
            )
            results.append(result)

        env.process(run(env))
        env.run()
        assert results[0].status == "oom-killed"
        assert phi.resident_memory_mb == 0


class TestGateCancellation:
    def test_oom_while_queued_at_gate_cancels_request(self, env, phi):
        """A job killed while waiting for the thread gate must withdraw
        its pending grant, or the gate leaks threads to a corpse."""
        cosmic = Cosmic(env, phi)
        runtime = OffloadRuntime(env, phi, scif=FREE_TRANSFERS, gate=cosmic)
        results = []

        def holder(env):
            # Occupies all 240 threads for a long time.
            result = yield from runtime.execute(
                simple_job(job_id="holder", work=50, threads=240,
                           memory=1000, host=0)
            )
            results.append(result)

        def victim(env):
            # Registers 5 GB then queues at the gate behind the holder.
            result = yield from runtime.execute(
                simple_job(job_id="victim", work=10, threads=240,
                           memory=5000, host=0.5)
            )
            results.append(result)

        def aggressor(env):
            # Pushes the card past 8 GB at t=2, OOM-killing the victim
            # (largest resident) while it waits at the gate.
            yield env.timeout(2)
            phi.register_process("aggressor")
            phi.allocate("aggressor", 4000)
            yield env.timeout(1)
            phi.unregister_process("aggressor")

        env.process(holder(env))
        env.process(victim(env))
        env.process(aggressor(env))
        env.run()

        by_id = {r.job_id: r for r in results}
        assert by_id["victim"].status == "oom-killed"
        assert by_id["holder"].completed
        # The gate fully recovered: no threads leaked to the dead waiter.
        assert cosmic.free_threads == 240
        assert phi.resident_memory_mb == 0
