"""Unit tests for the ClassAd closure compiler and Requirements analysis.

The hypothesis equivalence sweep lives in
``test_condor_classad_properties.py``; these tests pin down the exact
semantics the compiler must preserve (three-valued logic, short-circuit,
C-style division, case-insensitive strings, circularity guard), the pin
extraction rules, and the caching/invalidation contract.
"""

import pytest

from repro.condor import ClassAd, parse, set_compilation
from repro.condor.classad import ERROR, MISSING, UNDEFINED, EvalContext, Literal
from repro.condor.compile import (
    cache_info,
    compile_expr,
    requirements_plan,
)

_TARGET = ClassAd({"Memory": 8192, "Name": "slot1@n0", "Threads": 240,
                   "Busy": False})


def _interpreted(text, my=None, target=_TARGET):
    return parse(text).evaluate(EvalContext(my or ClassAd(), target))


def _compiled(text, my=None, target=_TARGET):
    return compile_expr(parse(text))(EvalContext(my or ClassAd(), target))


def _norm(value):
    if value is UNDEFINED:
        return "UNDEF"
    if value is ERROR:
        return "ERR"
    return value


class TestCompiledSemantics:
    @pytest.mark.parametrize(
        "text",
        [
            # three-valued logic and short-circuit
            "false && undefined",
            "undefined && false",
            "true || undefined",
            "undefined || true",
            "undefined && true",
            "undefined || false",
            "1 && true",
            "undefined && 1",
            "undefined || 2",
            # strict operators propagate markers
            "undefined + 1",
            "1 - undefined",
            "-undefined",
            "!undefined",
            "!3",
            # arithmetic edge cases
            "3 / 0",
            "3.0 / 0",
            "7 / 2",
            "-7 / 2",
            "true + 1",
            '"a" + "b"',
            '"a" + 1',
            # comparisons: case-insensitive strings, bools aren't numbers
            '"ABC" == "abc"',
            '"abc" < "ABD"',
            "true == 1",
            "true == true",
            "2 == 2.0",
            '1 < "2"',
            # meta-equality never yields UNDEFINED
            "undefined =?= undefined",
            "error =?= error",
            "undefined =!= 1",
            '"A" =?= "a"',
            "1 =?= true",
            # ternary
            "undefined ? 1 : 2",
            "3 ? 1 : 2",
            "(1 < 2) ? 10 : 20",
            # builtins and unknown functions
            "floor(3.7)",
            "isUndefined(Missing)",
            "toLower(5)",
            "bogus(3 / 0)",
            # attribute references against the target ad
            "Memory / Threads",
            "TARGET.Memory + 1",
            "MY.Memory + 1",
            "TARGET.Name == \"SLOT1@N0\"",
            "Missing == 1",
        ],
    )
    def test_matches_interpreter(self, text):
        assert _norm(_compiled(text)) == _norm(_interpreted(text))

    def test_unscoped_undefined_my_attr_falls_through_to_target(self):
        # The my ad *defines* the attribute as literally undefined; the
        # unscoped lookup must still fall through to the target's value.
        my = ClassAd()
        my["Memory"] = UNDEFINED
        assert _compiled("Memory", my=my) == _interpreted("Memory", my=my) == 8192

    def test_my_scope_does_not_fall_through(self):
        my = ClassAd()
        my["Memory"] = UNDEFINED
        assert _compiled("MY.Memory", my=my) is UNDEFINED

    def test_expression_valued_attribute_uses_interpreted_lookup(self):
        my = ClassAd()
        my.set_expr("Derived", "TARGET.Memory / 2")
        assert _compiled("Derived", my=my) == 4096

    def test_circular_attributes_hit_depth_guard(self):
        my = ClassAd()
        my.set_expr("A", "B")
        my.set_expr("B", "A")
        assert my.evaluate("A") is ERROR

    def test_no_target_means_target_refs_undefined(self):
        assert _compiled("TARGET.Memory", target=None) is UNDEFINED

    def test_evaluate_literal_fast_path(self):
        ad = ClassAd({"X": 7})
        assert ad.evaluate("X") == 7
        assert ad["X"] == 7

    def test_set_compilation_toggle_round_trip(self):
        ad = ClassAd({"M": 10})
        ad.set_expr("X", "M * 3")
        try:
            set_compilation(False)
            interpreted = ad.evaluate("X")
        finally:
            set_compilation(True)
        assert interpreted == ad.evaluate("X") == 30


class TestConstantFolding:
    def test_constant_expression_folds_to_literal_closure(self):
        fn = compile_expr(parse("(2 * 3 + 1) < 10"))
        assert fn(EvalContext(ClassAd())) is True

    def test_folding_preserves_error(self):
        fn = compile_expr(parse("1 / 0 > 2"))
        assert fn(EvalContext(ClassAd())) is ERROR

    def test_decisive_constant_left_short_circuits(self):
        # false && <attr> folds to False without touching the attr.
        fn = compile_expr(parse("false && Missing"))
        assert fn(EvalContext(ClassAd())) is False
        fn = compile_expr(parse("true || Missing"))
        assert fn(EvalContext(ClassAd())) is True


class TestRequirementsPlan:
    def test_park_expression_never_matches(self):
        assert requirements_plan(parse("false")).never_matches

    def test_constant_not_true_never_matches(self):
        assert requirements_plan(parse("2 > 3")).never_matches
        assert requirements_plan(parse("1 / 0")).never_matches
        assert requirements_plan(parse("42")).never_matches

    def test_constant_true_matches(self):
        assert not requirements_plan(parse("true")).never_matches

    def test_general_expression_is_not_static(self):
        plan = requirements_plan(parse("TARGET.FreeSlots >= 1"))
        assert not plan.never_matches
        assert plan.pin_name is None

    @pytest.mark.parametrize(
        "text",
        [
            'TARGET.Name == "slot1@n3"',
            '"slot1@n3" == TARGET.Name',
            'TARGET.Name == "slot1@n3" && TARGET.FreeSlots >= 1',
            'TARGET.FreeSlots >= 1 && TARGET.Name == "slot1@n3"',
            'A && (B && TARGET.Name == "slot1@n3")',
            'TARGET.Name == "SLOT1@N3"',  # lowered: compare is case-insensitive
        ],
    )
    def test_pin_extracted(self, text):
        assert requirements_plan(parse(text)).pin_name == "slot1@n3"

    @pytest.mark.parametrize(
        "text",
        [
            'Name == "slot1@n3"',          # unscoped: MY could define Name
            'MY.Name == "slot1@n3"',
            'TARGET.Name != "slot1@n3"',
            'TARGET.Name == 3',
            'TARGET.Name == "a" || TARGET.FreeSlots >= 1',  # disjunction
            'TARGET.Machine == "n3"',
            'TARGET.Name =?= "slot1@n3"',
        ],
    )
    def test_pin_not_extracted(self, text):
        assert requirements_plan(parse(text)).pin_name is None

    def test_scheduler_emitted_pin_shape(self):
        from repro.condor import pin_requirements

        plan = requirements_plan(parse(pin_requirements("node7")))
        assert plan.pin_name == "slot1@node7"
        assert not plan.never_matches


class TestCaching:
    def test_same_source_shares_one_closure(self):
        # parse() memoizes ASTs per source string, and compile memoizes
        # per AST, so equal strings compile exactly once.
        a = compile_expr(parse("Memory > 4096 && Threads < 300"))
        b = compile_expr(parse("Memory > 4096 && Threads < 300"))
        assert a is b

    def test_cache_counts_hits_and_misses(self):
        before = cache_info()
        compile_expr(parse("Threads * 1234 + 9"))
        compile_expr(parse("Threads * 1234 + 9"))
        after = cache_info()
        assert after["misses"] > before["misses"]
        assert after["hits"] > before["hits"]

    def test_qedit_style_replacement_recompiles(self):
        ad = ClassAd()
        ad.set_expr("Requirements", "TARGET.FreeSlots >= 1")
        first = ad.evaluate("Requirements", _TARGET)
        assert first is UNDEFINED  # _TARGET advertises no FreeSlots
        ad.set_expr("Requirements", 'TARGET.Name == "slot1@n0"')
        assert ad.evaluate("Requirements", _TARGET) is True
        ad.set_expr("Requirements", "false")
        assert ad.evaluate("Requirements", _TARGET) is False

    def test_plan_follows_replaced_tree(self):
        ad = ClassAd()
        ad.set_expr("Requirements", 'TARGET.Name == "slot1@n1"')
        assert (
            requirements_plan(ad.get_expr("Requirements")).pin_name == "slot1@n1"
        )
        ad.set_expr("Requirements", "false")
        assert requirements_plan(ad.get_expr("Requirements")).never_matches


class TestRawProtocol:
    def test_raw_returns_literal_value(self):
        ad = ClassAd({"X": 5})
        assert ad.raw("x") == 5

    def test_raw_returns_expr_for_expressions(self):
        ad = ClassAd()
        ad.set_expr("X", "1 + Y")
        assert not isinstance(ad.raw("x"), (int, float))
        assert ad.raw("x") is not MISSING

    def test_raw_missing_sentinel(self):
        assert ClassAd().raw("nope") is MISSING

    def test_raw_distinguishes_missing_from_undefined(self):
        ad = ClassAd({"X": UNDEFINED})
        assert ad.raw("x") is UNDEFINED
        assert ad.raw("y") is MISSING

    def test_literal_fast_path_type_check_is_exact(self):
        # Stored bools must come back as bools (not ints) through raw.
        ad = ClassAd({"B": True})
        assert ad.raw("b") is True
        assert type(parse("true")) is Literal
