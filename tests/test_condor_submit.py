"""Tests for submit-description parsing and the classic ClassAd text format."""

import pytest

from repro.condor import (
    ClassAd,
    ClassAdError,
    SubmitError,
    format_classad,
    parse_classad_text,
    parse_submit,
)
from repro.condor.classad import ERROR, UNDEFINED
from repro.condor.submit import roundtrip
from repro.workloads import profiles_from_submit

SUBMIT = """\
# A Xeon Phi offload job, as the paper's users would write it.
executable          = km_offload
arguments           = --points 4M --means 32
request_phi_devices = 1
request_phi_memory  = 1250
request_phi_threads = 60
requirements        = TARGET.PhiDevices >= 1
output              = km_$(Process).out
queue 3
"""


class TestParseSubmit:
    def test_queue_count_produces_instances(self):
        ads = parse_submit(SUBMIT)
        assert len(ads) == 3
        assert [ad.evaluate("ProcId") for ad in ads] == [0, 1, 2]
        assert all(ad.evaluate("ClusterId") == 1 for ad in ads)

    def test_resource_requests_renamed(self):
        ad = parse_submit(SUBMIT)[0]
        assert ad.evaluate("RequestPhiDevices") == 1
        assert ad.evaluate("RequestPhiMemory") == 1250
        assert ad.evaluate("RequestPhiThreads") == 60
        assert ad.evaluate("Cmd") == "km_offload"

    def test_process_macro_expansion(self):
        ads = parse_submit(SUBMIT)
        assert ads[0].evaluate("Output") == "km_0.out"
        assert ads[2].evaluate("Output") == "km_2.out"

    def test_requirements_is_expression(self):
        ad = parse_submit(SUBMIT)[0]
        machine = ClassAd({"PhiDevices": 2})
        assert ad.evaluate("Requirements", machine) is True

    def test_multiple_queue_statements(self):
        text = "a = 1\nqueue\na = 2\nqueue 2\n"
        ads = parse_submit(text)
        assert len(ads) == 3
        assert ads[0].evaluate("A") == 1
        assert ads[1].evaluate("A") == 2
        assert [a.evaluate("ProcId") for a in ads] == [0, 1, 2]

    def test_quoted_strings_and_booleans(self):
        text = 'name = "hello world"\nflag = true\nqueue\n'
        ad = parse_submit(text)[0]
        assert ad.evaluate("Name") == "hello world"
        assert ad.evaluate("Flag") is True

    @pytest.mark.parametrize(
        "bad",
        ["queue 0\n", "no queue statement\nx = 1\n", "=== nonsense\nqueue\n",
         "requirements = ((\nqueue\n"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(SubmitError):
            parse_submit(bad)

    def test_key_camelcasing(self):
        ad = parse_submit("my_custom_attr = 7\nqueue\n")[0]
        assert ad.evaluate("MyCustomAttr") == 7


class TestClassAdText:
    def test_format_literals(self):
        ad = ClassAd({"Name": "slot1@n0", "Memory": 8192, "Busy": False,
                      "Load": 0.5})
        text = format_classad(ad)
        assert 'Name = "slot1@n0"' in text
        assert "Memory = 8192" in text
        assert "Busy = false" in text

    def test_parse_text(self):
        ad = parse_classad_text('A = 1\nB = "x"\nC = A + 1\n')
        assert ad.evaluate("A") == 1
        assert ad.evaluate("B") == "x"
        assert ad.evaluate("C") == 2

    def test_roundtrip_preserves_literals(self):
        ad = ClassAd({"S": 'tricky "quoted" \\ value', "N": -3, "F": 1.5,
                      "B": True})
        dup = roundtrip(ad)
        for name in ("S", "N", "F", "B"):
            assert dup.evaluate(name) == ad.evaluate(name)

    def test_undefined_renders(self):
        ad = ClassAd({"U": UNDEFINED, "E": ERROR})
        text = format_classad(ad)
        assert "U = undefined" in text
        assert "E = error" in text
        dup = parse_classad_text(text)
        assert dup.evaluate("U") is UNDEFINED
        assert dup.evaluate("E") is ERROR

    def test_parse_bad_line(self):
        with pytest.raises(ClassAdError):
            parse_classad_text("not an assignment")


class TestProfilesFromSubmit:
    def test_profiles_honour_declarations(self):
        profiles = profiles_from_submit(SUBMIT, seed=5)
        assert len(profiles) == 3
        for profile in profiles:
            assert profile.declared_threads == 60
            assert profile.declared_memory_mb >= 1250  # quantized up
            assert profile.honest
            assert profile.app == "km_offload"

    def test_reproducible(self):
        a = profiles_from_submit(SUBMIT, seed=5)
        b = profiles_from_submit(SUBMIT, seed=5)
        assert [p.nominal_duration for p in a] == [p.nominal_duration for p in b]

    def test_missing_requests_rejected(self):
        with pytest.raises(ValueError):
            profiles_from_submit("executable = x\nqueue\n")

    def test_job_ids_follow_cluster_proc(self):
        profiles = profiles_from_submit(SUBMIT, seed=1, cluster_id=7)
        assert profiles[0].job_id == "c7.p0"
        assert profiles[2].job_id == "c7.p2"
