"""Unit tests for the COSMIC middleware: admission, gating, affinity."""

import pytest

from repro.cosmic import (
    AffinityError,
    CoreSetAllocator,
    Cosmic,
    DeclaredMemoryEnforcer,
)
from repro.mpss import MemoryLimitExceeded
from repro.phi import XeonPhi
from repro.sim import Environment
from repro.workloads import HostPhase, JobProfile, OffloadPhase


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cosmic(env):
    return Cosmic(env, XeonPhi(env))


class TestJobAdmission:
    def test_admission_draws_down_pool(self, env, cosmic):
        def run(env):
            yield cosmic.admit_job(3000)

        env.process(run(env))
        env.run()
        assert cosmic.free_declared_memory_mb == 8192 - 3000
        assert cosmic.resident_jobs == 1
        assert cosmic.stats.jobs_admitted == 1

    def test_admission_blocks_until_release(self, env, cosmic):
        admitted = []

        def big(env):
            yield cosmic.admit_job(6000)
            admitted.append(("big", env.now))
            yield env.timeout(10)
            cosmic.release_job(6000)

        def other(env):
            yield cosmic.admit_job(4000)
            admitted.append(("other", env.now))
            cosmic.release_job(4000)

        env.process(big(env))
        env.process(other(env))
        env.run()
        assert admitted == [("big", 0), ("other", 10)]
        assert cosmic.resident_jobs == 0
        assert cosmic.stats.jobs_released == 2

    def test_oversized_declaration_clamped_to_card(self, env, cosmic):
        admitted = []

        def run(env):
            yield cosmic.admit_job(20_000)  # bigger than the 8 GB card
            admitted.append(env.now)
            cosmic.release_job(20_000)

        env.process(run(env))
        env.run()
        assert admitted == [0]
        assert cosmic.free_declared_memory_mb == 8192

    def test_peak_concurrency_tracked(self, env, cosmic):
        def run(env, mb):
            yield cosmic.admit_job(mb)
            yield env.timeout(5)
            cosmic.release_job(mb)

        for mb in (1000, 2000, 3000):
            env.process(run(env, mb))
        env.run()
        assert cosmic.stats.peak_concurrent_jobs == 3


class TestOffloadGate:
    def test_grants_within_budget_immediately(self, env, cosmic):
        times = []

        def run(env, threads):
            yield cosmic.acquire(threads)
            times.append(env.now)
            yield env.timeout(1)
            cosmic.release(threads)

        env.process(run(env, 120))
        env.process(run(env, 120))
        env.run()
        assert times == [0, 0]
        assert cosmic.free_threads == 240

    def test_serializes_past_budget(self, env, cosmic):
        times = []

        def run(env, tag, threads, hold):
            yield cosmic.acquire(threads)
            times.append((tag, env.now))
            yield env.timeout(hold)
            cosmic.release(threads)

        env.process(run(env, "a", 240, 5))
        env.process(run(env, "b", 240, 5))
        env.run()
        assert times == [("a", 0), ("b", 5)]

    def test_clamps_monster_offloads(self, env, cosmic):
        times = []

        def run(env):
            yield cosmic.acquire(999)
            times.append(env.now)
            cosmic.release(999)

        env.process(run(env))
        env.run()
        assert times == [0]
        assert cosmic.free_threads == 240

    def test_invalid_thread_counts_rejected(self, cosmic):
        with pytest.raises(ValueError):
            cosmic.acquire(0)
        with pytest.raises(ValueError):
            cosmic.release(-1)

    def test_stats(self, env, cosmic):
        def run(env):
            yield cosmic.acquire(240)
            yield env.timeout(1)
            cosmic.release(240)

        env.process(run(env))
        env.run()
        assert cosmic.stats.offloads_gated == 1
        assert cosmic.stats.peak_gated_threads == 240

    def test_repr(self, cosmic):
        assert "free_threads=240" in repr(cosmic)


class TestCoreSetAllocator:
    def test_disjoint_assignments(self):
        alloc = CoreSetAllocator()
        a = alloc.assign("a", 120)  # 30 cores
        b = alloc.assign("b", 120)  # 30 cores
        assert len(a) == 30 and len(b) == 30
        assert not set(a) & set(b)
        assert alloc.free_cores == 0
        assert alloc.verify_disjoint()

    def test_release_recycles_cores(self):
        alloc = CoreSetAllocator()
        alloc.assign("a", 240)
        alloc.release("a")
        assert alloc.free_cores == 60
        assert alloc.assignment_of("a") == ()

    def test_over_allocation_raises(self):
        alloc = CoreSetAllocator()
        alloc.assign("a", 200)  # 50 cores
        with pytest.raises(AffinityError):
            alloc.assign("b", 60)  # needs 15, only 10 free

    def test_double_assignment_raises(self):
        alloc = CoreSetAllocator()
        alloc.assign("a", 4)
        with pytest.raises(AffinityError):
            alloc.assign("a", 4)

    def test_release_unknown_owner_is_noop(self):
        CoreSetAllocator().release("ghost")

    def test_cores_needed_rounds_up(self):
        alloc = CoreSetAllocator(threads_per_core=4)
        assert alloc.cores_needed(1) == 1
        assert alloc.cores_needed(5) == 2
        with pytest.raises(ValueError):
            alloc.cores_needed(0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CoreSetAllocator(cores=0)


class TestEnforcer:
    def _job(self, declared, job_id="j"):
        return JobProfile(
            job_id=job_id,
            app="t",
            phases=(HostPhase(1.0), OffloadPhase(work=1, threads=6, memory_mb=100)),
            declared_memory_mb=declared,
            declared_threads=60,
        )

    def test_within_limit_passes(self):
        DeclaredMemoryEnforcer().check(self._job(1000), 999)

    def test_over_limit_kills(self):
        enforcer = DeclaredMemoryEnforcer()
        with pytest.raises(MemoryLimitExceeded):
            enforcer.check(self._job(1000), 1500)
        assert enforcer.kills == ["j"]

    def test_kills_are_idempotent_per_job(self):
        # A job can trip the limit at several offload phases before the
        # kill unwinds; the ledger must count the job once, not once per
        # check, while still raising every time.
        enforcer = DeclaredMemoryEnforcer()
        for _ in range(3):
            with pytest.raises(MemoryLimitExceeded):
                enforcer.check(self._job(1000), 1500)
        assert enforcer.kills == ["j"]
        with pytest.raises(MemoryLimitExceeded):
            enforcer.check(self._job(1000, job_id="k"), 1500)
        assert enforcer.kills == ["j", "k"]

    def test_tolerance(self):
        enforcer = DeclaredMemoryEnforcer(tolerance=0.10)
        enforcer.check(self._job(1000), 1099)
        with pytest.raises(MemoryLimitExceeded):
            enforcer.check(self._job(1000), 1101)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            DeclaredMemoryEnforcer(tolerance=-0.1)
