"""Unit tests for the job profile model."""

import pytest

from repro.workloads import HostPhase, JobProfile, OffloadPhase, alternating_profile


def make_job(**overrides):
    defaults = dict(
        job_id="j1",
        app="KM",
        phases=(
            HostPhase(2.0),
            OffloadPhase(work=6.0, threads=60, memory_mb=500.0),
            HostPhase(2.0),
            OffloadPhase(work=4.0, threads=120, memory_mb=800.0),
        ),
        declared_memory_mb=1000.0,
        declared_threads=120,
    )
    defaults.update(overrides)
    return JobProfile(**defaults)


class TestPhases:
    def test_negative_host_duration_rejected(self):
        with pytest.raises(ValueError):
            HostPhase(-1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"work": -1, "threads": 60, "memory_mb": 100},
            {"work": 1, "threads": 0, "memory_mb": 100},
            {"work": 1, "threads": 60, "memory_mb": -5},
            {"work": 1, "threads": 60, "memory_mb": 100, "transfer_mb": -1},
        ],
    )
    def test_invalid_offload_rejected(self, kwargs):
        with pytest.raises(ValueError):
            OffloadPhase(**kwargs)


class TestJobProfile:
    def test_derived_metrics(self):
        job = make_job()
        assert job.offload_count == 2
        assert job.total_offload_work == 10.0
        assert job.total_host_time == 4.0
        assert job.nominal_duration == 14.0
        assert job.peak_memory_mb == 800.0
        assert job.peak_threads == 120
        assert job.offload_duty_cycle == pytest.approx(10 / 14)

    def test_honest_job(self):
        assert make_job().honest

    def test_dishonest_memory(self):
        job = make_job(declared_memory_mb=700.0)
        assert not job.honest

    def test_dishonest_threads(self):
        job = make_job(declared_threads=60)
        assert not job.honest

    def test_host_only_job(self):
        job = make_job(phases=(HostPhase(5.0),))
        assert job.offload_count == 0
        assert job.peak_memory_mb == 0.0
        assert job.peak_threads == 0
        assert job.offload_duty_cycle == 0.0

    def test_validate_fits_passes(self):
        make_job().validate_fits(memory_mb=8192, threads=240)

    def test_validate_fits_memory_violation(self):
        with pytest.raises(ValueError, match="memory"):
            make_job(declared_memory_mb=9000).validate_fits(8192, 240)

    def test_validate_fits_thread_violation(self):
        with pytest.raises(ValueError, match="threads"):
            make_job(declared_threads=480).validate_fits(8192, 240)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"job_id": ""},
            {"declared_memory_mb": 0},
            {"declared_threads": 0},
            {"submit_time": -1},
            {"phases": ()},
        ],
    )
    def test_invalid_jobs_rejected(self, overrides):
        with pytest.raises(ValueError):
            make_job(**overrides)

    def test_profiles_are_hashable_and_frozen(self):
        job = make_job()
        assert hash(job) == hash(make_job())
        with pytest.raises(AttributeError):
            job.app = "other"


class TestAlternatingBuilder:
    def test_builds_fig2_style_profile(self):
        offloads = [
            OffloadPhase(work=5, threads=240, memory_mb=1000),
            OffloadPhase(work=5, threads=240, memory_mb=1000),
        ]
        job = alternating_profile(
            "j", "demo", offloads, host_gaps=[3.0, 0.0],
            declared_memory_mb=1000, declared_threads=240, leading_host=1.0,
        )
        kinds = [type(p).__name__ for p in job.phases]
        assert kinds == ["HostPhase", "OffloadPhase", "HostPhase", "OffloadPhase"]
        assert job.nominal_duration == 14.0

    def test_mismatched_gaps_rejected(self):
        with pytest.raises(ValueError):
            alternating_profile(
                "j", "demo",
                [OffloadPhase(work=1, threads=60, memory_mb=100)],
                host_gaps=[1.0, 2.0],
                declared_memory_mb=100,
                declared_threads=60,
            )
