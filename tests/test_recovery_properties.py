"""Property test: crashing the schedd at an arbitrary time loses nothing.

The recovery-equivalence property the WAL + reconciliation protocol
promises: crash the schedd at *any* simulated instant and let it
recover, and the final job accounting matches a crash-free run of the
same workload — every job reaches exactly one terminal outcome
(asserted by the auditor's ledgers, which span the restart), and any
job whose outcome differs from the crash-free run got there through the
re-adoption/retry path, never by being silently dropped or completed
twice. The crash run is also replay-deterministic for a fixed crash
time.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, run_configuration
from repro.experiments.common import make_workload
from repro.faults import FaultProfile
from repro.net.profile import NetProfile
from repro.obs import audit

CONFIG = ClusterConfig(nodes=2, cycle_interval=2.0)
JOBS = make_workload(("table1", 12, 42))


def _run(faults=None):
    auditor = audit.activate()
    auditor.enter_cell("recovery-property")
    try:
        result = run_configuration(
            "MCC", JOBS, CONFIG,
            faults=faults, fault_seed=7, net=NetProfile(), net_seed=3,
        )
        auditor.finish_cell()
    finally:
        audit.deactivate()
    assert auditor.violations == 0
    return result


#: Crash-free reference outcomes, computed once (same fabric, no faults).
_BASELINE = {r.job_id: r.status for r in _run().job_results}


@settings(max_examples=12, deadline=None)
@given(crash_time=st.floats(min_value=0.0, max_value=150.0,
                            allow_nan=False, allow_infinity=False))
def test_schedd_crash_at_any_time_preserves_outcomes(crash_time):
    faults = FaultProfile(crashes=((crash_time, "schedd"),))
    result = _run(faults)
    outcomes = {r.job_id: r for r in result.job_results}
    # No job lost, none reported twice (the dict would have collapsed
    # duplicates; the auditor inside _run catches double terminals).
    assert set(outcomes) == set(_BASELINE)
    assert len(result.job_results) == len(_BASELINE)
    assert result.completed_jobs + result.failed_jobs == len(_BASELINE)
    if result.schedd_recoveries:
        assert result.wal_replayed > 0
    # Outcomes may legitimately differ from the crash-free run only for
    # jobs routed through the retry path after losing their claim.
    for job_id, status in _BASELINE.items():
        if outcomes[job_id].status != status:
            assert outcomes[job_id].attempt > 0


@settings(max_examples=6, deadline=None)
@given(crash_time=st.floats(min_value=10.0, max_value=120.0,
                            allow_nan=False, allow_infinity=False))
def test_crash_run_is_replay_deterministic(crash_time):
    faults = FaultProfile(crashes=((crash_time, "schedd"),))

    def fingerprint():
        result = _run(faults)
        return (
            result.makespan,
            result.schedd_recoveries,
            result.wal_replayed,
            result.jobs_readopted,
            tuple((r.job_id, r.status) for r in result.job_results),
        )

    assert fingerprint() == fingerprint()
