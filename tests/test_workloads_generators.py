"""Tests for the Table-I and synthetic job generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phi import PAPER_SPEC
from repro.workloads import (
    DISTRIBUTIONS,
    TABLE1_APPS,
    draw_levels,
    generate_synthetic_jobs,
    generate_table1_job,
    generate_table1_jobs,
    level_to_resources,
    quantize_memory,
    resource_histogram,
)


class TestTable1Specs:
    def test_all_seven_apps_present(self):
        assert sorted(TABLE1_APPS) == ["BT", "KM", "LU", "MC", "MD", "SG", "SP"]

    @pytest.mark.parametrize(
        "app,threads,memory_range",
        [
            ("KM", 60, (300, 1250)),
            ("MC", 180, (400, 650)),
            ("MD", 180, (300, 750)),
            ("SG", 60, (500, 3400)),
            ("BT", 240, (300, 1250)),
            ("SP", 180, (300, 1850)),
            ("LU", 180, (400, 1250)),
        ],
    )
    def test_specs_match_paper_table1(self, app, threads, memory_range):
        spec = TABLE1_APPS[app]
        assert spec.threads == threads
        assert spec.memory_range_mb == memory_range


class TestTable1Generation:
    def test_jobs_reproducible(self):
        a = generate_table1_jobs(50, seed=3)
        b = generate_table1_jobs(50, seed=3)
        assert [j.job_id for j in a] == [j.job_id for j in b]
        assert [j.nominal_duration for j in a] == [j.nominal_duration for j in b]

    def test_different_seeds_differ(self):
        a = generate_table1_jobs(50, seed=3)
        b = generate_table1_jobs(50, seed=4)
        assert [j.nominal_duration for j in a] != [j.nominal_duration for j in b]

    def test_round_robin_app_mix(self):
        jobs = generate_table1_jobs(70, seed=0)
        apps = [j.app for j in jobs]
        for app in TABLE1_APPS:
            assert apps.count(app) == 10

    def test_every_job_fits_one_device(self):
        for job in generate_table1_jobs(100, seed=1):
            job.validate_fits(PAPER_SPEC.usable_memory_mb, PAPER_SPEC.hardware_threads)

    def test_jobs_are_honest(self):
        # Generated declarations cover actual peaks (the motivation
        # experiments assume no user mistakes).
        for job in generate_table1_jobs(100, seed=1):
            assert job.honest

    def test_memory_within_table_range_after_quantization(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            job = generate_table1_job("x", "SG", rng)
            assert 500 <= job.declared_memory_mb <= quantize_memory(3400)

    def test_declared_memory_is_quantized(self):
        for job in generate_table1_jobs(50, seed=2):
            assert job.declared_memory_mb % 50 == 0

    def test_thread_declaration_matches_app(self):
        rng = np.random.default_rng(0)
        job = generate_table1_job("x", "BT", rng)
        assert job.declared_threads == 240
        assert job.peak_threads == 240

    def test_app_subset(self):
        jobs = generate_table1_jobs(10, seed=0, apps=["KM"])
        assert all(j.app == "KM" for j in jobs)

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            generate_table1_jobs(10, apps=["XX"])

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            generate_table1_jobs(0)

    def test_duty_cycle_shape(self):
        jobs = generate_table1_jobs(200, seed=5)
        duties = [j.offload_duty_cycle for j in jobs]
        assert 0.8 <= float(np.mean(duties)) <= 0.95


class TestSyntheticGeneration:
    def test_all_distributions_produce_jobs(self):
        for distribution in DISTRIBUTIONS:
            jobs = generate_synthetic_jobs(50, distribution, seed=1)
            assert len(jobs) == 50
            for job in jobs:
                job.validate_fits(
                    PAPER_SPEC.usable_memory_mb, PAPER_SPEC.hardware_threads
                )

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            generate_synthetic_jobs(10, "bimodal")

    def test_skew_ordering_of_means(self):
        means = {}
        for distribution in ("low-skew", "normal", "high-skew"):
            jobs = generate_synthetic_jobs(400, distribution, seed=1)
            means[distribution] = np.mean([j.declared_memory_mb for j in jobs])
        assert means["low-skew"] < means["normal"] < means["high-skew"]

    def test_memory_thread_correlation(self):
        jobs = generate_synthetic_jobs(400, "uniform", seed=1)
        memories = [j.declared_memory_mb for j in jobs]
        threads = [j.declared_threads for j in jobs]
        assert np.corrcoef(memories, threads)[0, 1] > 0.95

    def test_levels_clipped_to_unit_interval(self):
        rng = np.random.default_rng(0)
        for distribution in DISTRIBUTIONS:
            levels = draw_levels(2000, distribution, rng)
            assert levels.min() >= 0.0
            assert levels.max() <= 1.0

    def test_level_to_resources_bounds(self):
        low_mem, low_thr = level_to_resources(0.0)
        high_mem, high_thr = level_to_resources(1.0)
        assert low_mem == 300 and high_mem == 6000
        assert low_thr == 40 and high_thr == 240

    def test_level_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            level_to_resources(1.5)

    def test_histogram_shape(self):
        jobs = generate_synthetic_jobs(400, "normal", seed=1)
        counts, edges = resource_histogram(jobs, bins=10)
        assert counts.sum() == 400
        assert len(edges) == 11
        # Bell shape: middle bins dominate the tails.
        assert counts[4] + counts[5] > counts[0] + counts[9]

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0, max_value=1))
    def test_threads_always_multiple_of_four(self, level):
        _memory, threads = level_to_resources(level)
        assert threads % 4 == 0
        assert 4 <= threads <= 240
