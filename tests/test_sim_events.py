"""Unit tests for the event primitives of the simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


@pytest.fixture
def env():
    return Environment()


class TestEventLifecycle:
    def test_new_event_is_untriggered(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_ok_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_twice_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_then_succeed_raises(self, env):
        event = env.event()
        event.fail(RuntimeError("boom"))
        event.defused = True
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_processed_after_run(self, env):
        event = env.event()
        event.succeed("v")
        env.run()
        assert event.processed

    def test_callbacks_invoked_in_order(self, env):
        order = []
        event = env.event()
        event.callbacks.append(lambda e: order.append(1))
        event.callbacks.append(lambda e: order.append(2))
        event.succeed()
        env.run()
        assert order == [1, 2]

    def test_unhandled_failure_surfaces_from_run(self, env):
        event = env.event()
        event.fail(ValueError("unhandled"))
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_defused_failure_is_swallowed(self, env):
        event = env.event()
        event.fail(ValueError("handled"))
        event.defused = True
        env.run()  # Must not raise.


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_fires_at_delay(self, env):
        log = []

        def proc(env):
            yield env.timeout(5)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [5]

    def test_timeout_carries_value(self, env):
        result = []

        def proc(env):
            value = yield env.timeout(1, value="payload")
            result.append(value)

        env.process(proc(env))
        env.run()
        assert result == ["payload"]

    def test_zero_delay_allowed(self, env):
        t = env.timeout(0)
        env.run()
        assert t.processed

    def test_repr_mentions_delay(self, env):
        assert "3" in repr(env.timeout(3))


class TestConditions:
    def test_allof_waits_for_every_event(self, env):
        t1, t2 = env.timeout(1, value="a"), env.timeout(2, value="b")
        done = []

        def proc(env):
            result = yield AllOf(env, [t1, t2])
            done.append((env.now, result[t1], result[t2]))

        env.process(proc(env))
        env.run()
        assert done == [(2, "a", "b")]

    def test_anyof_fires_on_first(self, env):
        t1, t2 = env.timeout(5), env.timeout(1, value="fast")
        done = []

        def proc(env):
            result = yield AnyOf(env, [t1, t2])
            done.append((env.now, t2 in result, t1 in result))

        env.process(proc(env))
        env.run()
        assert done == [(1, True, False)]

    def test_operator_and(self, env):
        times = []

        def proc(env):
            yield env.timeout(1) & env.timeout(3)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [3]

    def test_operator_or(self, env):
        times = []

        def proc(env):
            yield env.timeout(1) | env.timeout(3)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [1]

    def test_empty_allof_triggers_immediately(self, env):
        cond = AllOf(env, [])
        assert cond.triggered

    def test_empty_anyof_triggers_immediately(self, env):
        cond = AnyOf(env, [])
        assert cond.triggered

    def test_condition_value_mapping(self, env):
        t1 = env.timeout(1, value=10)
        cond = AllOf(env, [t1])
        env.run()
        value = cond.value
        assert value[t1] == 10
        assert value.todict() == {t1: 10}
        assert len(value) == 1
        assert list(value) == [t1]

    def test_condition_value_missing_key(self, env):
        t1 = env.timeout(1)
        other = env.timeout(1)
        cond = AllOf(env, [t1])
        env.run()
        with pytest.raises(KeyError):
            cond.value[other]

    def test_failed_subevent_fails_condition(self, env):
        bad = env.event()
        caught = []

        def proc(env):
            try:
                yield AllOf(env, [bad, env.timeout(10)])
            except RuntimeError as exc:
                caught.append((env.now, str(exc)))

        def failer(env):
            yield env.timeout(2)
            bad.fail(RuntimeError("sub failed"))

        env.process(proc(env))
        env.process(failer(env))
        env.run()
        assert caught == [(2, "sub failed")]

    def test_cross_environment_events_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            AllOf(env, [env.timeout(1), other.timeout(1)])

    def test_nested_condition_values_flatten(self, env):
        t1, t2, t3 = env.timeout(1), env.timeout(2), env.timeout(3)
        results = []

        def proc(env):
            value = yield (t1 & t2) & t3
            results.append(sorted(value.todict(), key=id))

        env.process(proc(env))
        env.run()
        assert len(results[0]) == 3


class TestProcessBasics:
    def test_process_returns_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return "done"

        p = env.process(proc(env))
        env.run()
        assert p.value == "done"

    def test_process_is_event(self, env):
        def child(env):
            yield env.timeout(3)
            return 99

        def parent(env):
            result = yield env.process(child(env))
            return result + 1

        p = env.process(parent(env))
        env.run()
        assert p.value == 100

    def test_process_failure_propagates_to_waiter(self, env):
        def child(env):
            yield env.timeout(1)
            raise KeyError("child died")

        caught = []

        def parent(env):
            try:
                yield env.process(child(env))
            except KeyError:
                caught.append(env.now)

        env.process(parent(env))
        env.run()
        assert caught == [1]

    def test_unwaited_process_failure_crashes_run(self, env):
        def child(env):
            yield env.timeout(1)
            raise KeyError("nobody listening")

        env.process(child(env))
        with pytest.raises(KeyError):
            env.run()

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yield_non_event_fails_process(self, env):
        def proc(env):
            yield 42

        p = env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run()
        assert not p.ok

    def test_is_alive(self, env):
        def proc(env):
            yield env.timeout(10)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_yield_already_processed_event_resumes_immediately(self, env):
        t = env.timeout(0, value="early")
        log = []

        def proc(env):
            yield env.timeout(5)
            value = yield t  # t processed long ago
            log.append((env.now, value))

        env.process(proc(env))
        env.run()
        assert log == [(5, "early")]

    def test_name_defaults(self, env):
        def my_proc(env):
            yield env.timeout(1)

        p = env.process(my_proc(env), name="worker-1")
        assert p.name == "worker-1"
        assert "worker-1" in repr(p)


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                causes.append((env.now, interrupt.cause))

        def attacker(env, victim_proc):
            yield env.timeout(3)
            victim_proc.interrupt("preempted")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert causes == [(3, "preempted")]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(5)
            log.append(env.now)

        def attacker(env, victim_proc):
            yield env.timeout(2)
            victim_proc.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert log == [7]

    def test_self_interrupt_rejected(self, env):
        def proc(env):
            env.active_process.interrupt()
            yield env.timeout(1)

        p = env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run()
        assert not p.ok

    def test_interrupt_terminated_process_rejected(self, env):
        def proc(env):
            yield env.timeout(1)

        p = env.process(proc(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_uncaught_interrupt_kills_process(self, env):
        def victim(env):
            yield env.timeout(100)

        def attacker(env, victim_proc):
            yield env.timeout(1)
            victim_proc.interrupt("die")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        with pytest.raises(Interrupt):
            env.run()
        assert not v.ok

    def test_interrupt_race_with_termination_is_ignored(self, env):
        # The victim terminates at t=1; an interrupt scheduled for the same
        # instant but after must be a no-op rather than an error.
        def victim(env):
            yield env.timeout(1)

        def attacker(env, victim_proc):
            yield env.timeout(1)
            if victim_proc.is_alive:
                victim_proc.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert v.ok


class TestEventHelpers:
    def test_trigger_copies_success(self, env):
        source = env.event()
        sink = env.event()
        source.callbacks.append(sink.trigger)
        source.succeed("payload")
        env.run()
        assert sink.value == "payload"

    def test_trigger_copies_failure_and_defuses(self, env):
        source = env.event()
        sink = env.event()
        source.callbacks.append(sink.trigger)
        source.fail(RuntimeError("boom"))
        sink.defused = True
        env.run()
        assert not sink.ok
        assert source.defused

    def test_condition_value_equality_with_dict(self, env):
        t = env.timeout(1, value=5)
        cond = AllOf(env, [t])
        env.run()
        assert cond.value == {t: 5}
        assert "ConditionValue" in repr(cond.value)

    def test_condition_over_already_processed_events(self, env):
        t1 = env.timeout(0, value="x")
        env.run()
        assert t1.processed
        cond = AllOf(env, [t1])
        assert cond.triggered
        env.run()
        assert cond.value[t1] == "x"

    def test_event_repr_states(self, env):
        event = env.event()
        assert "pending" in repr(event)
        event.succeed()
        assert "triggered" in repr(event)
        env.run()
        assert "processed" in repr(event)
