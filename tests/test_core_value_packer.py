"""Unit tests for value functions and the device packer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DevicePacker,
    constant_value,
    count_first_value,
    get_value_function,
    linear_value,
    paper_value,
    paper_value_floored,
    value_function_names,
)
from repro.workloads import HostPhase, JobProfile, OffloadPhase


class TestValueFunctions:
    def test_eq1_at_anchors(self):
        assert paper_value(0) == 1.0
        assert paper_value(240) == 0.0
        assert paper_value(120) == pytest.approx(0.75)

    def test_eq1_decreasing(self):
        values = [paper_value(t) for t in range(0, 241, 20)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_floored_keeps_full_card_jobs_packable(self):
        assert paper_value_floored(240) == 0.05
        assert paper_value_floored(60) == paper_value(60)

    def test_linear(self):
        assert linear_value(120) == pytest.approx(0.5)
        assert linear_value(300) == 0.0  # clamped

    def test_count_first_dominates(self):
        # Every job is worth >= 1, so adding any job always beats any
        # value gained by swapping thread profiles (spread < 1).
        assert count_first_value(240) == 1.0
        assert count_first_value(0) == 2.0
        spread = count_first_value(0) - count_first_value(240)
        assert spread <= count_first_value(240)

    def test_constant(self):
        assert constant_value(0) == constant_value(240) == 1.0

    def test_negative_threads_rejected(self):
        for fn in (paper_value, linear_value, constant_value):
            with pytest.raises(ValueError):
                fn(-1)

    def test_registry(self):
        assert "paper" in value_function_names()
        assert get_value_function("paper") is paper_value
        with pytest.raises(ValueError):
            get_value_function("nope")


def job(job_id, memory, threads):
    return JobProfile(
        job_id=job_id,
        app="t",
        phases=(HostPhase(1.0), OffloadPhase(work=5, threads=threads, memory_mb=memory)),
        declared_memory_mb=memory,
        declared_threads=threads,
    )


class TestDevicePacker:
    def test_empty_job_list(self):
        packing = DevicePacker().pack([], 8192)
        assert packing.chosen == ()
        assert packing.concurrency == 0

    def test_memory_capacity_respected(self):
        jobs = [job(f"j{i}", 3000, 60) for i in range(5)]
        packing = DevicePacker().pack(jobs, 8192)
        assert packing.total_declared_mb <= 8192
        assert packing.concurrency == 2

    def test_prefers_low_thread_jobs(self):
        jobs = [job("big", 1000, 240), job("small1", 1000, 60), job("small2", 1000, 60)]
        packing = DevicePacker().pack(jobs, 2000)
        assert set(packing.chosen) == {"small1", "small2"}

    def test_thread_cap_variant(self):
        jobs = [job("a", 500, 180), job("b", 500, 180), job("c", 500, 60)]
        packing = DevicePacker(thread_capacity=240).pack(jobs, 8192)
        assert packing.total_declared_threads <= 240

    def test_max_jobs_bound(self):
        jobs = [job(f"j{i}", 100, 60) for i in range(10)]
        packing = DevicePacker().pack(jobs, 8192, max_jobs=4)
        assert packing.concurrency == 4

    def test_thread_cap_with_max_jobs_trims(self):
        jobs = [job(f"j{i}", 100, 16) for i in range(10)]
        packing = DevicePacker(thread_capacity=240).pack(jobs, 8192, max_jobs=3)
        assert packing.concurrency <= 3
        assert packing.total_declared_threads <= 240

    def test_zero_free_memory(self):
        packing = DevicePacker().pack([job("a", 100, 60)], 0)
        assert packing.chosen == ()

    def test_full_card_jobs_still_packable_by_default(self):
        # Eq. 1 gives 240-thread jobs zero value; the floored default
        # keeps them packable.
        packing = DevicePacker().pack([job("big", 1000, 240)], 8192)
        assert packing.chosen == ("big",)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DevicePacker(quantum_mb=0)
        with pytest.raises(ValueError):
            DevicePacker(thread_capacity=0)

    def test_negative_free_memory_rejected(self):
        with pytest.raises(ValueError):
            DevicePacker().pack([], -1)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=50, max_value=4000),
                st.integers(min_value=4, max_value=240),
            ),
            min_size=0,
            max_size=25,
        ),
        st.integers(min_value=0, max_value=8192),
        st.one_of(st.none(), st.integers(min_value=0, max_value=16)),
    )
    def test_packing_always_feasible(self, raw, free_mb, max_jobs):
        jobs = [job(f"j{i}", float(m), t) for i, (m, t) in enumerate(raw)]
        packing = DevicePacker().pack(jobs, float(free_mb), max_jobs)
        assert packing.total_declared_mb <= free_mb
        if max_jobs is not None:
            assert packing.concurrency <= max_jobs
        assert len(set(packing.chosen)) == len(packing.chosen)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=50, max_value=4000),
                st.integers(min_value=4, max_value=240),
            ),
            min_size=0,
            max_size=25,
        ),
        st.integers(min_value=0, max_value=8192),
    )
    def test_thread_capped_packing_feasible(self, raw, free_mb):
        jobs = [job(f"j{i}", float(m), t) for i, (m, t) in enumerate(raw)]
        packer = DevicePacker(thread_capacity=240)
        packing = packer.pack(jobs, float(free_mb))
        assert packing.total_declared_mb <= free_mb
        assert packing.total_declared_threads <= 240
