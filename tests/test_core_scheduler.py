"""Tests for the knapsack cluster scheduler (the Fig. 4 loop)."""

import pytest

from repro.cluster import ComputeNode
from repro.condor import CondorPool, PinnedPlacement
from repro.core import DevicePacker, KnapsackClusterScheduler, PARK_EXPRESSION
from repro.sim import Environment
from repro.workloads import HostPhase, JobProfile, OffloadPhase


def make_profile(job_id, memory=1000.0, threads=60, work=5.0, host=1.0):
    return JobProfile(
        job_id=job_id,
        app="t",
        phases=(HostPhase(host),
                OffloadPhase(work=work, threads=threads, memory_mb=memory)),
        declared_memory_mb=memory,
        declared_threads=threads,
    )


@pytest.fixture
def env():
    return Environment()


def build(env, nodes=2, slots=16, cycle=1.0):
    executors = [ComputeNode(env, f"n{i}", mode="cosmic") for i in range(nodes)]
    return CondorPool(env, executors, PinnedPlacement(),
                      slots_per_node=slots, cycle_interval=cycle,
                      dispatch_latency=0.1)


class TestAttach:
    def test_initial_pack_assigns_and_parks(self, env):
        pool = build(env, nodes=1)
        # 8 GB card: five 2000 MB jobs -> 4 packed, 1 parked.
        pool.submit([make_profile(f"j{i}", memory=2000) for i in range(5)])
        scheduler = KnapsackClusterScheduler(pool, packer=DevicePacker())
        scheduler.attach()
        assert scheduler.assigned_jobs == 4
        parked = [
            r for r in pool.schedd.pending()
            if r.ad.evaluate("Requirements") is False
        ]
        assert len(parked) == 1

    def test_double_attach_rejected(self, env):
        pool = build(env)
        pool.submit([make_profile("a")])
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()
        with pytest.raises(RuntimeError):
            scheduler.attach()

    def test_ledger_tracks_commitment(self, env):
        pool = build(env, nodes=1)
        pool.submit([make_profile("a", memory=3000), make_profile("b", memory=4000)])
        scheduler = KnapsackClusterScheduler(pool, packer=DevicePacker())
        scheduler.attach()
        assert scheduler.committed_mb("n0", 0) == 7000
        assert scheduler.assignment_of("a") == ("n0", 0)


class TestFig4Loop:
    def test_completion_triggers_repack(self, env):
        pool = build(env, nodes=1)
        # Three 3000 MB jobs: two fit initially, third packs on completion.
        pool.submit([make_profile(f"j{i}", memory=3000, work=3, host=0)
                     for i in range(3)])
        scheduler = KnapsackClusterScheduler(pool, packer=DevicePacker())
        scheduler.attach()
        assert scheduler.assigned_jobs == 2
        makespan = pool.run_to_completion()
        assert pool.schedd.unfinished_jobs == 0
        # The repack decision was recorded.
        assert len(scheduler.decisions) >= 2

    def test_all_jobs_eventually_run(self, env):
        pool = build(env, nodes=2)
        pool.submit([make_profile(f"j{i}", memory=2500, work=2, host=0.5)
                     for i in range(12)])
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()
        pool.run_to_completion()
        assert len(pool.schedd.completed()) == 12

    def test_commitment_never_exceeds_capacity(self, env):
        pool = build(env, nodes=2)
        pool.submit([make_profile(f"j{i}", memory=1500 + 100 * (i % 5), work=1)
                     for i in range(20)])
        scheduler = KnapsackClusterScheduler(pool)

        over = []

        def check(record):
            for (node, device), committed in scheduler._committed.items():
                if committed > scheduler._capacity[(node, device)] + 1e-9:
                    over.append((node, device, committed))

        scheduler.attach()
        pool.schedd.completion_listeners.append(check)
        pool.run_to_completion()
        assert not over

    def test_host_slot_bound_respected(self, env):
        pool = build(env, nodes=1, slots=3)
        pool.submit([make_profile(f"j{i}", memory=100, work=5) for i in range(10)])
        scheduler = KnapsackClusterScheduler(pool, respect_host_slots=True)
        scheduler.attach()
        assert scheduler.assigned_jobs == 3

    def test_host_slot_bound_can_be_disabled(self, env):
        pool = build(env, nodes=1, slots=3)
        pool.submit([make_profile(f"j{i}", memory=100, threads=16, work=5)
                     for i in range(10)])
        scheduler = KnapsackClusterScheduler(pool, respect_host_slots=False)
        scheduler.attach()
        assert scheduler.assigned_jobs > 3

    def test_thread_cap_packer_limits_declared_threads(self, env):
        pool = build(env, nodes=1)
        pool.submit([make_profile(f"j{i}", memory=500, threads=180)
                     for i in range(4)])
        scheduler = KnapsackClusterScheduler(
            pool, packer=DevicePacker(thread_capacity=240)
        )
        scheduler.attach()
        # 180+180 > 240: only one job per knapsack fill.
        assert scheduler.assigned_jobs == 1

    def test_dynamic_submission_schedules_new_jobs(self, env):
        pool = build(env, nodes=1)
        # 'first' runs long enough that 'late' arrives before the queue
        # drains (run_to_completion returns when the queue empties).
        pool.submit([make_profile("first", memory=1000, work=10, host=0)])
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()

        def late_submitter(env):
            yield env.timeout(3)
            pool.submit([make_profile("late", memory=1000, work=2, host=0)])
            scheduler.schedule_pending()

        env.process(late_submitter(env))
        pool.run_to_completion()
        assert pool.schedd.get("late").status == "Completed"

    def test_park_expression_constant(self):
        assert PARK_EXPRESSION == "false"

    def test_zero_value_jobs_never_starve(self, env):
        # Eq. 1 (unfloored) rates 240-thread jobs at exactly zero; the
        # progress guarantee must still run them (regression: this used
        # to livelock the whole simulation).
        from repro.core import paper_value

        pool = build(env, nodes=1)
        pool.submit([make_profile(f"big{i}", memory=500, threads=240, work=2)
                     for i in range(3)])
        scheduler = KnapsackClusterScheduler(
            pool, packer=DevicePacker(value_fn=paper_value)
        )
        scheduler.attach()
        makespan = pool.run_to_completion(limit=500.0)
        assert len(pool.schedd.completed()) == 3


class TestParkingOnSubmission:
    """Regression: post-attach arrivals must never reach the vanilla
    negotiator with their default Requirements (the parking leak)."""

    def test_late_arrival_parked_immediately(self, env):
        pool = build(env, nodes=1)
        pool.submit([make_profile("first", memory=1000, work=10, host=0)])
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()
        pool.submit([make_profile("late", memory=1000, work=2, host=0)])
        record = pool.schedd.get("late")
        assert record.ad.evaluate("Requirements") is False

    def test_no_job_starts_without_assignment(self, env):
        # Long cycle gap + no manual schedule_pending: pre-fix, the
        # vanilla negotiator dispatched the late arrivals to arbitrary
        # nodes before the scheduler ever saw them.
        pool = build(env, nodes=2, cycle=1.0)
        pool.submit([make_profile(f"j{i}", memory=2000, work=4, host=0)
                     for i in range(6)])
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()

        violations = []

        def check_start(record):
            if scheduler.assignment_of(record.job_id) is None:
                violations.append(record.job_id)

        pool.schedd.start_listeners.append(check_start)

        def late_submitter(env):
            for i in range(4):
                yield env.timeout(1.5)
                pool.submit([make_profile(f"late{i}", memory=1500, work=2,
                                          host=0)])

        env.process(late_submitter(env))
        pool.run_to_completion(limit=500.0)
        assert not violations
        assert pool.schedd.unfinished_jobs == 0

    def test_assigned_job_is_unparked(self, env):
        pool = build(env, nodes=1)
        pool.submit([make_profile("a", memory=1000)])
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()
        record = pool.schedd.get("a")
        assert record.ad.evaluate("Requirements") is not False


class TestCoalescedRepacking:
    def test_same_timestep_completions_trigger_one_pass(self, env):
        pool = build(env, nodes=1)
        # Four identical jobs co-pack, run in lockstep, and complete on
        # the same timestep; four more wait parked.
        pool.submit([make_profile(f"j{i}", memory=2000, threads=32, work=3,
                                  host=0) for i in range(8)])
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()
        assert scheduler.assigned_jobs == 4
        pool.run_to_completion()
        assert pool.schedd.unfinished_jobs == 0
        # 4 simultaneous completions per wave -> 1 repack pass per wave.
        assert scheduler.coalesced_completions >= 3
        assert scheduler.repack_passes <= 3

    def test_repack_still_fills_freed_capacity(self, env):
        pool = build(env, nodes=1)
        pool.submit([make_profile(f"j{i}", memory=3000, work=3, host=0)
                     for i in range(3)])
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()
        pool.run_to_completion()
        assert len(pool.schedd.completed()) == 3
        assert scheduler.repack_passes >= 1


class TestPendingIndex:
    def test_index_tracks_queue(self, env):
        pool = build(env, nodes=1)
        pool.submit([make_profile(f"j{i}", memory=3000) for i in range(4)])
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()
        unassigned = scheduler._unassigned_pending()
        expected = [
            r for r in pool.schedd.pending()
            if r.job_id not in scheduler._assignment
        ]
        assert [r.job_id for r in unassigned] == [r.job_id for r in expected]

    def test_out_of_order_submit_times_resorted(self, env):
        pool = build(env, nodes=1)
        pool.submit([make_profile("first", memory=1000, work=10, host=0)])
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()
        # Deliberately submit with an *earlier* submit_time than the
        # queue tail: FIFO order is (submit_time, seq), not insertion.
        from repro.workloads import JobProfile, HostPhase, OffloadPhase

        def profile(job_id, submit_time):
            return JobProfile(
                job_id=job_id, app="t",
                phases=(OffloadPhase(work=1, threads=16, memory_mb=9000),),
                declared_memory_mb=9000, declared_threads=16,
                submit_time=submit_time,
            )

        pool.submit([profile("b", 5.0)])
        pool.submit([profile("a", 2.0)])
        order = [r.job_id for r in scheduler._unassigned_pending()]
        assert order == ["a", "b"]

    def test_completed_unassigned_job_purged(self, env):
        pool = build(env, nodes=1)
        pool.submit([make_profile(f"j{i}", memory=3000, work=2, host=0)
                     for i in range(3)])
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()
        pool.run_to_completion()
        assert scheduler._unassigned_pending() == []
        assert scheduler._pending_index == {}


class TestPeriodicRepacking:
    def test_periodic_pass_picks_up_new_jobs(self, env):
        pool = build(env, nodes=1)
        pool.submit([make_profile("first", memory=1000, work=30, host=0)])
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()
        scheduler.start_periodic(interval=2.0)

        def late(env):
            yield env.timeout(5)
            pool.submit([make_profile("late", memory=1000, work=2, host=0)])
            # No manual schedule_pending(): the periodic pass must find it.

        env.process(late(env))
        pool.run_to_completion()
        assert pool.schedd.get("late").status == "Completed"

    def test_periodic_requires_attach(self, env):
        pool = build(env, nodes=1)
        pool.submit([make_profile("a")])
        scheduler = KnapsackClusterScheduler(pool)
        with pytest.raises(RuntimeError):
            scheduler.start_periodic(5.0)

    def test_invalid_interval(self, env):
        pool = build(env, nodes=1)
        pool.submit([make_profile("a")])
        scheduler = KnapsackClusterScheduler(pool)
        scheduler.attach()
        with pytest.raises(ValueError):
            scheduler.start_periodic(0)
