"""Unit tests for the Environment run loop and deterministic ordering."""

import pytest

from repro.sim import EmptySchedule, Environment, SimulationError


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_initial_time(self):
        assert Environment(initial_time=7.5).now == 7.5

    def test_run_until_time(self, env):
        env.process(_ticker(env, 1.0))
        env.run(until=10)
        assert env.now == 10

    def test_run_until_past_raises(self, env):
        env.process(_ticker(env, 1.0))
        env.run(until=5)
        with pytest.raises(ValueError):
            env.run(until=2)

    def test_run_until_now_returns_immediately(self, env):
        # simpy semantics: reaching a target already attained is a no-op,
        # not an error (regression: this used to raise ValueError).
        env.process(_ticker(env, 1.0))
        assert env.run(until=0) is None
        assert env.now == 0
        env.run(until=5)
        assert env.run(until=5) is None
        assert env.now == 5

    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(4)
            return "result"

        p = env.process(proc(env))
        assert env.run(until=p) == "result"
        assert env.now == 4

    def test_run_until_event_never_triggered(self, env):
        dangling = env.event()
        env.process(_ticker(env, 1.0, stop_after=3))
        with pytest.raises(SimulationError):
            env.run(until=dangling)

    def test_run_until_already_processed_event(self, env):
        t = env.timeout(1, value="x")
        env.run()
        assert env.run(until=t) == "x"

    def test_run_to_exhaustion(self, env):
        env.process(_ticker(env, 2.0, stop_after=5))
        env.run()
        assert env.now == 10.0

    def test_peek(self, env):
        assert env.peek() == float("inf")
        env.timeout(3)
        assert env.peek() == 3

    def test_step_empty_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_negative_schedule_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.schedule(env.event(), delay=-1)

    def test_repr(self, env):
        assert "t=0" in repr(env)


class TestDeterminism:
    def test_same_time_events_fifo(self, env):
        order = []

        def proc(env, tag):
            yield env.timeout(1)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(env, tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_trace_is_reproducible(self):
        def workload(env, log):
            def worker(env, i):
                yield env.timeout(i % 3)
                log.append((env.now, i))

            for i in range(20):
                env.process(worker(env, i))

        log1, log2 = [], []
        for log in (log1, log2):
            env = Environment()
            workload(env, log)
            env.run()
        assert log1 == log2

    def test_active_process_tracking(self, env):
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(1)

        p = env.process(proc(env))
        assert env.active_process is None
        env.run()
        assert seen == [p]
        assert env.active_process is None


def _ticker(env, period, stop_after=None):
    count = 0
    while stop_after is None or count < stop_after:
        yield env.timeout(period)
        count += 1
