"""Tests for daemon crash–recovery: WAL replay, supervision, re-adoption."""

import pytest

from repro.cluster import ClusterConfig, ComputeNode, run_configuration
from repro.condor import (
    BACKOFF,
    COMPLETED,
    FAILED,
    IDLE,
    CondorPool,
    RandomPlacement,
    RetryPolicy,
)
from repro.experiments.common import make_workload
from repro.faults import FaultInjector, FaultProfile, FaultSchedule
from repro.mpss import JobRunResult
from repro.net.profile import NetProfile
from repro.obs import audit
from repro.sim import Environment
from repro.workloads import HostPhase, JobProfile, OffloadPhase

import random


def make_profile(job_id, memory=1000.0, threads=60, work=5.0, host=1.0):
    return JobProfile(
        job_id=job_id,
        app="t",
        phases=(HostPhase(host), OffloadPhase(work=work, threads=threads,
                                              memory_mb=memory)),
        declared_memory_mb=memory,
        declared_threads=threads,
    )


def make_pool(env, nodes=2, recovery=True, net=NetProfile(), **kwargs):
    executors = [
        ComputeNode(env, f"node{i}", mode="cosmic") for i in range(nodes)
    ]
    pool = CondorPool(
        env,
        executors,
        RandomPlacement(random.Random(7)),
        net=net,
        recovery=recovery,
        **kwargs,
    )
    return pool, executors


def _result(job_id, status, attempt=0):
    return JobRunResult(
        job_id=job_id, start=0.0, end=1.0, status=status,
        offloads_run=0, attempt=attempt,
    )


def _queue_snapshot(schedd):
    return [
        (r.job_id, r.status, r.attempts, r.matched_node, r.claim_token,
         r.requeue_at, str(r.ad.get_expr("Requirements")))
        for r in schedd.all_records()
    ]


class TestJobQueueLog:
    def test_recovery_requires_fabric(self):
        env = Environment()
        executors = [ComputeNode(env, "n0", mode="cosmic")]
        with pytest.raises(ValueError, match="fabric"):
            CondorPool(
                env, executors, RandomPlacement(random.Random(7)),
                recovery=True,
            )

    def test_submits_are_journaled(self):
        env = Environment()
        pool, _ = make_pool(env)
        for i in range(5):
            pool.schedd.submit(make_profile(f"j{i}"))
        assert pool.schedd.wal is not None
        kinds = [rec.kind for rec in pool.schedd.wal.records]
        assert kinds.count("submit") == 5

    def test_replay_reconstructs_queue_exactly(self):
        env = Environment()
        pool, _ = make_pool(env)
        schedd = pool.schedd
        for i in range(6):
            schedd.submit(make_profile(f"j{i}"))
        schedd.qedit("j0", "Requirements", "false")
        schedd.mark_matched("j1", token=101)
        schedd.mark_running("j2", "node0", 0)
        schedd.mark_running("j3", "node0", 0)
        schedd.mark_completed("j3", _result("j3", "completed"))
        schedd.mark_running("j4", "node1", 0)
        schedd.mark_failed("j4", _result("j4", "device-failed"))
        before = _queue_snapshot(schedd)
        replayed = schedd.wal.replay(schedd)
        assert replayed == len(schedd.wal.records)
        assert _queue_snapshot(schedd) == before
        # Replayed records are fresh objects, not the old ones.
        assert schedd.get("j0") is not None

    def test_checkpoint_compacts_and_still_replays(self):
        env = Environment()
        pool, _ = make_pool(env)
        schedd = pool.schedd
        for i in range(4):
            schedd.submit(make_profile(f"j{i}"))
        schedd.mark_running("j0", "node0", 0)
        schedd.mark_completed("j0", _result("j0", "completed"))
        before = _queue_snapshot(schedd)
        schedd.wal.checkpoint()
        # One header + one snapshot per job, nothing else.
        assert len(schedd.wal.records) == 1 + 4
        schedd.wal.replay(schedd)
        assert _queue_snapshot(schedd) == before

    def test_journal_auto_compacts(self):
        env = Environment()
        pool, _ = make_pool(env)
        schedd = pool.schedd
        schedd.submit(make_profile("j0"))
        # Churn one job's attribute far past the compaction threshold;
        # the journal must stay bounded by the live queue, not history.
        for i in range(500):
            schedd.qedit("j0", "Rank", str(i))
        assert len(schedd.wal.records) < 200
        assert schedd.wal.compactions > 0

    def test_terminal_outcomes_survive_replay(self):
        env = Environment()
        pool, _ = make_pool(env, retry_policy=RetryPolicy(max_retries=0))
        schedd = pool.schedd
        schedd.submit(make_profile("gone"))
        schedd.submit(make_profile("killed"))
        schedd.mark_running("gone", "node0", 0)
        schedd.mark_failed("gone", _result("gone", "device-failed"))
        schedd.mark_running("killed", "node0", 0)
        schedd.mark_completed("killed", _result("killed", "memory-limit"))
        schedd.wal.replay(schedd)
        assert schedd.get("gone").status == FAILED
        assert schedd.get("killed").status == COMPLETED
        assert schedd.get("killed").result.status == "memory-limit"
        # Neither terminal job re-enters the pending queue.
        assert schedd.pending() == []


class TestDaemonSupervisor:
    def _run_with_crashes(self, configuration, crashes, jobs=30, **profile):
        job_set = make_workload(("table1", jobs, 42))
        faults = FaultProfile(crashes=crashes, **profile)
        return run_configuration(
            configuration, job_set, ClusterConfig(),
            faults=faults, fault_seed=7, net=NetProfile(), net_seed=3,
        )

    @pytest.mark.parametrize("configuration", ["MC", "MCC", "MCCK"])
    def test_schedd_crash_recovers_and_drains(self, configuration):
        auditor = audit.activate()
        auditor.enter_cell(f"crash-{configuration}")
        try:
            result = self._run_with_crashes(
                configuration, ((40.0, "schedd"),)
            )
            auditor.finish_cell()
        finally:
            audit.deactivate()
        assert result.completed_jobs == 30
        assert result.daemon_crashes == 1
        assert result.schedd_recoveries == 1
        assert result.wal_replayed > 0
        assert auditor.violations == 0

    @pytest.mark.parametrize("daemon", ["negotiator", "collector"])
    def test_stateless_daemon_crash_drains(self, daemon):
        result = self._run_with_crashes("MCC", ((40.0, daemon),))
        assert result.completed_jobs == 30
        assert result.daemon_crashes == 1
        # No schedd crash: the WAL is written but never replayed.
        assert result.schedd_recoveries == 0
        assert result.wal_replayed == 0

    def test_running_jobs_readopted_across_schedd_crash(self):
        result = self._run_with_crashes("MCC", ((40.0, "schedd"),))
        assert result.jobs_readopted > 0

    def test_crashed_daemon_always_restarts(self):
        env = Environment()
        pool, _ = make_pool(env)
        pool.schedd.submit(make_profile("j0"))
        pool.supervisor.crash_daemon("schedd", downtime_s=5.0)
        assert pool.schedd.down
        assert not pool.supervisor.is_up("schedd")
        env.run(until=env.timeout(10.0))
        # The restart is scheduled before the crash takes effect, so no
        # profile can leave the pool permanently headless.
        assert not pool.schedd.down
        assert pool.supervisor.is_up("schedd")
        assert pool.supervisor.recoveries == 1

    def test_double_crash_rejected_while_down(self):
        env = Environment()
        pool, _ = make_pool(env)
        pool.supervisor.crash_daemon("schedd", downtime_s=20.0)
        with pytest.raises(ValueError, match="already down"):
            pool.supervisor.crash_daemon("schedd", downtime_s=20.0)

    def test_injector_skips_crash_while_daemon_down(self):
        env = Environment()
        pool, executors = make_pool(env)
        for i in range(8):
            pool.schedd.submit(make_profile(f"j{i}", work=60.0))
        profile = FaultProfile(
            crashes=((30.0, "schedd"), (35.0, "schedd")),
            daemon_downtime_s=20.0,
        )
        schedule = FaultSchedule.generate(profile, 5)
        injector = FaultInjector(env, schedule, pool, executors)
        injector.start()
        pool.run_to_completion()
        outcomes = [rec.outcome for rec in injector.log]
        assert outcomes == ["applied", "skipped-daemon-down"]
        assert pool.supervisor.crashes == 1

    def test_injector_without_supervisor_fails_fast(self):
        env = Environment()
        pool, executors = make_pool(env, recovery=False)
        pool.schedd.submit(make_profile("j0"))
        profile = FaultProfile(crashes=((30.0, "schedd"),))
        schedule = FaultSchedule.generate(profile, 5)
        injector = FaultInjector(env, schedule, pool, executors)
        with pytest.raises(ValueError, match="DaemonSupervisor"):
            injector.start()


class TestReplayDeterminism:
    def test_fixed_seed_crash_runs_byte_identical(self):
        job_set = make_workload(("table1", 30, 42))
        faults = FaultProfile(
            daemon_crash_rate=8.0, crashes=((40.0, "schedd"),)
        )

        def once():
            result = run_configuration(
                "MCCK", job_set, ClusterConfig(),
                faults=faults, fault_seed=7, net=NetProfile(), net_seed=3,
            )
            return (
                result.makespan,
                result.daemon_crashes,
                result.schedd_recoveries,
                result.wal_records,
                result.wal_replayed,
                result.jobs_readopted,
                result.requeues,
                tuple((r.job_id, r.status) for r in result.job_results),
            )

        assert once() == once()
