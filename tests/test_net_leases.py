"""Claim-lease protocol tests: expiry, renewal races, no lost/double jobs.

The deterministic tests script specific partition shapes against the
lease timers; the hypothesis suite (the satellite property test) sweeps
loss / duplication / delay / partition geometry and asserts the two
properties the protocol exists for — every job reaches exactly one
terminal outcome, and the invariant auditor stays clean (no double-run,
no ledger leak) — under arbitrary network weather.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.node import ComputeNode
from repro.condor import COMPLETED, FAILED, CondorPool, RandomPlacement
from repro.net import NetProfile, PartitionSpec, derive_net_seed
from repro.obs import audit
from repro.obs.audit import Auditor
from repro.sim import Environment
from repro.workloads import generate_table1_jobs


def _run_pool(jobs, net, net_seed, nodes=2, limit=100_000.0):
    """One fabric-mode MCC-style pool run; returns the drained pool."""
    env = Environment()
    executors = [
        ComputeNode(env, name=f"node{i}", num_devices=1, mode="cosmic")
        for i in range(nodes)
    ]
    pool = CondorPool(
        env,
        executors,
        RandomPlacement(random.Random(1234)),
        slots_per_node=16,
        cycle_interval=5.0,
        net=net,
        net_seed=net_seed,
    )
    pool.submit(jobs)
    pool.run_to_completion(limit=limit)
    return pool


def _assert_exactly_one_terminal(pool, job_count):
    records = pool.schedd.all_records()
    assert len(records) == job_count
    for record in records:
        assert record.status in (COMPLETED, FAILED), record.status
        assert record.result is not None


@pytest.fixture(autouse=True)
def _no_leaked_active():
    yield
    audit.deactivate()


class TestLeaseExpiry:
    def test_short_partition_does_not_expire_leases(self):
        # The lease comfortably covers the window plus the worst-case
        # retransmit gap of the head-of-line message (links are FIFO, so
        # one dropped renewal stalls everything behind it until its
        # retransmit lands): no kills.
        net = NetProfile(
            lease_duration_s=60.0,
            renew_interval_s=5.0,
            match_timeout_s=70.0,
            partitions=(PartitionSpec(20.0, 35.0, "startd:*"),),
        )
        jobs = generate_table1_jobs(10, seed=3)
        pool = _run_pool(jobs, net, derive_net_seed(3))
        assert pool.lease_expiries() == 0
        assert pool.claims.claims_lost == 0
        _assert_exactly_one_terminal(pool, 10)

    def test_long_partition_expires_leases_and_requeues(self):
        # Startds unreachable for well past the lease: running jobs are
        # killed on the startd, declared lost on the schedd, and requeued
        # through BACKOFF — none lost, none double-run.
        auditor = audit.activate()
        auditor.enter_cell("long-partition")
        net = NetProfile(
            lease_duration_s=15.0,
            renew_interval_s=5.0,
            match_timeout_s=20.0,
            partitions=(PartitionSpec(10.0, 120.0, "startd:*"),),
        )
        jobs = generate_table1_jobs(10, seed=3)
        pool = _run_pool(jobs, net, derive_net_seed(3))
        auditor.finish_cell()
        assert pool.lease_expiries() > 0
        assert pool.claims.claims_lost > 0
        assert pool.schedd.requeues > 0
        assert auditor.violations == 0
        _assert_exactly_one_terminal(pool, 10)
        assert all(
            r.status == COMPLETED for r in pool.schedd.all_records()
        )

    def test_duplicated_renewals_are_harmless(self):
        # dup=0.9: nearly every message (renewals included) is sent
        # twice; the receive window dedups and lease extension is
        # max()-idempotent, so nothing expires and the ledgers reconcile.
        auditor = audit.activate()
        auditor.enter_cell("dup-renewals")
        net = NetProfile(dup=0.9)
        jobs = generate_table1_jobs(10, seed=11)
        pool = _run_pool(jobs, net, derive_net_seed(11))
        auditor.finish_cell()
        assert pool.fabric.stats.duplicates_dropped > 0
        assert pool.lease_expiries() == 0
        assert auditor.violations == 0
        _assert_exactly_one_terminal(pool, 10)

    def test_renewals_lost_repeatedly_then_delivered(self):
        # Heavy loss: renewals routinely need several retransmit rounds.
        # As long as one copy lands within the lease window the claim
        # survives; when none does, expiry + requeue recovers the job.
        auditor = audit.activate()
        auditor.enter_cell("lossy-renewals")
        net = NetProfile(loss=0.5, rto_initial_s=0.5)
        jobs = generate_table1_jobs(10, seed=7)
        pool = _run_pool(jobs, net, derive_net_seed(7))
        auditor.finish_cell()
        assert pool.fabric.stats.retransmits > 0
        assert auditor.violations == 0
        _assert_exactly_one_terminal(pool, 10)

    def test_delay_near_lease_boundary(self):
        # One-way delay comparable to the renewal interval: renewals
        # regularly arrive just before/after the old expiry instant.
        # Expiry is keyed to the renewal's *send* time, so the ordering
        # stays safe either way.
        auditor = audit.activate()
        auditor.enter_cell("boundary-delay")
        net = NetProfile(
            delay_base_s=4.0,
            delay_jitter_s=4.0,
            lease_duration_s=12.0,
            renew_interval_s=4.0,
            match_timeout_s=30.0,
        )
        jobs = generate_table1_jobs(10, seed=9)
        pool = _run_pool(jobs, net, derive_net_seed(9))
        auditor.finish_cell()
        assert auditor.violations == 0
        _assert_exactly_one_terminal(pool, 10)


class TestFabricModeEquivalence:
    def test_clean_fabric_completes_all_jobs(self):
        jobs = generate_table1_jobs(12, seed=5)
        pool = _run_pool(jobs, NetProfile(), derive_net_seed(5))
        _assert_exactly_one_terminal(pool, 12)
        assert all(r.status == COMPLETED for r in pool.schedd.all_records())
        assert pool.fabric.stats.retransmits == 0

    def test_same_seed_replays_identically(self):
        jobs = generate_table1_jobs(12, seed=5)
        net = NetProfile.chaos(0.15)
        first = _run_pool(jobs, net, derive_net_seed(5))
        second = _run_pool(jobs, net, derive_net_seed(5))
        assert first.schedd.makespan() == second.schedd.makespan()
        assert first.fabric.stats.as_dict() == second.fabric.stats.as_dict()
        ends_a = sorted(r.result.end for r in first.schedd.all_records())
        ends_b = sorted(r.result.end for r in second.schedd.all_records())
        assert ends_a == ends_b


@st.composite
def net_profiles(draw):
    """Arbitrary-but-valid network weather, biased toward the races."""
    lease = draw(st.floats(min_value=6.0, max_value=30.0))
    renew = draw(st.floats(min_value=1.0, max_value=lease * 0.6))
    profile = NetProfile(
        loss=draw(st.floats(min_value=0.0, max_value=0.4)),
        dup=draw(st.floats(min_value=0.0, max_value=0.5)),
        delay_base_s=draw(st.floats(min_value=0.001, max_value=3.0)),
        delay_jitter_s=draw(st.floats(min_value=0.0, max_value=3.0)),
        rto_initial_s=0.5,
        lease_duration_s=lease,
        renew_interval_s=renew,
        match_timeout_s=lease + draw(st.floats(min_value=1.0, max_value=30.0)),
        partitions=draw(
            st.one_of(
                st.just(()),
                st.tuples(
                    st.builds(
                        PartitionSpec,
                        start_s=st.floats(min_value=0.0, max_value=60.0),
                        end_s=st.floats(min_value=61.0, max_value=180.0),
                        pattern=st.sampled_from(
                            ["*", "startd:*", "schedd", "startd:node0"]
                        ),
                    )
                ),
            )
        ),
    )
    return profile


class TestLeaseRaceProperties:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(profile=net_profiles(), seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_no_job_lost_or_double_run_under_any_weather(self, profile, seed):
        auditor = Auditor()
        audit.ACTIVE = auditor
        try:
            auditor.enter_cell("hypothesis")
            jobs = generate_table1_jobs(6, seed=13)
            pool = _run_pool(jobs, profile, seed, limit=200_000.0)
            auditor.finish_cell()
        finally:
            audit.ACTIVE = None
        assert auditor.violations == 0
        _assert_exactly_one_terminal(pool, 6)
        # A job may terminally fail only by exhausting its retries, never
        # by vanishing: every failure carries a result with a status.
        for record in pool.schedd.all_records():
            if record.status == FAILED:
                assert record.attempts > pool.schedd.retry_policy.max_retries
