"""E1 — regenerate the §III motivation measurement (core utilization)."""

from repro.experiments import motivation
from repro.experiments.common import scaled


def test_bench_motivation(benchmark, scale, record_result):
    result = benchmark.pedantic(
        motivation.run,
        kwargs=dict(
            real_jobs=scaled(1000, scale),
            synthetic_jobs=scaled(400, scale),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("motivation", motivation.render(result))

    # Shape: exclusive allocation leaves the manycore mostly idle —
    # utilization sits in a band around half capacity, never near full.
    assert 0.25 <= result.real_mix_utilization <= 0.65
    lo, hi = result.synthetic_band
    assert 0.15 <= lo <= hi <= 0.70
    # High-skew jobs use more cores than low-skew jobs under MC.
    assert (
        result.synthetic_utilization["high-skew"]
        > result.synthetic_utilization["low-skew"]
    )
