"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index), asserts its qualitative shape, and writes
the rendered rows to ``benchmarks/results/``. Job counts are scaled down
by default so the full harness runs in minutes; set ``REPRO_FULL=1`` for
paper-scale runs (the numbers recorded in EXPERIMENTS.md).
"""

import pytest

from repro.experiments.common import bench_scale, save_result


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture()
def record_result(capsys):
    """Save a rendered artifact and echo it to the captured output."""

    def _record(name: str, text: str):
        path = save_result(name, text)
        print(f"\n{text}\n[saved to {path}]")

    return _record
