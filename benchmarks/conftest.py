"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index), asserts its qualitative shape, and writes
the rendered rows to ``benchmarks/results/``. Job counts are scaled down
by default so the full harness runs in minutes; set ``REPRO_FULL=1`` for
paper-scale runs (the numbers recorded in EXPERIMENTS.md).

Performance benches additionally emit machine-readable
``BENCH_<name>.json`` files through :func:`write_bench_json`, all in one
record schema so CI's bench-aggregate step can merge them into a single
``BENCH_summary.json`` without per-bench parsing:

.. code-block:: json

    {
      "bench": "matchmaking",
      "baseline": "pre-PR matchmaker replica (...)",
      "records": [
        {"name": "MCCK@Q=10000", "metric": "cycle_ms",
         "value": 1.94, "unit": "ms", "baseline": 64.3}
      ]
    }

Each record is one measured scalar: ``name`` identifies the cell,
``metric`` the quantity, ``value``/``unit`` the measurement, and
``baseline`` the pre-optimization value in the same unit (``null`` when
there is nothing to compare against).
"""

import json

import pytest

from repro.experiments.common import bench_scale, results_dir, save_result

_RECORD_KEYS = {"name", "metric", "value", "unit", "baseline"}


def write_bench_json(
    bench: str, records: list, baseline_note: str = ""
) -> None:
    """Write ``BENCH_<bench>.json`` in the shared record schema."""
    for record in records:
        if set(record) != _RECORD_KEYS:
            raise ValueError(
                f"bench record keys must be {sorted(_RECORD_KEYS)}, "
                f"got {sorted(record)}"
            )
    payload = {
        "bench": bench,
        "baseline": baseline_note or None,
        "records": records,
    }
    directory = results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{bench}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")


def bench_record(name, metric, value, unit, baseline=None) -> dict:
    """One schema-conforming bench record (see module docstring)."""
    return {
        "name": name,
        "metric": metric,
        "value": value,
        "unit": unit,
        "baseline": baseline,
    }


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture()
def record_result(capsys):
    """Save a rendered artifact and echo it to the captured output."""

    def _record(name: str, text: str):
        path = save_result(name, text)
        print(f"\n{text}\n[saved to {path}]")

    return _record


@pytest.fixture()
def record_bench_json():
    """Write a bench's machine-readable records (shared schema)."""
    return write_bench_json
