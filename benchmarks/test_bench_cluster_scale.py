"""Cluster-scale bench: simulation cost vs pool size (X7's floor).

The tentpole claim of the cluster-scale fast path is that per-cycle
simulation cost follows the *active* node count, not the pool size:
delta-maintained live sets mean an idle negotiation cycle never walks
the machine list, lazy node materialization means idle nodes never build
device stacks, and the bucketed pending index means repacks never touch
jobs that cannot fit. This bench measures both halves:

* **idle cycles** — a pool with an empty queue, timing
  ``negotiate_once`` directly (no event loop, no construction cost in
  the window). The acceptance floor: the per-cycle cost at 1024 idle
  nodes must be <= 3x the 64-node cost. Before the fast path this ratio
  was ~16x (every cycle walked every registered startd).
* **active sweep** — the X7 experiment (fixed Table-I workload on
  growing pools), reporting events/sec, wall-clock per negotiation
  cycle, and peak RSS.

Rendered rows land in ``benchmarks/results/cluster_scale.txt`` plus
machine-readable ``BENCH_scale.json`` in the shared record schema (see
``benchmarks/conftest.py``).
"""

from __future__ import annotations

import gc
import os
import random
import time

from conftest import bench_record

from repro.cluster import ComputeNode
from repro.condor import CondorPool, PinnedPlacement
from repro.core import DevicePacker, KnapsackClusterScheduler
from repro.experiments import ext_scale
from repro.sim import Environment

NODE_COUNTS = (8, 64, 256, 1024)
SLOTS_PER_NODE = 16
IDLE_CYCLES = 200
SAMPLES = 3

#: Acceptance floor: an idle cycle on a 1024-node pool must cost no more
#: than 3x the 64-node cycle (it is O(active), and both are idle).
MAX_IDLE_RATIO = 3.0
#: Absolute timing noise allowance for the ratio check (best-of batches
#: of sub-10us cycles still jitter by a few microseconds on shared CI).
IDLE_SLACK_US = 5.0


def _active_jobs() -> int:
    if os.environ.get("REPRO_FULL"):
        return 400
    if os.environ.get("REPRO_SCALE"):
        return 32
    return 64


def _idle_pool(nodes: int) -> CondorPool:
    env = Environment()
    machines = [
        ComputeNode(env, f"n{i}", mode="cosmic") for i in range(nodes)
    ]
    pool = CondorPool(
        env,
        machines,
        PinnedPlacement(),
        slots_per_node=SLOTS_PER_NODE,
        cycle_interval=5.0,
        dispatch_latency=0.5,
    )
    KnapsackClusterScheduler(
        pool, packer=DevicePacker(thread_capacity=240)
    ).attach()
    return pool


def _idle_cycle_us(nodes: int) -> float:
    """Best-of-samples cost of one empty negotiation cycle, in us."""
    best = float("inf")
    for _ in range(SAMPLES):
        pool = _idle_pool(nodes)
        negotiator = pool.negotiator
        negotiator.negotiate_once()  # warm caches
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            for _ in range(IDLE_CYCLES):
                negotiator.negotiate_once()
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        best = min(best, elapsed / IDLE_CYCLES * 1e6)
    return best


def _render(idle_us: dict, result: ext_scale.ScaleResult) -> str:
    lines = [
        f"Cluster-scale bench (idle cycle: best of {SAMPLES} x "
        f"{IDLE_CYCLES}-cycle batches)",
        "",
        f"{'nodes':>6} {'idle cycle(us)':>15}",
    ]
    for nodes in NODE_COUNTS:
        lines.append(f"{nodes:>6} {idle_us[nodes]:>15.1f}")
    lines += [
        "",
        f"Active sweep ({result.job_count} Table-I jobs, "
        f"{result.configuration}):",
        f"{'nodes':>6} {'wall s':>8} {'events/s':>10} {'ms/cycle':>9} "
        f"{'peak RSS MB':>12}",
    ]
    for row in result.rows:
        lines.append(
            f"{row['nodes']:>6} {row['wall_s']:>8.2f} "
            f"{row['events_per_s']:>10,.0f} {row['ms_per_cycle']:>9.2f} "
            f"{row['peak_rss_mb']:>12.0f}"
        )
    return "\n".join(lines)


def test_bench_cluster_scale(record_result, record_bench_json):
    random.seed(0)
    idle_us = {nodes: _idle_cycle_us(nodes) for nodes in NODE_COUNTS}
    result = ext_scale.run(jobs=_active_jobs(), node_counts=NODE_COUNTS)

    record_result("cluster_scale", _render(idle_us, result))

    records = [
        bench_record(f"idle@{nodes}", "idle_cycle_us", round(us, 2), "us")
        for nodes, us in idle_us.items()
    ]
    for row in result.rows:
        name = f"active@{row['nodes']}"
        records += [
            bench_record(
                name, "events_per_s", round(row["events_per_s"]), "events/s"
            ),
            bench_record(
                name, "ms_per_cycle", round(row["ms_per_cycle"], 3), "ms"
            ),
            bench_record(
                name, "peak_rss_mb", round(row["peak_rss_mb"], 1), "MB"
            ),
        ]
    record_bench_json(
        "scale",
        records,
        baseline_note=(
            "idle_cycle_us floor: 1024-node idle cycle <= "
            f"{MAX_IDLE_RATIO}x the 64-node cycle"
        ),
    )

    # Deterministic halves agree regardless of pool size: every pool
    # drains the whole workload.
    for row in result.rows:
        assert row["completed"] == result.job_count

    ratio = idle_us[1024] / max(idle_us[64], 1e-3)
    assert idle_us[1024] <= MAX_IDLE_RATIO * idle_us[64] + IDLE_SLACK_US, (
        f"idle cycle at 1024 nodes ({idle_us[1024]:.1f}us) is "
        f"{ratio:.1f}x the 64-node cycle ({idle_us[64]:.1f}us); "
        f"floor is {MAX_IDLE_RATIO}x — the O(active) fast path regressed"
    )
