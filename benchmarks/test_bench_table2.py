"""E2/E3 — regenerate Table II (makespan + footprint, real workload mix)."""

from repro.experiments import table2
from repro.experiments.common import scaled


def test_bench_table2(benchmark, scale, record_result):
    result = benchmark.pedantic(
        table2.run,
        kwargs=dict(jobs=scaled(1000, scale)),
        rounds=1,
        iterations=1,
    )
    record_result("table2", table2.render(result))

    mc = result.makespans["MC"]
    mcc = result.makespans["MCC"]
    mcck = result.makespans["MCCK"]

    # Shape: sharing wins big over exclusive allocation (paper: -27% and
    # -39%); both sharing configurations land in the same regime.
    assert mcc < 0.85 * mc
    assert mcck < 0.85 * mc
    assert abs(mcck - mcc) < 0.25 * mc

    # Footprint: both sharing stacks match the 8-node MC makespan with a
    # strictly smaller cluster (paper: 6 and 5 nodes).
    assert result.footprints["MCC"].found
    assert result.footprints["MCCK"].found
    assert result.footprints["MCC"].cluster_size < 8
    assert result.footprints["MCCK"].cluster_size < 8
    assert (
        result.footprints["MCCK"].cluster_size
        <= result.footprints["MCC"].cluster_size + 1
    )
