"""A1/A2/A3 — ablation benches for the design choices DESIGN.md calls out."""

from repro.experiments import (
    ablation_cycle,
    ablation_knapsack,
    ablation_placement,
    ablation_value,
)
from repro.experiments.common import scaled


def test_bench_ablation_value(benchmark, scale, record_result):
    result = benchmark.pedantic(
        ablation_value.run,
        kwargs=dict(jobs=scaled(400, scale)),
        rounds=1,
        iterations=1,
    )
    record_result("ablation_value", ablation_value.render(result))

    # Every value function produces a working schedule; the spread stays
    # bounded (the value function is a secondary effect next to the
    # memory constraint).
    for workload in ("table1", "normal"):
        spans = [by_wl[workload] for by_wl in result.makespans.values()]
        assert min(spans) > 0
        assert max(spans) < 1.5 * min(spans)


def test_bench_ablation_knapsack(benchmark, scale, record_result):
    result = benchmark.pedantic(
        ablation_knapsack.run,
        kwargs=dict(jobs=scaled(400, scale)),
        rounds=1,
        iterations=1,
    )
    record_result("ablation_knapsack", ablation_knapsack.render(result))

    for workload in ("table1", "normal"):
        spans = [by_wl[workload] for by_wl in result.makespans.values()]
        assert max(spans) < 1.6 * min(spans)


def test_bench_ablation_placement(benchmark, scale, record_result):
    result = benchmark.pedantic(
        ablation_placement.run,
        kwargs=dict(jobs=scaled(400, scale)),
        rounds=1,
        iterations=1,
    )
    record_result("ablation_placement", ablation_placement.render(result))

    # Every sharing policy beats the exclusive baseline at this pressure,
    # and the whole sharing spectrum sits in one regime.
    sharing = [v for k, v in result.makespans.items() if k != "MC"]
    assert all(v < result.makespans["MC"] for v in sharing)
    assert max(sharing) < 1.3 * min(sharing)


def test_bench_ablation_cycle(benchmark, scale, record_result):
    result = benchmark.pedantic(
        ablation_cycle.run,
        kwargs=dict(jobs=scaled(400, scale)),
        rounds=1,
        iterations=1,
    )
    record_result("ablation_cycle", ablation_cycle.render(result))

    # Longer negotiation cycles can only hurt (monotone-ish): the longest
    # interval is never better than the shortest by more than noise, and
    # is measurably worse for MCCK, which pays the latency on every
    # knapsack decision (the paper's SV-B explanation).
    for distribution, series in result.makespans.items():
        assert series["MCC"][-1] >= 0.95 * series["MCC"][0], distribution
        assert series["MCCK"][-1] > series["MCCK"][0], distribution
        # condor_reschedule flattens the sensitivity: at the longest
        # interval the rescheduling variant beats plain MCCK.
        assert series["MCCK+resched"][-1] < series["MCCK"][-1], distribution
