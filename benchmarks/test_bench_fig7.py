"""E4 — regenerate Fig. 7 (synthetic job-set resource distributions)."""

import numpy as np

from repro.experiments import fig7


def test_bench_fig7(benchmark, record_result):
    # Input generation is cheap; always run at full scale (400 jobs).
    result = benchmark.pedantic(fig7.run, rounds=1, iterations=1)
    record_result("fig7", fig7.render(result))

    uniform = result.histograms["uniform"]
    normal = result.histograms["normal"]
    low = result.histograms["low-skew"]
    high = result.histograms["high-skew"]

    # Uniform: no bin dominates.
    assert uniform.max() < 2.5 * max(1, uniform.min())
    # Normal: centre-heavy.
    assert normal[4] + normal[5] > normal[0] + normal[-1]
    # Skews shift the mass: low-skew mean level < normal < high-skew.
    bins = np.arange(len(normal)) + 0.5

    def mean_level(counts):
        return float((bins * counts).sum() / counts.sum())

    assert mean_level(low) < mean_level(normal) < mean_level(high)
    # The skewed means sit roughly one sigma from the normal mean.
    assert result.mean_declared_mb["low-skew"] < result.mean_declared_mb["normal"]
    assert result.mean_declared_mb["high-skew"] > result.mean_declared_mb["normal"]
