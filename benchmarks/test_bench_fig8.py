"""E5 — regenerate Fig. 8 (makespan vs job resource distribution)."""

from repro.experiments import fig8
from repro.experiments.common import scaled


def test_bench_fig8(benchmark, scale, record_result):
    result = benchmark.pedantic(
        fig8.run,
        kwargs=dict(jobs=scaled(400, scale)),
        rounds=1,
        iterations=1,
    )
    record_result("fig8", fig8.render(result))

    # Shape: sharing always beats the exclusive baseline.
    for distribution, by_config in result.makespans.items():
        assert by_config["MCC"] < by_config["MC"], distribution
        assert by_config["MCCK"] < by_config["MC"], distribution

    # Shape: favourable distributions gain much more than high-skew.
    assert result.reduction("low-skew", "MCCK") > result.reduction(
        "high-skew", "MCCK"
    )
    assert result.reduction("normal", "MCCK") > result.reduction(
        "high-skew", "MCCK"
    )
    # High-skew: MCCK may degrade slightly vs MCC (negotiation-cycle
    # latency, paper SV-B) but stays in the same regime.
    high = result.makespans["high-skew"]
    assert high["MCCK"] < 1.2 * high["MCC"]
