"""Merge per-bench ``BENCH_*.json`` files into one summary document.

Every performance bench writes ``benchmarks/results/BENCH_<name>.json``
in the shared record schema (see ``write_bench_json`` in
``benchmarks/conftest.py``). CI's bench-aggregate step runs this script
to fold whichever of those files the job produced into a single
``BENCH_summary.json`` at the repository root, so trajectory tracking
across PRs reads one artifact with one schema instead of parsing each
bench's file.

Usage::

    python benchmarks/aggregate.py [output.json]
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def aggregate(output: pathlib.Path) -> dict:
    benches = {}
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        if path.name == "BENCH_summary.json":
            continue
        doc = json.loads(path.read_text())
        benches[doc["bench"]] = doc
    if not benches:
        raise SystemExit(f"no BENCH_*.json files under {RESULTS_DIR}")
    summary = {
        "schema": "bench-records/v1",
        "benches": benches,
        "record_count": sum(len(d["records"]) for d in benches.values()),
    }
    output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return summary


def main(argv: list[str]) -> None:
    output = pathlib.Path(argv[1]) if len(argv) > 1 else pathlib.Path(
        "BENCH_summary.json"
    )
    summary = aggregate(output)
    names = ", ".join(sorted(summary["benches"]))
    print(
        f"merged {len(summary['benches'])} bench file(s) "
        f"({summary['record_count']} records) into {output}: {names}"
    )


if __name__ == "__main__":
    main(sys.argv)
