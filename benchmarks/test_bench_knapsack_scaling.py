"""Performance microbenchmarks: the knapsack DPs themselves.

§IV-C argues the DP is effectively linear in the number of jobs because
memory quantizes to w = 8GB/50MB = 160 levels. These benches measure the
solver directly (pytest-benchmark's bread and butter) and sanity-check
the scaling claim.
"""

import numpy as np
import pytest

from repro.core import (
    DevicePacker,
    Item,
    knapsack_1d,
    knapsack_cardinality,
    knapsack_thread_capped,
)


def _items(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Item(
            weight=float(rng.integers(6, 69) * 50),      # 300..3400 MB
            value=float(1.0 - (t := rng.integers(15, 61) * 4) ** 2 / 240**2 + 0.05),
            threads=int(t),
        )
        for _ in range(n)
    ]


@pytest.mark.parametrize("n", [100, 1000])
def test_bench_knapsack_1d(benchmark, n):
    items = _items(n)
    result = benchmark(knapsack_1d, items, 8192.0)
    assert result.total_weight <= 8192


def test_bench_knapsack_cardinality(benchmark):
    items = _items(1000)
    result = benchmark(knapsack_cardinality, items, 8192.0, 16)
    assert result.count <= 16


def test_bench_knapsack_thread_capped(benchmark):
    items = _items(1000)
    result = benchmark(knapsack_thread_capped, items, 8192.0, 240)
    assert result.total_threads <= 240


def test_bench_device_packer_full_queue(benchmark):
    """The paper's headline case: pack one card from 1000 pending jobs."""
    from repro.workloads import generate_table1_jobs

    jobs = generate_table1_jobs(1000, seed=3)
    packer = DevicePacker(thread_capacity=240)
    packing = benchmark(packer.pack, jobs, 8192.0, 16)
    assert packing.concurrency >= 1


def test_knapsack_scaling_is_nearly_linear():
    """10x the jobs should cost well under 100x the time (O(n w))."""
    import time

    small, large = _items(200, seed=1), _items(2000, seed=1)

    def measure(items):
        start = time.perf_counter()
        for _ in range(3):
            knapsack_1d(items, 8192.0)
        return (time.perf_counter() - start) / 3

    t_small = measure(small)
    t_large = measure(large)
    assert t_large < 40 * t_small  # linear would be 10x; allow generous noise
