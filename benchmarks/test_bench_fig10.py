"""E8 — regenerate Fig. 10 (makespan under constant job pressure)."""

from repro.experiments import fig10
from repro.experiments.common import scaled


def test_bench_fig10(benchmark, scale, record_result):
    result = benchmark.pedantic(
        fig10.run,
        kwargs=dict(jobs_per_node=scaled(200, scale)),
        rounds=1,
        iterations=1,
    )
    record_result("fig10", fig10.render(result))

    mc, mcc, mcck = (
        result.makespans["MC"],
        result.makespans["MCC"],
        result.makespans["MCCK"],
    )
    # Constant pressure: makespan roughly flat in cluster size for each
    # configuration (work scales with nodes).
    for series in (mc, mcc, mcck):
        assert max(series) < 1.5 * min(series)
    # Sharing wins at every size; at the largest size the gains remain
    # substantial (paper: MCCK -40% vs MC at 8 nodes).
    for i in range(len(result.sizes)):
        assert mcc[i] < mc[i]
        assert mcck[i] < mc[i]
    assert result.final_reduction("MCCK") > 15.0
