"""Matchmaking hot-path bench: compiled ClassAds + pinned-job O(1) routing.

The negotiator's cycle cost is the cluster-level latency the paper blames
for MCCK's overhead on unfavourable distributions — and the ROADMAP's
million-job north star makes the cycle the scheduler's scaling wall. This
bench times one negotiation cycle at queue depth Q for each paper
configuration (MC / MCC / MCCK) and compares it against a faithful
replica of the pre-PR matchmaker: interpreted ClassAd evaluation, dict
machine ads rebuilt on every deduction, per-record exhaustion checks,
per-cycle queue sorting, and a full scan of every machine per examined
job (no pinned-name index).

Methodology: a 16-node cosmic pool (16 slots each) receives Q pending
jobs; MCCK additionally runs the knapsack scheduler's attach() pass so
the queue holds the steady-state mix the cycle really sees — a few dozen
pinned jobs and thousands parked with ``Requirements = false``. Each
sample builds a fresh pool (cycles dispatch jobs, mutating sim state),
times exactly one cycle, and the cell keeps the best of three. Both
modes run on identical pre-cycle state and must produce identical
(job, node) match lists — the optimization must change *time*, never
*decisions*.

Rendered rows land in ``benchmarks/results/matchmaking.txt`` plus
machine-readable ``BENCH_matchmaking.json`` (shared record schema, see
``benchmarks/conftest.py``, with the baseline numbers embedded) so
future PRs can extend the trajectory. Depths beyond 1k are
skipped under ``REPRO_SCALE`` to keep CI smoke quick; the acceptance
assertion — >= 3x on the 10k MCCK cell — runs whenever that cell is
measured.
"""

from __future__ import annotations

import gc
import operator
import os
import random
import time

import numpy as np

from conftest import bench_record

from repro.cluster import ComputeNode
from repro.condor import (
    ClassAd,
    CondorPool,
    ExclusivePlacement,
    PinnedPlacement,
    RandomPlacement,
    set_compilation,
)
from repro.condor.classad import Literal, symmetric_match
from repro.condor.schedd import IDLE
from repro.core import DevicePacker, KnapsackClusterScheduler
from repro.sim import Environment
from repro.workloads import JobProfile, OffloadPhase

NODES = 16
SLOTS_PER_NODE = 16
SAMPLES = 5
CONFIGURATIONS = ("MC", "MCC", "MCCK")

#: Acceptance floor for the headline cell: one MCCK cycle against a
#: 10k-deep queue must run >= 3x faster than the pre-PR matchmaker.
MIN_MCCK_10K_SPEEDUP = 3.0

_FIFO_KEY = operator.attrgetter("fifo_key")


def _queue_depths() -> list[int]:
    if os.environ.get("REPRO_FULL"):
        return [1_000, 10_000, 50_000]
    if os.environ.get("REPRO_SCALE"):
        # CI smoke: a single small depth.
        return [1_000]
    return [1_000, 10_000, 50_000]


def _jobs(count: int, seed: int = 0) -> list[JobProfile]:
    rng = np.random.default_rng(seed)
    memories = rng.integers(6, 69, size=count) * 50       # 300..3400 MB
    threads = rng.integers(15, 61, size=count) * 4        # 60..240
    works = rng.exponential(3.0, size=count) + 0.5
    return [
        JobProfile(
            job_id=f"q{i}",
            app="bench",
            phases=(
                OffloadPhase(
                    work=float(works[i]),
                    threads=int(threads[i]),
                    memory_mb=float(memories[i]),
                ),
            ),
            declared_memory_mb=float(memories[i]),
            declared_threads=int(threads[i]),
        )
        for i in range(count)
    ]


def _build(configuration: str, queue_depth: int) -> CondorPool:
    """A fresh pool at the pre-cycle measurement point for one config."""
    env = Environment()
    mode = "exclusive" if configuration == "MC" else "cosmic"
    nodes = [ComputeNode(env, f"n{i}", mode=mode) for i in range(NODES)]
    if configuration == "MC":
        policy = ExclusivePlacement()
    elif configuration == "MCC":
        policy = RandomPlacement(random.Random(0), memory_aware=False)
    else:
        policy = PinnedPlacement()
    pool = CondorPool(
        env,
        nodes,
        policy,
        slots_per_node=SLOTS_PER_NODE,
        cycle_interval=5.0,
        dispatch_latency=0.5,
    )
    pool.submit(_jobs(queue_depth))
    if configuration == "MCCK":
        KnapsackClusterScheduler(
            pool, packer=DevicePacker(thread_capacity=240)
        ).attach()
    return pool


# -- pre-PR replica -----------------------------------------------------------

#: Replica of the retired snapshot-keyed machine-ad cache (kept warm
#: across samples, exactly as the old module-level cache was).
_AD_CACHE: dict = {}


def _dict_machine_ad(snapshot) -> ClassAd:
    """The pre-PR ``machine_ad``: a plain dict ad rebuilt per state."""
    key = (
        snapshot.node,
        snapshot.total_slots,
        snapshot.free_slots,
        tuple(
            (
                d.index,
                d.memory_mb,
                d.free_declared_mb,
                d.resident_jobs,
                d.claimed_exclusive,
                d.failed,
            )
            for d in snapshot.devices
        ),
    )
    cached = _AD_CACHE.get(key)
    if cached is not None:
        return cached
    usable = [d for d in snapshot.devices if not d.failed]
    ad = ClassAd(
        {
            "Name": f"slot1@{snapshot.node}",
            "Machine": snapshot.node,
            "TotalSlots": snapshot.total_slots,
            "FreeSlots": snapshot.free_slots,
            "PhiDevices": len(usable),
            "PhiDevicesFree": snapshot.devices_free,
            "PhiMemory": float(max((d.memory_mb for d in usable), default=0.0)),
            "PhiFreeMemory": float(
                max((d.free_declared_mb for d in usable), default=0.0)
            ),
        }
    )
    ad.set_expr("Requirements", "TARGET.RequestPhiMemory <= MY.PhiMemory")
    _AD_CACHE[key] = ad
    return ad


def _baseline_pending(schedd):
    """The pre-PR ``Schedd.pending()``: filter + full sort every cycle."""
    idle = [r for r in schedd._records.values() if r.status == IDLE]
    idle.sort(key=_FIFO_KEY)
    return idle


def _baseline_cycle(pool: CondorPool):
    """One cycle of the pre-PR negotiate_once (commit 21cb224), verbatim
    control flow: interpreted evaluation, Literal-False park check only,
    per-record exhaustion, full symmetric_match scan, ad rebuilds."""
    negotiator = pool.negotiator
    env, policy = negotiator.env, negotiator.policy
    schedd, collector = negotiator.schedd, negotiator.collector
    started: list = []
    set_compilation(False)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        snapshots = collector.snapshots(env.now)
        ads = {id(s): _dict_machine_ad(s) for s in snapshots}
        evals = 0
        for record in _baseline_pending(schedd):
            if policy.exhausted(snapshots):
                break
            req = record.ad.get_expr("Requirements")
            if isinstance(req, Literal) and req.value is False:
                continue
            if not policy.prefilter(record, snapshots):
                continue
            evals += len(snapshots)
            candidates = [
                s for s in snapshots if symmetric_match(record.ad, ads[id(s)])
            ]
            if not candidates:
                continue
            placement = policy.place(record, candidates)
            if placement is None:
                continue
            snapshot, device_index, exclusive = placement
            policy.deduct(
                snapshot, device_index, exclusive,
                record.profile.declared_memory_mb,
            )
            ads[id(snapshot)] = _dict_machine_ad(snapshot)
            startd = collector.startd(snapshot.node)
            if not startd.alive:
                continue
            startd.start_job(record, device_index, exclusive)
            started.append(record)
        elapsed_ms = (time.perf_counter() - t0) * 1e3
    finally:
        gc.enable()
        set_compilation(True)
    return elapsed_ms, evals, [(r.job_id, r.matched_node) for r in started]


def _optimized_cycle(pool: CondorPool):
    started: list = []
    pool.schedd.start_listeners.append(started.append)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        pool.negotiator.negotiate_once()
        elapsed_ms = (time.perf_counter() - t0) * 1e3
    finally:
        gc.enable()
    stats = pool.negotiator.last_cycle
    return elapsed_ms, stats, [(r.job_id, r.matched_node) for r in started]


def _measure_cell(configuration: str, queue_depth: int) -> dict:
    opt = min(
        (_optimized_cycle(_build(configuration, queue_depth))
         for _ in range(SAMPLES)),
        key=lambda t: t[0],
    )
    base = min(
        (_baseline_cycle(_build(configuration, queue_depth))
         for _ in range(SAMPLES)),
        key=lambda t: t[0],
    )
    opt_ms, stats, opt_matches = opt
    base_ms, base_evals, base_matches = base
    # The whole point: faster, not different.
    assert opt_matches == base_matches, (
        f"{configuration}@Q={queue_depth}: optimized matchmaker changed "
        f"match decisions"
    )
    return {
        "configuration": configuration,
        "Q": queue_depth,
        "optimized_ms": opt_ms,
        "baseline_ms": base_ms,
        "speedup": base_ms / opt_ms if opt_ms > 0 else float("inf"),
        "matched": stats.matched,
        "parked": stats.parked,
        "evals": stats.evals,
        "baseline_evals": base_evals,
        "pin_routed": stats.pin_routed,
        "full_scans": stats.full_scans,
    }


def _render(rows: list[dict]) -> str:
    lines = [
        "Matchmaking cycle bench (16-node pool, one negotiation cycle, "
        f"best of {SAMPLES})",
        "baseline = pre-PR matchmaker replica: interpreted ClassAds, "
        "full scans, dict ad rebuilds",
        "",
        f"{'config':>6} {'Q':>7} {'cycle(ms)':>10} {'pre-PR(ms)':>11} "
        f"{'speedup':>8} {'matched':>8} {'evals':>7} {'pre-evals':>10} "
        f"{'pinned':>7}",
    ]
    for r in rows:
        lines.append(
            f"{r['configuration']:>6} {r['Q']:>7} {r['optimized_ms']:>10.2f} "
            f"{r['baseline_ms']:>11.2f} {r['speedup']:>7.2f}x "
            f"{r['matched']:>8} {r['evals']:>7} {r['baseline_evals']:>10} "
            f"{r['pin_routed']:>7}"
        )
    return "\n".join(lines)


def test_bench_matchmaking(record_result, record_bench_json):
    rows = [
        _measure_cell(configuration, q)
        for q in _queue_depths()
        for configuration in CONFIGURATIONS
    ]
    record_result("matchmaking", _render(rows))

    records = []
    for r in rows:
        name = f"{r['configuration']}@Q={r['Q']}"
        records += [
            bench_record(
                name,
                "cycle_ms",
                round(r["optimized_ms"], 3),
                "ms",
                baseline=round(r["baseline_ms"], 3),
            ),
            bench_record(
                name,
                "evals",
                r["evals"],
                "count",
                baseline=r["baseline_evals"],
            ),
            bench_record(name, "matched", r["matched"], "count"),
            bench_record(name, "pin_routed", r["pin_routed"], "count"),
        ]
    record_bench_json(
        "matchmaking",
        records,
        baseline_note=(
            f"pre-PR matchmaker replica on a {NODES}-node pool "
            f"({SLOTS_PER_NODE} slots/node, best of {SAMPLES}): "
            "interpreted ClassAds, full machine scans, dict ad rebuilds, "
            "per-cycle queue sort"
        ),
    )

    cells = {(r["configuration"], r["Q"]): r for r in rows}
    for r in rows:
        assert r["matched"] > 0
        assert r["evals"] <= r["baseline_evals"]
    for (configuration, _q), r in cells.items():
        if configuration == "MCCK":
            # The external scheduler pins every live job, so every MCCK
            # match must route through the O(1) name index.
            assert r["pin_routed"] > 0
            assert r["evals"] < r["baseline_evals"]
    headline = cells.get(("MCCK", 10_000))
    if headline is not None:
        assert headline["speedup"] >= MIN_MCCK_10K_SPEEDUP, (
            f"MCCK 10k cycle: {headline['optimized_ms']:.2f}ms vs pre-PR "
            f"{headline['baseline_ms']:.2f}ms — "
            f"{headline['speedup']:.2f}x < {MIN_MCCK_10K_SPEEDUP}x floor"
        )
