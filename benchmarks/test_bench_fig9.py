"""E6 — regenerate Fig. 9 (makespan vs cluster size, per distribution)."""

from repro.experiments import fig9
from repro.experiments.common import scaled


def test_bench_fig9(benchmark, scale, record_result):
    sizes = (2, 4, 6, 8)
    result = benchmark.pedantic(
        fig9.run,
        kwargs=dict(jobs=scaled(400, scale), sizes=sizes),
        rounds=1,
        iterations=1,
    )
    record_result("fig9", fig9.render(result))

    for distribution, series in result.makespans.items():
        mc, mcc, mcck = series["MC"], series["MCC"], series["MCCK"]
        # Makespan decreases with cluster size for every configuration.
        for values in (mc, mcc, mcck):
            assert all(a >= b for a, b in zip(values, values[1:])), distribution
        # Sharing beats exclusive at every size.
        for i in range(len(sizes)):
            assert mcc[i] < mc[i], (distribution, sizes[i])
            assert mcck[i] < mc[i], (distribution, sizes[i])
        # At the smallest cluster (highest pressure), random sharing is
        # already close to knapsack sharing (paper: "for very small
        # clusters ... naive scheduling approaches are equally effective").
        assert abs(mcck[0] - mcc[0]) < 0.15 * mcc[0], distribution
