"""X1–X3 — extension benches (capacity, consolidation, oversubscription)."""

from repro.experiments import ext_capacity, ext_multidevice, ext_oversubscription
from repro.experiments.common import scaled


def test_bench_ext_capacity(benchmark, scale, record_result):
    result = benchmark.pedantic(
        ext_capacity.run,
        kwargs=dict(jobs=scaled(400, scale)),
        rounds=1,
        iterations=1,
    )
    record_result("ext_capacity", ext_capacity.render(result))

    mc = result.makespans["MC"]
    mcck = result.makespans["MCCK"]
    # MC is essentially capacity-insensitive (within noise).
    assert max(mc) < 1.1 * min(mc)
    # Sharing monotonically improves (or saturates) with capacity.
    assert mcck[-1] <= 1.05 * mcck[0]
    # At the smallest capacity sharing is most constrained.
    assert mcck[0] == max(mcck) or mcck[0] >= 0.95 * max(mcck)


def test_bench_ext_multidevice(benchmark, scale, record_result):
    result = benchmark.pedantic(
        ext_multidevice.run,
        kwargs=dict(jobs=scaled(400, scale)),
        rounds=1,
        iterations=1,
    )
    record_result("ext_multidevice", ext_multidevice.render(result))

    # Same card count: every shape lands in the same performance regime.
    for series in result.makespans.values():
        assert max(series) < 1.5 * min(series)


def test_bench_ext_oversubscription(benchmark, record_result):
    result = benchmark.pedantic(ext_oversubscription.run, rounds=1, iterations=1)
    record_result("ext_oversubscription", ext_oversubscription.render(result))

    # Managed execution is free of penalty within the budget and reaches
    # the paper's ~8x anchor around 2.5x demand.
    assert result.slowdowns_managed[0] == 1.0
    assert result.slowdowns_managed[1] == 1.0
    anchor = result.slowdowns_managed[result.ratios.index(2.5)]
    assert 6.0 <= anchor <= 10.0
    # Unmanaged is never better than managed.
    for u, m in zip(result.slowdowns_unmanaged, result.slowdowns_managed):
        assert u >= m
    # Memory: everyone survives within capacity; kills begin past it.
    assert result.survival_rate[0] == 1.0
    assert result.survival_rate[-1] < 1.0


def test_bench_ext_replication(benchmark, scale, record_result):
    from repro.experiments import ext_replication

    result = benchmark.pedantic(
        ext_replication.run,
        kwargs=dict(jobs=scaled(400, scale), seeds=(42, 43, 44)),
        rounds=1,
        iterations=1,
    )
    record_result("ext_replication", ext_replication.render(result))

    # Sharing beats MC on every seed, by a clear margin on average.
    for configuration in ("MCC", "MCCK"):
        reduction = result.reduction(configuration)
        assert reduction.mean > 15.0
        assert all(v > 0 for v in reduction.values)
    # The MC calibration is stable across seeds (tight CI).
    mc = result.makespans["MC"]
    lo, hi = mc.ci95
    assert (hi - lo) < 0.2 * mc.mean
