"""Scheduler hot-path scaling: the Fig. 4 loop against deep queues.

The paper's evaluation never queues more than a few hundred jobs; the
ROADMAP's north star is a scheduler that serves millions. This bench
pins down the perf trajectory of the hot path — the initial full pack at
attach() plus the per-completion repack — at queue depths Q well beyond
paper scale, recording jobs/sec and peak RSS per depth.

Methodology: an 8-node pool (the paper's cluster shape) receives Q
pending jobs; we time the attach() pass, then drive the simulation
through a fixed number of completions (each one a repack against the
still-huge queue) and report completions per wall-second. Driving a
*capped* completion count keeps the bench O(minutes) while measuring
exactly the per-event cost at depth Q; draining all Q jobs would measure
the same event repeated Q times.

Run alongside the other benches (``pytest benchmarks/``). Depth 50k is
skipped unless ``REPRO_FULL=1`` to keep CI smoke runs quick.
"""

from __future__ import annotations

import os
import resource
import time

import numpy as np
import pytest

from repro.cluster import ComputeNode
from repro.condor import CondorPool, PinnedPlacement
from repro.core import DevicePacker, KnapsackClusterScheduler
from repro.sim import Environment
from repro.workloads import JobProfile, OffloadPhase

NODES = 8
#: Completions to drive per depth (each is one repack at queue depth ~Q).
COMPLETIONS_PER_DEPTH = 200


def _queue_depths() -> list[int]:
    if os.environ.get("REPRO_FULL"):
        return [1_000, 10_000, 50_000]
    if os.environ.get("REPRO_SCALE"):
        # CI smoke: a single small depth.
        return [1_000]
    return [1_000, 10_000, 50_000]


def _jobs(count: int, seed: int = 0) -> list[JobProfile]:
    rng = np.random.default_rng(seed)
    memories = rng.integers(6, 69, size=count) * 50       # 300..3400 MB
    threads = rng.integers(15, 61, size=count) * 4        # 60..240
    works = rng.exponential(3.0, size=count) + 0.5
    return [
        JobProfile(
            job_id=f"q{i}",
            app="bench",
            phases=(
                OffloadPhase(
                    work=float(works[i]),
                    threads=int(threads[i]),
                    memory_mb=float(memories[i]),
                ),
            ),
            declared_memory_mb=float(memories[i]),
            declared_threads=int(threads[i]),
        )
        for i in range(count)
    ]


def _peak_rss_mb() -> float:
    # ru_maxrss is KiB on Linux (bytes on macOS).
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if rss > 1 << 32:  # pragma: no cover - macOS reports bytes
        return rss / (1 << 20)
    return rss / 1024.0


def _measure(queue_depth: int) -> dict:
    env = Environment()
    nodes = [ComputeNode(env, f"n{i}", mode="cosmic") for i in range(NODES)]
    pool = CondorPool(
        env,
        nodes,
        PinnedPlacement(),
        slots_per_node=16,
        cycle_interval=5.0,
        dispatch_latency=0.5,
    )
    pool.submit(_jobs(queue_depth))
    scheduler = KnapsackClusterScheduler(pool, packer=DevicePacker(thread_capacity=240))

    t0 = time.perf_counter()
    scheduler.attach()
    t_attach = time.perf_counter() - t0

    violations: list[str] = []

    def check_start(record):
        if scheduler.assignment_of(record.job_id) is None:
            violations.append(record.job_id)

    pool.schedd.start_listeners.append(check_start)

    target = min(queue_depth, COMPLETIONS_PER_DEPTH)
    done = env.event()
    completions = [0]

    def count_completion(_record):
        completions[0] += 1
        if completions[0] == target and not done.triggered:
            done.succeed()

    pool.schedd.completion_listeners.append(count_completion)

    t0 = time.perf_counter()
    pool.start()
    env.run(until=done)
    t_drive = time.perf_counter() - t0

    assert not violations, f"jobs dispatched without assignment: {violations[:5]}"
    assert completions[0] == target
    return {
        "Q": queue_depth,
        "attach_s": t_attach,
        "drive_s": t_drive,
        "completions": completions[0],
        "jobs_per_sec": completions[0] / t_drive if t_drive > 0 else float("inf"),
        "repack_passes": scheduler.repack_passes,
        "coalesced": scheduler.coalesced_completions,
        "assigned_at_attach": len(scheduler.decisions[0].packing.chosen)
        if scheduler.decisions
        else 0,
        "peak_rss_mb": _peak_rss_mb(),
    }


def _render(rows: list[dict]) -> str:
    lines = [
        "Scheduler hot-path scaling (Fig. 4 loop, 8-node pool)",
        f"{COMPLETIONS_PER_DEPTH} completion-repacks driven per depth; "
        "RSS is the process peak (monotone across depths)",
        "",
        f"{'Q':>7} {'attach(s)':>10} {'drive(s)':>9} {'jobs/sec':>9} "
        f"{'repacks':>8} {'coalesced':>10} {'peakRSS(MB)':>12}",
    ]
    for r in rows:
        lines.append(
            f"{r['Q']:>7} {r['attach_s']:>10.3f} {r['drive_s']:>9.3f} "
            f"{r['jobs_per_sec']:>9.1f} {r['repack_passes']:>8} "
            f"{r['coalesced']:>10} {r['peak_rss_mb']:>12.1f}"
        )
    return "\n".join(lines)


def test_bench_scheduler_scaling(record_result):
    rows = [_measure(q) for q in _queue_depths()]
    record_result("scheduler_scaling", _render(rows))

    by_q = {r["Q"]: r for r in rows}
    ten_k = by_q.get(10_000)
    if ten_k is not None:
        # Acceptance: the Q=10k hot path fits a CI budget.
        assert ten_k["attach_s"] + ten_k["drive_s"] < 60.0
    for r in rows:
        assert r["jobs_per_sec"] > 0
        # With randomized durations completions rarely coincide, so the
        # pass count can reach the completion count — never exceed it.
        assert r["repack_passes"] <= r["completions"]
