"""Kernel performance bench: events/sec microbenchmark + fig8 cell timing.

Two measurements back the PR-4 hot-path overhaul:

* a timeout-heavy microbenchmark (the kernel's dominant event pattern)
  reporting raw events per wall second via the built-in profiler;
* the end-to-end MCCK/normal fig8 cell at paper scale (400 jobs), the
  workload profiled while optimizing.

Both are compared against the pre-PR numbers measured on the same
machine right before the overhaul (commit "deterministic fault
injection…"), and the rendered figures land in
``benchmarks/results/sim_kernel.txt`` plus machine-readable
``BENCH_kernel.json`` (shared record schema, see
``benchmarks/conftest.py``) so future PRs can extend the trajectory.

The hard assertion is a loose regression tripwire (the baseline
constants are machine-specific); the committed results file records the
actual speedup on the reference machine.
"""

import time

from conftest import bench_record

from repro.experiments.fig8 import tasks as fig8_tasks
from repro.experiments.runner import compute_task
from repro.sim import Environment

#: Pre-overhaul numbers on the reference machine (best of 5).
PRE_PR_EVENTS_PER_SEC = 526_775.0
PRE_PR_FIG8_CELL_SECONDS = 1.427

#: Regression floor for CI machines of unknown speed: the cell must stay
#: clearly faster than the pre-PR baseline even with machine variance.
MIN_CELL_SPEEDUP = 1.2

_PROCS = 100
_TIMEOUTS = 2_000


def _microbench_events_per_sec() -> tuple[float, int]:
    """Fired events per second on the timeout→resume fast path.

    Timed without the profiler (as the pre-PR baseline was): the event
    count is exact — one Timeout per tick plus each process's Initialize
    and terminal Process event.
    """

    def ticker(env):
        for _ in range(_TIMEOUTS):
            yield env.timeout(1.0)

    env = Environment()
    for _ in range(_PROCS):
        env.process(ticker(env))
    started = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - started
    fired = _PROCS * _TIMEOUTS + 2 * _PROCS
    return fired / elapsed, fired


def _fig8_cell():
    """The MCCK/normal 400-job cell (the paper-scale fig8 workhorse)."""
    for task in fig8_tasks(jobs=400):
        params = dict(task.params)
        workload = params.get("workload")
        if params.get("configuration") == "MCCK" and workload[2] == "normal":
            return task
    raise AssertionError("fig8 grid no longer contains MCCK/normal")


def test_bench_sim_kernel(record_result, record_bench_json):
    # -- microbenchmark ----------------------------------------------------
    rates = []
    fired = 0
    for _ in range(5):
        rate, fired = _microbench_events_per_sec()
        rates.append(rate)
    events_per_sec = max(rates)

    # -- end-to-end cell ---------------------------------------------------
    task = _fig8_cell()
    compute_task(task)  # warm imports and caches out of the timing
    cell_seconds = None
    for _ in range(5):
        started = time.perf_counter()
        result = compute_task(task)
        elapsed = time.perf_counter() - started
        if cell_seconds is None or elapsed < cell_seconds:
            cell_seconds = elapsed

    kernel_speedup = events_per_sec / PRE_PR_EVENTS_PER_SEC
    cell_speedup = PRE_PR_FIG8_CELL_SECONDS / cell_seconds

    text = "\n".join(
        [
            "sim kernel bench " + "-" * 43,
            f"{'microbench events/sec':<28}{events_per_sec:>14,.0f}",
            f"{'microbench events fired':<28}{fired:>14,}",
            f"{'pre-PR events/sec':<28}{PRE_PR_EVENTS_PER_SEC:>14,.0f}",
            f"{'kernel speedup':<28}{kernel_speedup:>13.2f}x",
            "",
            f"{'fig8 MCCK/normal cell':<28}{cell_seconds:>13.3f}s",
            f"{'pre-PR cell':<28}{PRE_PR_FIG8_CELL_SECONDS:>13.3f}s",
            f"{'cell speedup':<28}{cell_speedup:>13.2f}x",
            f"{'cell makespan':<28}{result['makespan']:>14.4f}",
        ]
    )
    record_result("sim_kernel", text)

    record_bench_json(
        "kernel",
        [
            bench_record(
                "microbench",
                "events_per_sec",
                round(events_per_sec),
                "events/s",
                baseline=PRE_PR_EVENTS_PER_SEC,
            ),
            bench_record(
                "microbench", "events_fired", fired, "events"
            ),
            bench_record(
                "fig8-MCCK-normal",
                "cell_seconds",
                round(cell_seconds, 4),
                "s",
                baseline=PRE_PR_FIG8_CELL_SECONDS,
            ),
        ],
        baseline_note=(
            "pre-overhaul kernel on the reference machine (best of 5)"
        ),
    )

    assert events_per_sec > 0
    assert result["makespan"] > 0
    assert cell_speedup >= MIN_CELL_SPEEDUP, (
        f"fig8 cell regressed: {cell_seconds:.3f}s vs pre-PR "
        f"{PRE_PR_FIG8_CELL_SECONDS:.3f}s baseline"
    )
