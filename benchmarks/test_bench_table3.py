"""E7 — regenerate Table III (footprint per resource distribution)."""

from repro.experiments import table3
from repro.experiments.common import scaled


def test_bench_table3(benchmark, scale, record_result):
    result = benchmark.pedantic(
        table3.run,
        kwargs=dict(jobs=scaled(400, scale)),
        rounds=1,
        iterations=1,
    )
    record_result("table3", table3.render(result))

    sizes = {
        (distribution, configuration): fp.cluster_size
        for distribution, by_config in result.footprints.items()
        for configuration, fp in by_config.items()
    }
    # Shape: every sharing configuration shrinks the cluster on the
    # favourable distributions.
    for distribution in ("uniform", "normal", "low-skew"):
        for configuration in ("MCC", "MCCK"):
            size = sizes[(distribution, configuration)]
            assert size is not None and size < 8, (distribution, configuration)
    # Low-skew shrinks at least as much as high-skew (paper: 3 vs 6).
    low = sizes[("low-skew", "MCCK")]
    high = sizes[("high-skew", "MCCK")] or 8
    assert low is not None and low <= high
