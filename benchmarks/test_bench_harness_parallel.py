"""Harness benchmark: process-pool fan-out and result-cache speedups.

Times ``python -m repro.experiments all`` three ways at smoke scale
(``REPRO_SCALE=0.25`` unless the environment says otherwise):

* cold sequential (``--jobs 1``, cache disabled) — the pre-PR baseline;
* cold parallel (``--jobs 4``, fresh cache) — the fan-out win;
* warm rerun (``--jobs 4``, populated cache) — the cache win.

Results land in ``benchmarks/results/harness_parallel.txt``. The
parallel speedup scales with the machine (this records the observed
core count); the cache speedup must hold everywhere: a warm rerun
executes zero simulation cells, so it is asserted to finish well under
the cold sequential time.
"""

import os
import time

import pytest

from repro.cli import main


def _run(argv) -> float:
    started = time.perf_counter()
    assert main(argv) == 0
    return time.perf_counter() - started


@pytest.fixture()
def smoke_env(tmp_path, monkeypatch):
    """Smoke scale + an isolated cache directory for honest cold runs."""
    monkeypatch.setenv(
        "REPRO_SCALE", os.environ.get("REPRO_SCALE", "0.25")
    )
    monkeypatch.delenv("REPRO_FULL", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def test_bench_harness_parallel(smoke_env, capsys, record_result):
    cores = os.cpu_count() or 1

    cold_sequential = _run(["all", "--jobs", "1", "--no-cache"])
    cold_parallel = _run(["all", "--jobs", "4"])  # also fills the cache
    warm_cached = _run(["all", "--jobs", "4"])
    capsys.readouterr()  # drop the rendered tables; timings are the artifact

    parallel_speedup = cold_sequential / cold_parallel
    cache_speedup = cold_sequential / warm_cached
    lines = [
        "harness parallelism + cache benchmark "
        f"(all experiments, REPRO_SCALE={os.environ['REPRO_SCALE']}, "
        f"{cores} core(s))",
        "",
        f"cold sequential (--jobs 1, --no-cache): {cold_sequential:8.2f}s",
        f"cold parallel   (--jobs 4, cold cache): {cold_parallel:8.2f}s"
        f"  ({parallel_speedup:.2f}x vs sequential)",
        f"warm rerun      (--jobs 4, warm cache): {warm_cached:8.2f}s"
        f"  ({cache_speedup:.2f}x vs cold sequential, "
        f"{100 * warm_cached / cold_sequential:.1f}% of its wall-clock)",
        "",
        "acceptance: >= 2x parallel speedup needs >= 4 hardware cores; "
        "the warm rerun executes zero cells on any machine.",
    ]
    record_result("harness_parallel", "\n".join(lines))

    # The cache win is machine-independent: a warm rerun deserialises a
    # few hundred small pickles instead of simulating anything.
    assert warm_cached < 0.25 * cold_sequential
    if cores >= 4:
        # The fan-out win needs real cores to show (CI runners have 4).
        assert cold_parallel < 0.5 * cold_sequential
