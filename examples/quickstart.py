#!/usr/bin/env python
"""Quickstart: pack one coprocessor, then run a small shared cluster.

This walks the two layers of the public API:

1. the *packing* layer — model a Xeon Phi as a knapsack and choose which
   jobs should share it (the paper's core algorithm, no simulation);
2. the *cluster* layer — run the same jobs through the full simulated
   stack (Condor + COSMIC + MPSS + device) under the three
   configurations the paper compares.

Run: python examples/quickstart.py
"""

from repro.cluster import ClusterConfig, run_mc, run_mcc, run_mcck
from repro.core import DevicePacker, paper_value
from repro.metrics import format_table, percent_reduction
from repro.workloads import generate_table1_jobs


def pack_one_device() -> None:
    """Layer 1: the knapsack decision for a single 8 GB card."""
    jobs = generate_table1_jobs(12, seed=1)
    print(format_table(
        ["job", "app", "declared MB", "declared threads", "value (Eq. 1)"],
        [
            [j.job_id, j.app, f"{j.declared_memory_mb:.0f}", j.declared_threads,
             f"{paper_value(j.declared_threads):.2f}"]
            for j in jobs
        ],
        title="Pending jobs",
    ))

    packer = DevicePacker(thread_capacity=240)  # the paper's rule set
    packing = packer.pack(jobs, free_memory_mb=8192, max_jobs=16)
    print(
        f"\nKnapsack packs {packing.concurrency} jobs onto one card: "
        f"{', '.join(packing.chosen)}"
        f"\n  total declared memory : {packing.total_declared_mb:.0f} / 8192 MB"
        f"\n  total declared threads: {packing.total_declared_threads} / 240"
    )


def run_small_cluster() -> None:
    """Layer 2: the full simulated cluster, three software stacks."""
    jobs = generate_table1_jobs(60, seed=2)
    config = ClusterConfig(nodes=2)

    mc = run_mc(jobs, config)
    mcc = run_mcc(jobs, config)
    mcck = run_mcck(jobs, config)

    rows = []
    for result in (mc, mcc, mcck):
        reduction = (
            "-" if result.configuration == "MC"
            else f"-{percent_reduction(mc.makespan, result.makespan):.0f}%"
        )
        rows.append([
            result.configuration,
            f"{result.makespan:.0f}s",
            reduction,
            f"{100 * result.mean_core_utilization:.0f}%",
        ])
    print("\n" + format_table(
        ["config", "makespan", "vs MC", "Phi core utilization"],
        rows,
        title="60 Table-I jobs on a 2-node cluster",
    ))


if __name__ == "__main__":
    pack_one_device()
    run_small_cluster()
