#!/usr/bin/env python
"""The Table II pipeline on the real (Table I) workload mix.

Reproduces the paper's headline experiment end to end at a configurable
scale: generate N instances of the seven Xeon Phi applications, run MC /
MCC / MCCK on the 8-node cluster, then search for each sharing stack's
coprocessor footprint (the smallest cluster matching the MC makespan).

Run: python examples/real_workloads.py [N]   (default 300 jobs)
"""

import sys

from repro.experiments import table2


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    print(f"Running the Table II pipeline with {jobs} jobs "
          f"(paper scale: 1000)...\n")
    result = table2.run(jobs=jobs)
    print(table2.render(result))
    print(
        "\nInterpretation: coprocessor sharing (MCC) removes the exclusive-"
        "\nallocation idle time; the knapsack cluster scheduler (MCCK) adds"
        "\ncluster-level control over WHICH jobs share each card. Both let a"
        "\nsmaller cluster match the 8-node baseline's makespan — the"
        "\nfootprint columns."
    )


if __name__ == "__main__":
    main()
