#!/usr/bin/env python
"""Sensitivity study: how job resource distributions change the picture.

Runs the Fig. 8 experiment (four synthetic distributions on 8 nodes) and
the Fig. 9 cluster-size sweep for one distribution, printing the series
the paper plots.

Run: python examples/sensitivity.py [N]   (default 400 jobs per set; low counts change the regime)
"""

import sys

from repro.experiments import fig8, fig9


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 400

    print(f"Fig. 8 — makespan by distribution ({jobs} jobs per set)\n")
    result8 = fig8.run(jobs=jobs)
    print(fig8.render(result8))
    print(
        "\nNote the high-skew row: mostly-big jobs leave little room to"
        "\nshare, so both sharing stacks compress toward the baseline —"
        "\nexactly the paper's sensitivity argument.\n"
    )

    print(f"Fig. 9 — cluster-size sweep (normal distribution, {jobs} jobs)\n")
    result9 = fig9.run(jobs=jobs, sizes=(2, 4, 6, 8), distributions=("normal",))
    print(fig9.render(result9))
    print(
        "\nAt 2 nodes the job pressure is so high that even random sharing"
        "\nsaturates the cards; the cluster-level scheduler matters more as"
        "\nthe cluster grows."
    )


if __name__ == "__main__":
    main()
