#!/usr/bin/env python
"""Why sharing needs COSMIC: oversubscription on an unmanaged card.

The paper's premise (§II-C): a manycore like the Phi reacts badly to
resource oversubscription — thread oversubscription costs up to ~8x in
performance, and memory oversubscription gets processes killed by the
on-card OOM killer. This demo runs the *same* job set three ways on a
single node:

1. exclusive       — safe but slow (the MC baseline);
2. unsafe sharing  — raw MPSS, no COSMIC: OOM kills and slowdowns;
3. COSMIC sharing  — gated offloads + admission: safe AND fast.

Run: python examples/oversubscription_demo.py
"""

from repro.cluster import ComputeNode
from repro.metrics import format_table
from repro.sim import Environment
from repro.workloads import HostPhase, JobProfile, OffloadPhase


def make_jobs(count: int = 6) -> list[JobProfile]:
    """Hungry jobs: 3 GB resident, 200 threads each — any two of them
    oversubscribe threads, any three oversubscribe the 8 GB memory."""
    jobs = []
    for i in range(count):
        jobs.append(
            JobProfile(
                job_id=f"hungry-{i}",
                app="demo",
                phases=(
                    HostPhase(2.0),
                    OffloadPhase(work=10.0, threads=200, memory_mb=3000.0),
                    HostPhase(2.0),
                    OffloadPhase(work=10.0, threads=200, memory_mb=3000.0),
                ),
                declared_memory_mb=3000.0,
                declared_threads=200,
            )
        )
    return jobs


def run_mode(mode: str, jobs: list[JobProfile]):
    env = Environment()
    node = ComputeNode(env, "node0", mode=mode)
    results = []

    def driver(env, profile):
        result = yield from node.execute(
            profile, exclusive=(mode == "exclusive")
        )
        results.append(result)

    for profile in jobs:
        env.process(driver(env, profile))
    env.run()
    device = node.devices[0]
    return {
        "mode": mode,
        "makespan": max(r.end for r in results),
        "completed": sum(1 for r in results if r.completed),
        "oom_kills": device.telemetry.oom_kills,
        "jobs": len(results),
    }


def main() -> None:
    jobs = make_jobs()
    rows = []
    for mode in ("exclusive", "unsafe", "cosmic"):
        outcome = run_mode(mode, jobs)
        rows.append([
            mode,
            f"{outcome['makespan']:.0f}s",
            f"{outcome['completed']}/{outcome['jobs']}",
            outcome["oom_kills"],
        ])
    print(format_table(
        ["mode", "makespan", "jobs survived", "OOM kills"],
        rows,
        title="Six 3GB/200-thread jobs on ONE Xeon Phi (8 GB, 240 threads)",
    ))
    print(
        "\n'unsafe' pays for concurrency with crashes (the OOM killer"
        "\npicks victims) and oversubscription slowdowns; COSMIC keeps the"
        "\nconcurrency while protecting memory and threads — the property"
        "\nthe cluster scheduler builds on."
    )


if __name__ == "__main__":
    main()
