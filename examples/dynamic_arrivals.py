#!/usr/bin/env python
"""Dynamic arrivals: the paper's "outside the scope" scenario, working.

§IV-D's limitations note that the knapsack approach is static but "can
also be used in a dynamic context" by treating the pending queue as a
snapshot. This example drives exactly that: jobs arrive in Poisson-ish
waves; each wave is submitted to the running pool and the scheduler
re-packs the devices with free capacity.

Run: python examples/dynamic_arrivals.py
"""

import numpy as np

from repro.cluster import ComputeNode
from repro.condor import CondorPool, PinnedPlacement
from repro.core import KnapsackClusterScheduler
from repro.metrics import format_table
from repro.sim import Environment
from repro.workloads import generate_table1_jobs


def main() -> None:
    rng = np.random.default_rng(11)
    env = Environment()
    nodes = [ComputeNode(env, f"node{i}", mode="cosmic") for i in range(4)]
    pool = CondorPool(env, nodes, PinnedPlacement(), cycle_interval=5.0)

    # First wave is queued before the scheduler attaches.
    waves = [generate_table1_jobs(30, seed=s) for s in (100, 101, 102, 103)]
    for wave_index, wave in enumerate(waves):
        for job in wave:
            object.__setattr__(job, "job_id", f"w{wave_index}-{job.job_id}")
    pool.submit(waves[0])

    scheduler = KnapsackClusterScheduler(pool)
    scheduler.attach()

    arrivals = []

    def arrival_process(env):
        for wave_index, wave in enumerate(waves[1:], start=1):
            yield env.timeout(float(rng.uniform(60, 120)))
            pool.submit(wave)
            assigned = scheduler.schedule_pending()
            arrivals.append((env.now, wave_index, len(wave), assigned))

    env.process(arrival_process(env))
    makespan = pool.run_to_completion()

    print(format_table(
        ["arrival time", "wave", "jobs", "assigned immediately"],
        [[f"{t:.0f}s", w, n, a] for t, w, n, a in arrivals],
        title="Job waves arriving at a live 4-node pool",
    ))
    total = sum(len(w) for w in waves)
    completed = len(pool.schedd.completed())
    print(
        f"\nall {completed}/{total} jobs completed; final makespan {makespan:.0f}s; "
        f"{len(scheduler.decisions)} knapsack decisions made "
        "(initial pass + one per completion + one per wave)."
    )


if __name__ == "__main__":
    main()
