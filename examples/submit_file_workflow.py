#!/usr/bin/env python
"""A full operator workflow, driven by Condor submit files.

Covers the operational surface end to end:

1. write submit descriptions the way the paper's users would (§IV-D1);
2. parse them into job ads / runnable profiles;
3. run the pool under the knapsack scheduler, watching ``condor_q`` /
   ``condor_status`` along the way;
4. validate the run's safety invariants and analyze where time went.

Run: python examples/submit_file_workflow.py
"""

from repro.cluster import ComputeNode, validate_pool
from repro.condor import CondorPool, PinnedPlacement, condor_q, condor_status
from repro.core import KnapsackClusterScheduler, ResourceEstimator
from repro.metrics import balance_stats, offload_stats, queue_stats
from repro.sim import Environment
from repro.workloads import profiles_from_submit

KMEANS_SUBMIT = """\
executable          = km_offload
request_phi_devices = 1
request_phi_memory  = 1250
request_phi_threads = 60
queue 20
"""

SGEMM_SUBMIT = """\
executable          = sgemm_batch
request_phi_devices = 1
request_phi_memory  = 3400
request_phi_threads = 60
queue 10
"""

CFD_SUBMIT = """\
executable          = bt_solver
request_phi_devices = 1
request_phi_memory  = 1250
request_phi_threads = 240
queue 10
"""


def main() -> None:
    jobs = []
    for cluster_id, text in enumerate(
        (KMEANS_SUBMIT, SGEMM_SUBMIT, CFD_SUBMIT), start=1
    ):
        jobs.extend(profiles_from_submit(text, seed=cluster_id, cluster_id=cluster_id))
    print(f"parsed {len(jobs)} jobs from 3 submit descriptions\n")

    env = Environment()
    nodes = [ComputeNode(env, f"node{i}", mode="cosmic") for i in range(2)]
    pool = CondorPool(env, nodes, PinnedPlacement(), cycle_interval=5.0)
    pool.submit(jobs)
    scheduler = KnapsackClusterScheduler(pool)
    scheduler.attach()

    def observer(env):
        yield env.timeout(20)
        print(condor_q(pool.schedd))
        print()
        print(condor_status(pool))
        print()

    env.process(observer(env))
    makespan = pool.run_to_completion()
    print(f"makespan: {makespan:.0f}s over {len(nodes)} nodes\n")

    report = validate_pool(pool, expect_gated=True)
    print(f"safety check: {report}")

    devices = [d for node in nodes for d in node.devices]
    for device in devices:
        stats = offload_stats(device)
        print(
            f"{stats.device}: {stats.offloads} offloads, "
            f"mean slowdown {stats.mean_slowdown:.2f}x, "
            f"sharing overhead {100 * stats.sharing_overhead:.0f}%"
        )
    results = [r.result for r in pool.schedd.completed()]
    waits = queue_stats(results)
    print(f"queue waits: mean {waits.mean_wait:.0f}s, p95 {waits.p95_wait:.0f}s")
    balance = balance_stats(devices)
    print(f"work imbalance across devices: {balance.work_imbalance:.2f}x")

    # Bonus: let the estimator learn declarations from this run.
    estimator = ResourceEstimator()
    estimator.observe_many([job for job in jobs])
    estimate = estimator.estimate("sgemm_batch")
    print(
        f"\nlearned declaration for sgemm_batch: "
        f"{estimate.memory_mb:.0f} MB / {estimate.threads} threads "
        f"(from {estimate.samples} runs)"
    )


if __name__ == "__main__":
    main()
