#!/usr/bin/env python
"""Reproduce the paper's Figs. 2-3: why sharing a coprocessor works.

Fig. 2: two jobs whose offloads each use ALL 240 hardware threads —
their offloads cannot overlap, but each job's host phases leave gaps the
other job's offloads slide into.

Fig. 3: two jobs whose offloads use 120 threads each — offloads overlap
outright, and the concurrent makespan beats the sequential one by more.

The ASCII timelines show the device's thread occupancy over time.

Run: python examples/fig2_fig3_timelines.py
"""

from repro.cosmic import Cosmic
from repro.metrics import device_timeline, legend
from repro.mpss import FREE_TRANSFERS, OffloadRuntime
from repro.phi import AffinitizedContention, XeonPhi
from repro.sim import Environment
from repro.workloads import HostPhase, JobProfile, OffloadPhase


def job_with(job_id: str, threads: int, offloads: int) -> JobProfile:
    phases = []
    for i in range(offloads):
        phases.append(OffloadPhase(work=6.0, threads=threads, memory_mb=1000.0))
        if i < offloads - 1:
            phases.append(HostPhase(4.0))
    return JobProfile(
        job_id=job_id,
        app="fig-demo",
        phases=tuple(phases),
        declared_memory_mb=1000.0,
        declared_threads=threads,
    )


def run_scenario(title: str, jobs: list[JobProfile], concurrent: bool) -> float:
    env = Environment()
    phi = XeonPhi(env, contention=AffinitizedContention(), name="mic0")
    cosmic = Cosmic(env, phi)
    runtime = OffloadRuntime(env, phi, scif=FREE_TRANSFERS, gate=cosmic)
    ends = []

    def driver(env, profile, delay):
        yield env.timeout(delay)
        yield cosmic.admit_job(profile.declared_memory_mb)
        result = yield from runtime.execute(profile)
        cosmic.release_job(profile.declared_memory_mb)
        ends.append(result.end)

    if concurrent:
        for profile in jobs:
            env.process(driver(env, profile, 0.0))
    else:
        # Sequential: chain via a single process.
        def chain(env):
            for profile in jobs:
                yield cosmic.admit_job(profile.declared_memory_mb)
                result = yield from runtime.execute(profile)
                cosmic.release_job(profile.declared_memory_mb)
                ends.append(result.end)

        env.process(chain(env))
    env.run()
    makespan = max(ends)
    print(f"\n{title}: makespan {makespan:.0f}s")
    print("mic0 |" + device_timeline(phi, 0, makespan, width=70) + "|")
    return makespan


def main() -> None:
    print(legend())

    print("\n=== Fig. 2: offloads use all 240 threads (no offload overlap) ===")
    full = [job_with("J1", 240, 2), job_with("J2", 240, 3)]
    seq = run_scenario("sequential (J1 then J2)", full, concurrent=False)
    conc = run_scenario("concurrent  (J1 + J2 share)", full, concurrent=True)
    print(f"-> gap-filling alone saves {100 * (1 - conc / seq):.0f}%")

    print("\n=== Fig. 3: offloads use 120 threads (offloads overlap) ===")
    partial = [job_with("J3", 120, 2), job_with("J4", 120, 3)]
    seq = run_scenario("sequential (J3 then J4)", partial, concurrent=False)
    conc = run_scenario("concurrent  (J3 + J4 share)", partial, concurrent=True)
    print(f"-> overlap + gap-filling saves {100 * (1 - conc / seq):.0f}%")


if __name__ == "__main__":
    main()
