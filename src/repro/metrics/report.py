"""Plain-text table/series rendering for the experiment harness.

The benchmarks print the same rows the paper's tables and figures report;
these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: Optional[str] = None,
    fmt: str = "{:.0f}",
) -> str:
    """Render one-figure data as a table: one x column, one column per line."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_values)} x values"
            )
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        row = [x]
        for name in series:
            row.append(fmt.format(series[name][i]))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_outcome_counts(stats) -> str:
    """One line of job-outcome accounting for run summaries.

    Keeps container kills and infrastructure failures visibly separate
    (see :class:`~repro.metrics.analysis.JobOutcomeStats`), and flags
    any retried-then-completed jobs so chaos runs show their recoveries.
    """
    parts = [
        f"jobs={stats.jobs}",
        f"completed={stats.completed}",
        f"killed={stats.killed}",
        f"failed={stats.failed}",
    ]
    if stats.retried_completed:
        parts.append(f"retried-ok={stats.retried_completed}")
    line = " ".join(parts)
    if not stats.accounted:
        line += " (UNACCOUNTED)"
    return line


def percent_reduction(baseline: float, value: float) -> float:
    """The paper's 'reduction compared to MC' percentage."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (1.0 - value / baseline)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: Optional[str] = None,
    fmt: str = "{:.0f}",
) -> str:
    """A quick horizontal bar chart for terminal output."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max(values, default=0.0)
    label_w = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * (int(round(width * value / peak)) if peak > 0 else 0)
        lines.append(f"{label.ljust(label_w)} | {bar} {fmt.format(value)}")
    return "\n".join(lines)
