"""Post-run analysis: where did the time go?

Digs into the artifacts every run already produces — job results, the
per-device offload logs, busy-core telemetry — and answers the questions
the paper's discussion raises: how long did jobs queue, how much were
offloads slowed by sharing, how was work spread across devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..mpss.runtime import JobRunResult
from ..phi.device import XeonPhi

#: Job statuses meaning "killed by the container" — the job's own fault
#: (it overran its declaration); rerunning would kill it again.
KILL_STATUSES = frozenset({"memory-limit", "oom-killed"})
#: Job statuses meaning "the infrastructure failed the job" — the retry
#: path handles these; a terminal one means retries were exhausted.
INFRA_STATUSES = frozenset(
    {"device-failed", "node-lost", "job-crashed", "infrastructure"}
)


@dataclass(frozen=True)
class OffloadStats:
    """Aggregate offload behaviour on one device."""

    device: str
    offloads: int
    total_work: float
    total_service_time: float
    mean_slowdown: float
    max_slowdown: float
    killed: int

    @property
    def sharing_overhead(self) -> float:
        """Extra service time relative to running every offload alone."""
        if self.total_work == 0:
            return 0.0
        return self.total_service_time / self.total_work - 1.0


def offload_stats(device: XeonPhi) -> OffloadStats:
    """Summarize one device's offload log."""
    records = device.offload_log
    completed = [r for r in records if r.completed and r.work > 0]
    slowdowns = [(r.end - r.start) / r.work for r in completed]
    return OffloadStats(
        device=device.name,
        offloads=len(records),
        total_work=sum(r.work for r in completed),
        total_service_time=sum(r.end - r.start for r in completed),
        mean_slowdown=float(np.mean(slowdowns)) if slowdowns else 1.0,
        max_slowdown=float(np.max(slowdowns)) if slowdowns else 1.0,
        killed=sum(1 for r in records if not r.completed),
    )


@dataclass(frozen=True)
class JobOutcomeStats:
    """Where every job ended up, with kills and failures kept apart.

    Earlier analyses lumped everything non-completed under "killed",
    which conflated container kills (the job overran its declaration)
    with infrastructure failures (a device or node died under it). The
    distinction matters: kills indict the workload, failures indict the
    cluster — and only failures are retried.
    """

    jobs: int
    completed: int
    #: Killed by the container (memory-limit / OOM): never retried.
    killed: int
    #: Terminally failed by the infrastructure: retries exhausted.
    failed: int
    #: Completed, but only after at least one failed attempt.
    retried_completed: int
    #: (status, count) for every status seen, most frequent first.
    by_status: tuple[tuple[str, int], ...]

    @property
    def accounted(self) -> bool:
        """Every job is exactly one of completed / killed / failed."""
        return self.completed + self.killed + self.failed == self.jobs


def job_outcomes(results: Sequence[JobRunResult]) -> JobOutcomeStats:
    """Classify final job results into completed / killed / failed."""
    counts: dict[str, int] = {}
    for result in results:
        counts[result.status] = counts.get(result.status, 0) + 1
    completed = counts.get("completed", 0)
    killed = sum(n for s, n in counts.items() if s in KILL_STATUSES)
    failed = len(results) - completed - killed
    retried = sum(1 for r in results if r.completed and r.attempt > 0)
    by_status = tuple(
        sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    )
    return JobOutcomeStats(
        jobs=len(results),
        completed=completed,
        killed=killed,
        failed=failed,
        retried_completed=retried,
        by_status=by_status,
    )


@dataclass(frozen=True)
class QueueStats:
    """How long jobs waited before starting (dispatch + packing latency)."""

    jobs: int
    mean_wait: float
    median_wait: float
    p95_wait: float
    max_wait: float


def queue_stats(
    results: Sequence[JobRunResult], submit_times: dict[str, float] | None = None
) -> QueueStats:
    """Waiting time = start - submit (submit defaults to t=0 for all)."""
    if not results:
        return QueueStats(0, 0.0, 0.0, 0.0, 0.0)
    waits = []
    for result in results:
        submitted = (submit_times or {}).get(result.job_id, 0.0)
        waits.append(max(0.0, result.start - submitted))
    arr = np.asarray(waits)
    return QueueStats(
        jobs=len(waits),
        mean_wait=float(arr.mean()),
        median_wait=float(np.median(arr)),
        p95_wait=float(np.quantile(arr, 0.95)),
        max_wait=float(arr.max()),
    )


@dataclass(frozen=True)
class BalanceStats:
    """Load spread across devices (imbalance hurts makespan tails)."""

    devices: int
    offloads_per_device: tuple[int, ...]
    work_per_device: tuple[float, ...]

    @property
    def work_imbalance(self) -> float:
        """max/mean of per-device completed work (1.0 = perfectly even)."""
        work = np.asarray(self.work_per_device)
        if work.size == 0 or work.mean() == 0:
            return 1.0
        return float(work.max() / work.mean())


def balance_stats(devices: Sequence[XeonPhi]) -> BalanceStats:
    """Completed offload work per device."""
    offloads = []
    work = []
    for device in devices:
        completed = [r for r in device.offload_log if r.completed]
        offloads.append(len(completed))
        work.append(sum(r.work for r in completed))
    return BalanceStats(
        devices=len(devices),
        offloads_per_device=tuple(offloads),
        work_per_device=tuple(work),
    )


def concurrency_profile(device: XeonPhi, start: float, end: float,
                        buckets: int = 20) -> list[float]:
    """Mean busy-thread fraction per time bucket (feeds histograms).

    Each bucket mean bisects to its first overlapping telemetry segment
    and walks only the segments inside the bucket, so profiling costs
    O(buckets · log n + n) overall rather than the O(buckets · n) a
    linear scan per bucket would — long traces can be bucketed finely.
    """
    if end <= start:
        raise ValueError("end must be after start")
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    budget = device.spec.hardware_threads
    step = (end - start) / buckets
    series = device.telemetry.busy_threads
    return [
        series.mean(start + i * step, start + (i + 1) * step) / budget
        for i in range(buckets)
    ]
