"""Replication statistics: mean / spread / confidence over seeds.

The paper reports single-run numbers; for a simulator it is cheap to do
better. These helpers rerun an experiment across seeds and summarize the
distribution of any scalar metric, so benches and users can distinguish
real effects from workload-draw noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

#: Two-sided t critical values at 95% for small sample sizes (df 1..30).
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093,
    20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


@dataclass(frozen=True)
class Replicated:
    """Distribution summary of one scalar over replications."""

    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def stderr(self) -> float:
        if self.n < 2:
            return 0.0
        return self.std / math.sqrt(self.n)

    @property
    def ci95(self) -> tuple[float, float]:
        """95% t-interval for the mean."""
        if self.n < 2:
            return (self.mean, self.mean)
        t = _T95.get(self.n - 1, 1.96)
        half = t * self.stderr
        return (self.mean - half, self.mean + half)

    @property
    def minimum(self) -> float:
        return float(min(self.values))

    @property
    def maximum(self) -> float:
        return float(max(self.values))

    def __str__(self) -> str:
        lo, hi = self.ci95
        return f"{self.mean:.1f} ± {hi - self.mean:.1f} (n={self.n})"


def replicate(
    metric: Callable[[int], float],
    seeds: Sequence[int],
) -> Replicated:
    """Evaluate ``metric(seed)`` for every seed and summarize."""
    if not seeds:
        raise ValueError("need at least one seed")
    return Replicated(values=tuple(float(metric(seed)) for seed in seeds))


def compare(
    a: Replicated, b: Replicated
) -> float:
    """Welch's t statistic for mean(a) - mean(b) (|t| > ~2 is a real gap)."""
    if a.n < 2 or b.n < 2:
        raise ValueError("need at least two replications per side")
    denominator = math.sqrt(a.stderr**2 + b.stderr**2)
    if denominator == 0:
        return 0.0 if a.mean == b.mean else math.inf
    return (a.mean - b.mean) / denominator
