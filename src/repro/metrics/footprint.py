"""Coprocessor footprint: the smallest cluster matching a target makespan.

Table II / Table III of the paper report, for each sharing configuration,
"the cluster size required to achieve the same makespan as the baseline
(MC) on an 8-node cluster". Because makespan decreases monotonically (in
expectation) with cluster size, a linear scan from 1 node upward finds
the minimum; the paper reports integer node counts the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class FootprintResult:
    """Outcome of a footprint search."""

    target_makespan: float
    cluster_size: Optional[int]  # None: target unreachable within max size
    makespans: dict[int, float]  # size -> measured makespan

    @property
    def found(self) -> bool:
        return self.cluster_size is not None

    def reduction_vs(self, reference_size: int) -> Optional[float]:
        """Fractional cluster-size reduction against a reference size."""
        if self.cluster_size is None:
            return None
        return 1.0 - self.cluster_size / reference_size


def find_footprint(
    run_at_size: Callable[[int], float],
    target_makespan: float,
    max_size: int,
    min_size: int = 1,
) -> FootprintResult:
    """Smallest ``size`` in [min_size, max_size] whose makespan meets target.

    Parameters
    ----------
    run_at_size:
        Callable running the workload on a cluster of the given size and
        returning its makespan (simulated seconds).
    target_makespan:
        The makespan to match or beat (the MC baseline's).
    max_size:
        Upper bound on cluster size (the paper's reference size, 8).
    """
    if target_makespan <= 0:
        raise ValueError("target_makespan must be positive")
    if min_size < 1 or max_size < min_size:
        raise ValueError("need 1 <= min_size <= max_size")
    makespans: dict[int, float] = {}
    for size in range(min_size, max_size + 1):
        makespan = run_at_size(size)
        makespans[size] = makespan
        if makespan <= target_makespan:
            break
    return footprint_from_curve(target_makespan, makespans)


def footprint_from_curve(
    target_makespan: float, makespans: dict[int, float]
) -> FootprintResult:
    """Footprint from an already-measured makespan-vs-size curve.

    The parallel harness computes every size of the sweep as an
    independent cell, so the search reduces to scanning the finished
    curve: the smallest size whose makespan meets the target. Produces
    the same ``cluster_size`` as the incremental scan in
    :func:`find_footprint`.
    """
    if target_makespan <= 0:
        raise ValueError("target_makespan must be positive")
    for size in sorted(makespans):
        if makespans[size] <= target_makespan:
            return FootprintResult(target_makespan, size, dict(makespans))
    return FootprintResult(target_makespan, None, dict(makespans))
