"""Makespan extraction and job-level timing statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..mpss.runtime import JobRunResult


@dataclass(frozen=True)
class MakespanStats:
    """Timing statistics over a set of completed job runs."""

    makespan: float
    mean_wall_time: float
    max_wall_time: float
    mean_queue_to_start: float
    jobs: int

    @property
    def throughput(self) -> float:
        """Jobs per simulated second over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.jobs / self.makespan


def makespan_of(results: Sequence[JobRunResult]) -> float:
    """Completion time of the last job (submission assumed at t=0)."""
    return max((r.end for r in results), default=0.0)


def summarize(results: Sequence[JobRunResult]) -> MakespanStats:
    """Aggregate timing statistics for one run's job results."""
    if not results:
        return MakespanStats(0.0, 0.0, 0.0, 0.0, 0)
    walls = [r.wall_time for r in results]
    return MakespanStats(
        makespan=makespan_of(results),
        mean_wall_time=sum(walls) / len(walls),
        max_wall_time=max(walls),
        mean_queue_to_start=sum(r.start for r in results) / len(results),
        jobs=len(results),
    )
