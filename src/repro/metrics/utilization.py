"""Cluster-level coprocessor utilization analysis (§III's metric)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..phi.device import XeonPhi


@dataclass(frozen=True)
class UtilizationSummary:
    """Core-utilization statistics across a cluster's devices."""

    per_device: tuple[float, ...]

    @property
    def mean(self) -> float:
        if not self.per_device:
            return 0.0
        return sum(self.per_device) / len(self.per_device)

    @property
    def minimum(self) -> float:
        return min(self.per_device, default=0.0)

    @property
    def maximum(self) -> float:
        return max(self.per_device, default=0.0)


def cluster_utilization(
    devices: Sequence[XeonPhi], start: float, end: float
) -> UtilizationSummary:
    """Average busy-core fraction for each device over ``[start, end]``.

    Cost per device is O(log n + s) in the telemetry length n and the
    s segments overlapping the window (windows anchored at the start of
    the trace are O(log n) outright via the StepSeries prefix sums), so
    summarizing a full run stays cheap even for long traces.
    """
    return UtilizationSummary(
        per_device=tuple(
            device.telemetry.core_utilization(device.spec.cores, start, end)
            for device in devices
        )
    )


def mean_busy_cores(devices: Sequence[XeonPhi], start: float, end: float) -> float:
    """Time-average number of busy cores summed across devices."""
    return sum(
        device.telemetry.busy_cores.mean(start, end) for device in devices
    )
