"""ASCII timeline rendering of device activity (a text Gantt chart).

Turns a device's busy-thread step series into a row of glyphs so the
sharing behaviour the paper illustrates in Figs. 2-3 — offload bursts,
host gaps, overlap under sharing — is visible straight from a terminal.
"""

from __future__ import annotations

from typing import Sequence

from ..phi.device import XeonPhi

#: Glyph ramp from idle to fully busy.
_RAMP = " .:-=+*#%@"


def _glyph(fraction: float) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    index = min(int(fraction * (len(_RAMP) - 1) + 0.5), len(_RAMP) - 1)
    return _RAMP[index]


def device_timeline(
    device: XeonPhi, start: float, end: float, width: int = 80
) -> str:
    """One row: mean busy-thread fraction per time bucket, as glyphs."""
    if end <= start:
        raise ValueError("end must be after start")
    if width <= 0:
        raise ValueError("width must be positive")
    budget = device.spec.hardware_threads
    series = device.telemetry.busy_threads
    step = (end - start) / width
    row = []
    for i in range(width):
        lo = start + i * step
        hi = lo + step
        row.append(_glyph(series.mean(lo, hi) / budget))
    return "".join(row)


def cluster_timeline(
    devices: Sequence[XeonPhi], start: float, end: float, width: int = 80
) -> str:
    """One labelled row per device plus a time axis."""
    label_w = max((len(d.name) for d in devices), default=0)
    lines = [
        f"{device.name.ljust(label_w)} |{device_timeline(device, start, end, width)}|"
        for device in devices
    ]
    axis = f"{'':{label_w}} +{'-' * width}+"
    scale = (
        f"{'':{label_w}}  t={start:.0f}s"
        f"{'':{max(0, width - 16)}}t={end:.0f}s"
    )
    return "\n".join([axis, *lines, axis, scale])


def legend() -> str:
    """Explain the glyph ramp."""
    return f"thread occupancy: idle '{_RAMP[0]}' ... full '{_RAMP[-1]}' ({_RAMP})"
