"""Metrics: makespan, coprocessor utilization, cluster footprint, reports."""

from .analysis import (
    BalanceStats,
    INFRA_STATUSES,
    JobOutcomeStats,
    KILL_STATUSES,
    OffloadStats,
    QueueStats,
    balance_stats,
    concurrency_profile,
    job_outcomes,
    offload_stats,
    queue_stats,
)
from .footprint import FootprintResult, find_footprint, footprint_from_curve
from .replication import Replicated, compare, replicate
from .makespan import MakespanStats, makespan_of, summarize
from .timeline import cluster_timeline, device_timeline, legend
from .report import (
    ascii_bar_chart,
    format_outcome_counts,
    format_series,
    format_table,
    percent_reduction,
)
from .utilization import UtilizationSummary, cluster_utilization, mean_busy_cores

__all__ = [
    "BalanceStats",
    "FootprintResult",
    "INFRA_STATUSES",
    "JobOutcomeStats",
    "KILL_STATUSES",
    "OffloadStats",
    "QueueStats",
    "Replicated",
    "balance_stats",
    "compare",
    "concurrency_profile",
    "format_outcome_counts",
    "job_outcomes",
    "offload_stats",
    "queue_stats",
    "replicate",
    "MakespanStats",
    "UtilizationSummary",
    "ascii_bar_chart",
    "cluster_timeline",
    "cluster_utilization",
    "device_timeline",
    "find_footprint",
    "footprint_from_curve",
    "format_series",
    "format_table",
    "legend",
    "makespan_of",
    "mean_busy_cores",
    "percent_reduction",
    "summarize",
]
