"""The startd: a compute node's slot manager and job starter.

Each node exposes host *slots* (one job per slot, §IV-D1) and binds the
Condor layer to the node's execution engine. Starting a job reproduces
the shadow/starter handshake as a fixed dispatch latency, then drives the
node executor (MPSS + optional COSMIC) to completion and reports back to
the schedd.

Failure model: the startd also owns the node-side failure surface. It
tracks the jobs it is currently running so the fault injector can
interrupt them (one job, one device's worth, or the whole node), and the
starter classifies every death through the ``fault_status`` attribute
protocol (see :mod:`repro.faults.errors`): an infrastructure failure is
reported via :meth:`Schedd.mark_failed` (retryable), while
kill-by-container outcomes keep flowing through ``mark_completed``.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

from ..faults.errors import fault_status_of
from ..mpss.runtime import JobRunResult
from ..obs import audit as _audit
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..sim import Environment, Interrupt
from ..workloads.profiles import JobProfile
from .ads import DeviceSnapshot, MachineSnapshot, slot_name
from .schedd import JobRecord, Schedd, job_tid


class NodeExecutor(Protocol):
    """What the startd needs from the node (implemented by ComputeNode)."""

    name: str

    def execute(
        self, profile: JobProfile, device_index: Optional[int], exclusive: bool
    ):
        """Generator running the job; returns a JobRunResult."""

    def device_states(self) -> list[DeviceSnapshot]:
        """Current per-device free declared memory / residency."""


class Startd:
    """Slot accounting and the starter process for one node.

    Parameters
    ----------
    env, schedd:
        Simulation environment and the queue to report completions to.
    executor:
        The node's execution engine.
    slots:
        Host slots (the paper's nodes expose one slot per host core pair;
        we default to 16 = 2 sockets x 8 cores).
    dispatch_latency:
        Simulated seconds for the shadow/starter handshake and input file
        transfer before the job begins executing.
    """

    def __init__(
        self,
        env: Environment,
        schedd: Schedd,
        executor: NodeExecutor,
        slots: int = 16,
        dispatch_latency: float = 1.0,
    ) -> None:
        if slots <= 0:
            raise ValueError("slots must be positive")
        if dispatch_latency < 0:
            raise ValueError("dispatch_latency must be non-negative")
        self.env = env
        self.schedd = schedd
        self.executor = executor
        self.slots = slots
        self.dispatch_latency = dispatch_latency
        self._busy_slots = 0
        self._exclusive_claims: set[int] = set()
        self.started_jobs = 0
        #: False while the node is crashed; a dead startd accepts no jobs.
        self.alive = True
        #: Jobs currently running here: job_id -> (record, process, device).
        self._active: dict[str, tuple[JobRecord, Any, Optional[int]]] = {}
        #: Fabric mode only: the claim agent reporting outcomes for
        #: leased runs (set by :class:`repro.condor.claims.StartdClaimAgent`).
        self.claim_agent: Optional[Any] = None
        #: Fabric mode only: job_id -> lease for leased runs.
        self._leases: dict[str, Any] = {}
        #: Set by :meth:`Collector.register`: receives membership
        #: refreshes when the free-slot count crosses zero or liveness
        #: flips, so the collector's candidate set stays delta-current.
        self.watcher: Optional[Any] = None

    def _notify_watcher(self) -> None:
        if self.watcher is not None:
            self.watcher.refresh_membership(self)

    @property
    def name(self) -> str:
        return self.executor.name

    @property
    def ad_name(self) -> str:
        """The slot name this node advertises (``Name`` in its ad)."""
        return slot_name(self.name)

    @property
    def free_slots(self) -> int:
        return self.slots - self._busy_slots

    @property
    def active_jobs(self) -> int:
        return len(self._active)

    def snapshot(self) -> MachineSnapshot:
        """The node's negotiation-time state (collector update)."""
        devices = []
        for state in self.executor.device_states():
            devices.append(
                DeviceSnapshot(
                    index=state.index,
                    memory_mb=state.memory_mb,
                    free_declared_mb=state.free_declared_mb,
                    resident_jobs=state.resident_jobs,
                    hardware_threads=state.hardware_threads,
                    claimed_exclusive=state.index in self._exclusive_claims,
                    failed=state.failed,
                )
            )
        return MachineSnapshot(
            node=self.name,
            total_slots=self.slots,
            free_slots=self.free_slots,
            devices=devices,
        )

    def claim_error(
        self,
        record: JobRecord,
        device_index: Optional[int],
        exclusive: bool,
    ) -> Optional[str]:
        """Why a claim cannot be accepted right now (``None`` = it can).

        The fabric-mode negotiator works from a stale collector view, so
        over-commitment is normal; the claim agent turns these reasons
        into claim-reject messages instead of crashes.
        """
        if not self.alive:
            return "node-down"
        if self.free_slots <= 0:
            return "no-free-slots"
        if record.job_id in self._active:
            return "job-already-active"
        if exclusive:
            if device_index is None:
                return "exclusive-needs-device"
            if device_index in self._exclusive_claims:
                return "device-claimed"
        return None

    def start_job(
        self,
        record: JobRecord,
        device_index: Optional[int],
        exclusive: bool,
    ) -> None:
        """Claim a slot (and optionally a device) and launch the starter."""
        if not self.alive:
            raise RuntimeError(f"{self.name}: node is down")
        if self.free_slots <= 0:
            raise RuntimeError(f"{self.name}: no free slots")
        if exclusive:
            if device_index is None:
                raise ValueError("exclusive start requires a device index")
            if device_index in self._exclusive_claims:
                raise RuntimeError(
                    f"{self.name}: device {device_index} already claimed"
                )
        self.schedd.mark_running(record.job_id, self.name, device_index)
        self._launch(record, device_index, exclusive)

    def start_claimed(
        self,
        record: JobRecord,
        device_index: Optional[int],
        exclusive: bool,
        lease: Any,
    ) -> None:
        """Launch an already-validated, leased claim (fabric mode).

        The schedd is *not* marked running here — that happens when the
        job-started message reaches it; the lease's watchdog bounds how
        long the run may outlive the schedd's knowledge of it.
        """
        self._leases[record.job_id] = lease
        self._launch(record, device_index, exclusive)

    def _launch(
        self,
        record: JobRecord,
        device_index: Optional[int],
        exclusive: bool,
    ) -> None:
        if exclusive and device_index is not None:
            self._exclusive_claims.add(device_index)
        self._busy_slots += 1
        if self._busy_slots == self.slots:
            self._notify_watcher()
        self.started_jobs += 1
        auditor = _audit.ACTIVE
        if auditor is not None:
            auditor.slot_claimed(
                self.name, record.job_id, self.slots, self.env.now
            )
            auditor.run_started(self.name, record.job_id, self.env.now)
        proc = self.env.process(
            self._starter(record, device_index, exclusive),
            name=f"starter:{record.job_id}@{self.name}",
        )
        self._active[record.job_id] = (record, proc, device_index)

    # -- failure surface ----------------------------------------------------

    def interrupt_job(self, job_id: str, cause: Any) -> bool:
        """Interrupt one running job with a fault cause; True if hit."""
        entry = self._active.get(job_id)
        if entry is None:
            return False
        _record, proc, _device = entry
        if not proc.is_alive:
            return False
        proc.interrupt(cause)
        return True

    def fail_device_jobs(self, device_index: int, cause: Any) -> int:
        """Interrupt every active job matched to ``device_index``."""
        hit = 0
        for job_id, (_record, proc, device) in list(self._active.items()):
            if device == device_index and proc.is_alive:
                proc.interrupt(cause)
                hit += 1
        return hit

    def fail_node(self, cause: Any) -> int:
        """Crash the node: stop accepting jobs, interrupt all active ones.

        Slot and claim bookkeeping unwinds through each starter's
        ``finally`` as the interrupts land.
        """
        self.alive = False
        self._notify_watcher()
        hit = 0
        for job_id, (_record, proc, _device) in list(self._active.items()):
            if proc.is_alive:
                proc.interrupt(cause)
                hit += 1
        return hit

    def restore(self) -> None:
        """Bring a crashed node back into service."""
        self.alive = True
        self._notify_watcher()

    # -- the starter ---------------------------------------------------------

    def _starter(self, record: JobRecord, device_index, exclusive):
        started = self.env.now
        result: Optional[JobRunResult] = None
        failure_status: Optional[str] = None
        job_id = record.job_id
        tracer = _trace.ACTIVE
        if tracer is not None:
            root = tracer.get(("job", job_id))
            tid = job_tid(record)
            tracer.begin_keyed(
                ("dispatch", job_id),
                "dispatch",
                "startd",
                started,
                tid=tid,
                parent=root,
                node=self.name,
            )
        try:
            try:
                if self.dispatch_latency > 0:
                    yield self.env.timeout(self.dispatch_latency)
                if tracer is not None:
                    tracer.end_keyed(("dispatch", job_id), self.env.now)
                    tracer.begin_keyed(
                        ("run", job_id),
                        "run",
                        "startd",
                        self.env.now,
                        tid=job_tid(record),
                        parent=tracer.get(("job", job_id)),
                        node=self.name,
                        device=device_index,
                        exclusive=exclusive,
                    )
                result = yield from self.executor.execute(
                    record.profile, device_index, exclusive
                )
            except Interrupt as interrupt:
                failure_status = fault_status_of(interrupt.cause)
                if failure_status is None:
                    raise  # not a fault: a genuine simulation error
            except Exception as exc:
                failure_status = fault_status_of(exc)
                if failure_status is None:
                    raise
        finally:
            self._active.pop(record.job_id, None)
            self._busy_slots -= 1
            if self._busy_slots == self.slots - 1:
                self._notify_watcher()
            if exclusive and device_index is not None:
                self._exclusive_claims.discard(device_index)
            lease = self._leases.pop(record.job_id, None)
            auditor = _audit.ACTIVE
            if auditor is not None:
                auditor.run_ended(self.name, record.job_id, self.env.now)
                auditor.slot_released(self.name, record.job_id, self.env.now)
            if tracer is not None:
                # Whichever stage the job died in (a fault can land
                # during the dispatch handshake) is still open: close it.
                tracer.end_keyed(("dispatch", job_id), self.env.now)
                status = (
                    failure_status
                    if failure_status is not None
                    else (result.status if result is not None else "completed")
                )
                span = tracer.end_keyed(("run", job_id), self.env.now, status=status)
                registry = _metrics.ACTIVE
                if registry is not None and span is not None:
                    registry.histogram("job.run_s").observe(span.end - span.start)
        if failure_status is not None:
            failed = JobRunResult(
                job_id=record.job_id,
                start=started,
                end=self.env.now,
                status=failure_status,
                offloads_run=0,
                attempt=record.attempts,
            )
            if lease is not None:
                # Fabric mode: the outcome travels back as a job-done
                # message through the claim agent, not a direct call.
                self.claim_agent.report_done(record, failed, True, lease)
            else:
                self.schedd.mark_failed(record.job_id, failed)
            return
        assert isinstance(result, JobRunResult)
        result.attempt = record.attempts
        if lease is not None:
            self.claim_agent.report_done(record, result, False, lease)
        else:
            self.schedd.mark_completed(record.job_id, result)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<Startd {self.name} ({state}) slots={self.free_slots}/{self.slots}>"
