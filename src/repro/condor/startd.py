"""The startd: a compute node's slot manager and job starter.

Each node exposes host *slots* (one job per slot, §IV-D1) and binds the
Condor layer to the node's execution engine. Starting a job reproduces
the shadow/starter handshake as a fixed dispatch latency, then drives the
node executor (MPSS + optional COSMIC) to completion and reports back to
the schedd.
"""

from __future__ import annotations

from typing import Optional, Protocol

from ..mpss.runtime import JobRunResult
from ..sim import Environment
from ..workloads.profiles import JobProfile
from .ads import DeviceSnapshot, MachineSnapshot
from .schedd import JobRecord, Schedd


class NodeExecutor(Protocol):
    """What the startd needs from the node (implemented by ComputeNode)."""

    name: str

    def execute(
        self, profile: JobProfile, device_index: Optional[int], exclusive: bool
    ):
        """Generator running the job; returns a JobRunResult."""

    def device_states(self) -> list[DeviceSnapshot]:
        """Current per-device free declared memory / residency."""


class Startd:
    """Slot accounting and the starter process for one node.

    Parameters
    ----------
    env, schedd:
        Simulation environment and the queue to report completions to.
    executor:
        The node's execution engine.
    slots:
        Host slots (the paper's nodes expose one slot per host core pair;
        we default to 16 = 2 sockets x 8 cores).
    dispatch_latency:
        Simulated seconds for the shadow/starter handshake and input file
        transfer before the job begins executing.
    """

    def __init__(
        self,
        env: Environment,
        schedd: Schedd,
        executor: NodeExecutor,
        slots: int = 16,
        dispatch_latency: float = 1.0,
    ) -> None:
        if slots <= 0:
            raise ValueError("slots must be positive")
        if dispatch_latency < 0:
            raise ValueError("dispatch_latency must be non-negative")
        self.env = env
        self.schedd = schedd
        self.executor = executor
        self.slots = slots
        self.dispatch_latency = dispatch_latency
        self._busy_slots = 0
        self._exclusive_claims: set[int] = set()
        self.started_jobs = 0

    @property
    def name(self) -> str:
        return self.executor.name

    @property
    def free_slots(self) -> int:
        return self.slots - self._busy_slots

    def snapshot(self) -> MachineSnapshot:
        """The node's negotiation-time state (collector update)."""
        devices = []
        for state in self.executor.device_states():
            devices.append(
                DeviceSnapshot(
                    index=state.index,
                    memory_mb=state.memory_mb,
                    free_declared_mb=state.free_declared_mb,
                    resident_jobs=state.resident_jobs,
                    hardware_threads=state.hardware_threads,
                    claimed_exclusive=state.index in self._exclusive_claims,
                )
            )
        return MachineSnapshot(
            node=self.name,
            total_slots=self.slots,
            free_slots=self.free_slots,
            devices=devices,
        )

    def start_job(
        self,
        record: JobRecord,
        device_index: Optional[int],
        exclusive: bool,
    ) -> None:
        """Claim a slot (and optionally a device) and launch the starter."""
        if self.free_slots <= 0:
            raise RuntimeError(f"{self.name}: no free slots")
        if exclusive:
            if device_index is None:
                raise ValueError("exclusive start requires a device index")
            if device_index in self._exclusive_claims:
                raise RuntimeError(
                    f"{self.name}: device {device_index} already claimed"
                )
            self._exclusive_claims.add(device_index)
        self._busy_slots += 1
        self.started_jobs += 1
        self.schedd.mark_running(record.job_id, self.name, device_index)
        self.env.process(
            self._starter(record, device_index, exclusive),
            name=f"starter:{record.job_id}@{self.name}",
        )

    def _starter(self, record: JobRecord, device_index, exclusive):
        try:
            if self.dispatch_latency > 0:
                yield self.env.timeout(self.dispatch_latency)
            result = yield from self.executor.execute(
                record.profile, device_index, exclusive
            )
        finally:
            self._busy_slots -= 1
            if exclusive and device_index is not None:
                self._exclusive_claims.discard(device_index)
        assert isinstance(result, JobRunResult)
        self.schedd.mark_completed(record.job_id, result)

    def __repr__(self) -> str:
        return f"<Startd {self.name} slots={self.free_slots}/{self.slots}>"
