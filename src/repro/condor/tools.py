"""Operator-facing status formatters: ``condor_q`` and ``condor_status``.

Render the live state of a pool the way the real CLI tools would — handy
in examples and when debugging schedules interactively.
"""

from __future__ import annotations

from ..metrics.report import format_table
from .ads import slot_name
from .pool import CondorPool
from .schedd import COMPLETED, IDLE, RUNNING, Schedd


def condor_q(schedd: Schedd, show_completed: bool = False) -> str:
    """The job queue, one row per job."""
    rows = []
    for record in schedd.all_records():
        if record.status == COMPLETED and not show_completed:
            continue
        rows.append(
            [
                record.job_id,
                record.profile.app,
                record.status,
                f"{record.profile.declared_memory_mb:.0f}",
                record.profile.declared_threads,
                record.matched_node or "-",
            ]
        )
    counts = (
        f"{schedd.total_jobs} jobs; "
        f"{len(schedd.pending())} idle, {len(schedd.running())} running, "
        f"{len(schedd.completed())} completed"
    )
    table = format_table(
        ["ID", "APP", "ST", "PHI_MEM", "PHI_THREADS", "NODE"],
        rows,
        title="-- Schedd queue",
    )
    return f"{table}\n{counts}"


def condor_status(pool: CondorPool) -> str:
    """Machine status, one row per node."""
    rows = []
    for startd in pool.startds:
        snapshot = startd.snapshot()
        for device in snapshot.devices:
            rows.append(
                [
                    slot_name(snapshot.node),
                    f"mic{device.index}",
                    f"{snapshot.free_slots}/{snapshot.total_slots}",
                    f"{device.free_declared_mb:.0f}",
                    device.resident_jobs,
                    "Claimed" if device.claimed_exclusive else "Unclaimed",
                ]
            )
    return format_table(
        ["NAME", "PHI", "FREE_SLOTS", "PHI_FREE_MB", "PHI_JOBS", "STATE"],
        rows,
        title="-- Pool status",
    )
