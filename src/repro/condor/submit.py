"""Condor submit-description files and the classic ClassAd text format.

The paper's users interact with the system through ordinary Condor
submit files ("Each job specifies its preferences for the number of Xeon
Phi devices and memory in its job script", §IV-D1). This module parses
that surface:

* :func:`parse_submit` — the ``attribute = value`` submit-description
  format, with ``queue [N]`` statements producing one job ad per queued
  instance and ``$(Process)`` macro expansion;
* :func:`parse_classad_text` / :func:`format_classad` — the old-style
  one-attribute-per-line ClassAd serialization Condor tools print, so
  ads round-trip through text.

Submit-file attributes understood specially (case-insensitive, matching
the resource-request convention):

* ``request_phi_devices``, ``request_phi_memory`` (MB),
  ``request_phi_threads`` — the paper's two user-declared quantities
  plus the device count;
* ``requirements`` — stored as an expression;
* everything else is stored verbatim (strings stay strings, numbers
  become numbers).
"""

from __future__ import annotations

import re
from typing import Optional

from .classad import ClassAd, ClassAdError, parse


class SubmitError(Exception):
    """Malformed submit description."""


_LINE_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_.]*)\s*=\s*(.*?)\s*$")
_QUEUE_RE = re.compile(r"^\s*queue(?:\s+(\d+))?\s*$", re.IGNORECASE)
_COMMENT_RE = re.compile(r"^\s*(#.*)?$")

#: Submit keys that are expressions rather than literals.
_EXPRESSION_KEYS = {"requirements", "rank"}

#: Canonical ad attribute for each recognized submit key.
_RENAMES = {
    "request_phi_devices": "RequestPhiDevices",
    "request_phi_memory": "RequestPhiMemory",
    "request_phi_threads": "RequestPhiThreads",
    "executable": "Cmd",
    "arguments": "Args",
}


def _coerce(raw: str):
    """Submit values: quoted strings stay strings; numbers become numbers;
    booleans become booleans; everything else is a verbatim string."""
    text = raw.strip()
    if len(text) >= 2 and text[0] == '"' and text[-1] == '"':
        return text[1:-1]
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_submit(text: str, cluster_id: int = 1) -> list[ClassAd]:
    """Parse a submit description into one job ad per queued instance.

    ``$(Process)`` and ``$(Cluster)`` macros are expanded in string
    values, as ``condor_submit`` does.
    """
    pending: dict[str, tuple[str, bool]] = {}
    ads: list[ClassAd] = []
    process = 0

    for lineno, line in enumerate(text.splitlines(), start=1):
        if _COMMENT_RE.match(line):
            continue
        queue_match = _QUEUE_RE.match(line)
        if queue_match:
            count = int(queue_match.group(1) or 1)
            if count <= 0:
                raise SubmitError(f"line {lineno}: queue count must be positive")
            for _ in range(count):
                ads.append(_materialize(pending, cluster_id, process))
                process += 1
            continue
        attr_match = _LINE_RE.match(line)
        if attr_match is None:
            raise SubmitError(f"line {lineno}: cannot parse {line.strip()!r}")
        key, value = attr_match.group(1).lower(), attr_match.group(2)
        pending[key] = (value, key in _EXPRESSION_KEYS)

    if not ads:
        raise SubmitError("submit description contains no 'queue' statement")
    return ads


def _materialize(pending: dict[str, tuple[str, bool]], cluster: int,
                 process: int) -> ClassAd:
    ad = ClassAd({"ClusterId": cluster, "ProcId": process})
    for key, (raw, is_expression) in pending.items():
        name = _RENAMES.get(key, _camel(key))
        expanded = raw.replace("$(Process)", str(process)).replace(
            "$(Cluster)", str(cluster)
        )
        if is_expression:
            try:
                ad.set_expr(name, expanded)
            except ClassAdError as exc:
                raise SubmitError(f"bad expression for {key}: {exc}") from exc
        else:
            ad[name] = _coerce(expanded)
    return ad


def _camel(key: str) -> str:
    return "".join(part.capitalize() for part in key.split("_"))


# ---------------------------------------------------------------------------
# Old-style ClassAd text serialization
# ---------------------------------------------------------------------------


def format_classad(ad: ClassAd) -> str:
    """Serialize an ad in the classic one-attribute-per-line format.

    Expressions that were stored as literals are rendered as literals;
    parsed expressions are *not* reconstructable in general, so this
    formatter renders the evaluated value for non-literal attributes —
    matching what ``condor_status -long`` shows for a static ad.
    """
    from .classad import ERROR, Literal, UNDEFINED

    lines = []
    for name in ad.keys():
        expr = ad.get_expr(name)
        if isinstance(expr, Literal):
            lines.append(f"{name} = {_render_value(expr.value)}")
        else:
            value = ad.evaluate(name)
            if value is UNDEFINED or value is ERROR:
                lines.append(f"{name} = {value!r}".replace("'", ""))
            else:
                lines.append(f"{name} = {_render_value(value)}")
    return "\n".join(lines)


def _render_value(value) -> str:
    from .classad import ERROR, UNDEFINED

    if value is UNDEFINED:
        return "undefined"
    if value is ERROR:
        return "error"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)


def parse_classad_text(text: str) -> ClassAd:
    """Parse the classic one-attribute-per-line ClassAd format."""
    ad = ClassAd()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _COMMENT_RE.match(line):
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise ClassAdError(f"line {lineno}: cannot parse {line.strip()!r}")
        name, raw = match.group(1), match.group(2)
        ad.set_expr(name, raw)
    return ad


def roundtrip(ad: ClassAd) -> ClassAd:
    """format -> parse; used by tests to check serialization fidelity."""
    return parse_classad_text(format_classad(ad))
