"""A ClassAd expression language: lexer, parser, and evaluator.

HTCondor's matchmaking rests on ClassAds: each job and each machine is a
set of named attributes whose values are literals or expressions, and
matching evaluates each side's ``Requirements`` expression in the context
of the *pair* of ads (§II-D). This module implements the subset of the
language the paper's integration exercises:

* literals: integers, floats, double-quoted strings, ``true``/``false``,
  ``undefined``, ``error``;
* attribute references, optionally scoped: ``MY.Memory``, ``TARGET.Name``;
* arithmetic ``+ - * /``, comparisons ``== != < <= > >=``, boolean
  ``&& || !``, unary minus, parentheses, ternary ``?:``;
* the meta-equality operators ``=?=`` (is) and ``=!=`` (isnt), which never
  yield ``undefined``;
* a small builtin function library.

Evaluation follows ClassAd three-valued logic: ``undefined`` propagates
through strict operators, while ``&&``/``||`` short-circuit around it
(``False && undefined -> False``; ``True || undefined -> True``).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Optional, Union


class ClassAdError(Exception):
    """Syntax or evaluation error in a ClassAd expression."""


class _Marker:
    """Singleton sentinels for the UNDEFINED / ERROR values."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __bool__(self) -> bool:
        raise ClassAdError(f"{self.name} has no boolean value")


#: The ClassAd ``undefined`` value (missing attribute, undefined operand).
UNDEFINED = _Marker("UNDEFINED")
#: The ClassAd ``error`` value (type errors, division by zero).
ERROR = _Marker("ERROR")


class _MissingType:
    """Sentinel returned by :meth:`ClassAd.raw` for an absent attribute.

    Distinct from UNDEFINED: an attribute can be *present* with the
    literal value ``undefined``, and unscoped lookup treats the two
    differently only in that both fall through to the target ad — the
    compiled evaluator needs to tell them apart from real values either
    way, and identity checks against this sentinel are cheaper than
    exception handling.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "MISSING"


MISSING = _MissingType()

Value = Union[int, float, str, bool, _Marker]

#: Route ``ClassAd.evaluate`` through compiled closures (see
#: :mod:`repro.condor.compile`). Disabled, every evaluation walks the
#: interpreted AST exactly as before the compiler existed — the
#: matchmaking benchmark uses this to measure its baseline, and the
#: equivalence property tests compare the two modes directly.
_COMPILE_ENABLED = True
_compile_expr = None  # lazily bound to compile.compile_expr


def set_compilation(enabled: bool) -> None:
    """Globally enable/disable the compiled evaluation path."""
    global _COMPILE_ENABLED
    _COMPILE_ENABLED = bool(enabled)


def compilation_enabled() -> bool:
    return _COMPILE_ENABLED

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+)
  | (?P<int>\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>=\?=|=!=|==|!=|<=|>=|&&|\|\||[-+*/<>!?:(),.])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"true", "false", "undefined", "error", "my", "target"}


def tokenize(text: str) -> list[tuple[str, str]]:
    """Split ``text`` into (kind, lexeme) tokens; raises on junk."""
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ClassAdError(f"unexpected character {text[pos]!r} at {pos}")
        pos = match.end()
        kind = match.lastgroup
        assert kind is not None
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    tokens.append(("end", ""))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class Expr:
    """Base class of expression nodes."""

    def evaluate(self, ctx: "EvalContext") -> Value:
        raise NotImplementedError

    def external_refs(self) -> set[str]:
        """Names of attributes this expression reads."""
        refs: set[str] = set()
        self._collect_refs(refs)
        return refs

    def _collect_refs(self, refs: set[str]) -> None:
        pass


class Literal(Expr):
    def __init__(self, value: Value) -> None:
        self.value = value

    def evaluate(self, ctx: "EvalContext") -> Value:
        return self.value

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


class AttrRef(Expr):
    """An attribute reference; ``scope`` is None, "my" or "target"."""

    def __init__(self, name: str, scope: Optional[str] = None) -> None:
        self.name = name
        self.scope = scope

    def evaluate(self, ctx: "EvalContext") -> Value:
        return ctx.lookup(self.name, self.scope)

    def _collect_refs(self, refs: set[str]) -> None:
        refs.add(self.name.lower())

    def __repr__(self) -> str:
        prefix = f"{self.scope}." if self.scope else ""
        return f"AttrRef({prefix}{self.name})"


class UnaryOp(Expr):
    def __init__(self, op: str, operand: Expr) -> None:
        self.op = op
        self.operand = operand

    def evaluate(self, ctx: "EvalContext") -> Value:
        value = self.operand.evaluate(ctx)
        if value is ERROR:
            return ERROR
        if value is UNDEFINED:
            return UNDEFINED
        if self.op == "-":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return ERROR
            return -value
        if self.op == "!":
            if not isinstance(value, bool):
                return ERROR
            return not value
        raise ClassAdError(f"unknown unary operator {self.op!r}")

    def _collect_refs(self, refs: set[str]) -> None:
        self.operand._collect_refs(refs)


class BinaryOp(Expr):
    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, ctx: "EvalContext") -> Value:
        op = self.op
        if op in ("&&", "||"):
            return self._evaluate_logical(ctx)
        if op in ("=?=", "=!="):
            left = self.left.evaluate(ctx)
            right = self.right.evaluate(ctx)
            same = _meta_equal(left, right)
            return same if op == "=?=" else not same

        left = self.left.evaluate(ctx)
        right = self.right.evaluate(ctx)
        if left is ERROR or right is ERROR:
            return ERROR
        if left is UNDEFINED or right is UNDEFINED:
            return UNDEFINED
        if op in ("+", "-", "*", "/"):
            return self._arith(op, left, right)
        return self._compare(op, left, right)

    def _evaluate_logical(self, ctx: "EvalContext") -> Value:
        left = self.left.evaluate(ctx)
        if left is ERROR:
            return ERROR
        # Short-circuit around definite outcomes.
        if isinstance(left, bool):
            if self.op == "&&" and left is False:
                return False
            if self.op == "||" and left is True:
                return True
        elif left is not UNDEFINED:
            return ERROR  # non-boolean operand to a logical operator
        right = self.right.evaluate(ctx)
        if right is ERROR:
            return ERROR
        if isinstance(right, bool):
            if self.op == "&&" and right is False:
                return False
            if self.op == "||" and right is True:
                return True
        elif right is not UNDEFINED:
            return ERROR
        if left is UNDEFINED or right is UNDEFINED:
            return UNDEFINED
        assert isinstance(left, bool) and isinstance(right, bool)
        return (left and right) if self.op == "&&" else (left or right)

    @staticmethod
    def _arith(op: str, left: Value, right: Value) -> Value:
        if isinstance(left, bool) or isinstance(right, bool):
            return ERROR
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            if op == "+" and isinstance(left, str) and isinstance(right, str):
                return left + right
            return ERROR
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            return ERROR
        result = left / right
        if isinstance(left, int) and isinstance(right, int):
            return int(left / right)  # C-style integer division
        return result

    @staticmethod
    def _compare(op: str, left: Value, right: Value) -> Value:
        if isinstance(left, str) and isinstance(right, str):
            lv, rv = left.lower(), right.lower()  # ClassAd strings: case-insensitive
        elif isinstance(left, bool) and isinstance(right, bool):
            lv, rv = left, right
        elif (
            isinstance(left, (int, float))
            and isinstance(right, (int, float))
            and not isinstance(left, bool)
            and not isinstance(right, bool)
        ):
            lv, rv = left, right
        else:
            return ERROR
        if op == "==":
            return lv == rv
        if op == "!=":
            return lv != rv
        if op == "<":
            return lv < rv
        if op == "<=":
            return lv <= rv
        if op == ">":
            return lv > rv
        if op == ">=":
            return lv >= rv
        raise ClassAdError(f"unknown comparison {op!r}")

    def _collect_refs(self, refs: set[str]) -> None:
        self.left._collect_refs(refs)
        self.right._collect_refs(refs)


class Ternary(Expr):
    def __init__(self, cond: Expr, then: Expr, other: Expr) -> None:
        self.cond = cond
        self.then = then
        self.other = other

    def evaluate(self, ctx: "EvalContext") -> Value:
        cond = self.cond.evaluate(ctx)
        if cond is ERROR or cond is UNDEFINED:
            return cond
        if not isinstance(cond, bool):
            return ERROR
        return self.then.evaluate(ctx) if cond else self.other.evaluate(ctx)

    def _collect_refs(self, refs: set[str]) -> None:
        self.cond._collect_refs(refs)
        self.then._collect_refs(refs)
        self.other._collect_refs(refs)


class FuncCall(Expr):
    def __init__(self, name: str, args: list[Expr]) -> None:
        self.name = name.lower()
        self.args = args

    def evaluate(self, ctx: "EvalContext") -> Value:
        func = _BUILTINS.get(self.name)
        if func is None:
            return ERROR
        values = [arg.evaluate(ctx) for arg in self.args]
        if any(v is ERROR for v in values):
            return ERROR
        try:
            return func(values)
        except ClassAdError:
            return ERROR

    def _collect_refs(self, refs: set[str]) -> None:
        for arg in self.args:
            arg._collect_refs(refs)


def _meta_equal(left: Value, right: Value) -> bool:
    """=?= semantics: identical types and values; UNDEFINED =?= UNDEFINED."""
    if left is UNDEFINED or right is UNDEFINED:
        return left is right
    if left is ERROR or right is ERROR:
        return left is right
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, str) and isinstance(right, str):
        return left.lower() == right.lower()
    if type(left) is type(right) or (
        isinstance(left, (int, float)) and isinstance(right, (int, float))
    ):
        return left == right
    return False


# -- builtin functions -------------------------------------------------------


def _need_number(value: Value) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ClassAdError("number expected")
    return value


def _builtin_floor(args: list[Value]) -> Value:
    (value,) = args
    if value is UNDEFINED:
        return UNDEFINED
    import math

    return int(math.floor(_need_number(value)))


def _builtin_ceiling(args: list[Value]) -> Value:
    (value,) = args
    if value is UNDEFINED:
        return UNDEFINED
    import math

    return int(math.ceil(_need_number(value)))


def _builtin_min(args: list[Value]) -> Value:
    if any(v is UNDEFINED for v in args):
        return UNDEFINED
    return min(_need_number(v) for v in args)


def _builtin_max(args: list[Value]) -> Value:
    if any(v is UNDEFINED for v in args):
        return UNDEFINED
    return max(_need_number(v) for v in args)


def _builtin_strcat(args: list[Value]) -> Value:
    parts = []
    for value in args:
        if value is UNDEFINED:
            return UNDEFINED
        if isinstance(value, bool):
            parts.append("true" if value else "false")
        elif isinstance(value, (int, float, str)):
            parts.append(str(value))
        else:
            raise ClassAdError("bad strcat argument")
    return "".join(parts)


def _builtin_tolower(args: list[Value]) -> Value:
    (value,) = args
    if value is UNDEFINED:
        return UNDEFINED
    if not isinstance(value, str):
        raise ClassAdError("string expected")
    return value.lower()


def _builtin_toupper(args: list[Value]) -> Value:
    (value,) = args
    if value is UNDEFINED:
        return UNDEFINED
    if not isinstance(value, str):
        raise ClassAdError("string expected")
    return value.upper()


def _builtin_string_list_member(args: list[Value]) -> Value:
    item, lst = args
    if item is UNDEFINED or lst is UNDEFINED:
        return UNDEFINED
    if not isinstance(item, str) or not isinstance(lst, str):
        raise ClassAdError("strings expected")
    members = [m.strip().lower() for m in lst.split(",")]
    return item.lower() in members


def _builtin_is_undefined(args: list[Value]) -> Value:
    (value,) = args
    return value is UNDEFINED


_BUILTINS: dict[str, Callable[[list[Value]], Value]] = {
    "floor": _builtin_floor,
    "ceiling": _builtin_ceiling,
    "min": _builtin_min,
    "max": _builtin_max,
    "strcat": _builtin_strcat,
    "tolower": _builtin_tolower,
    "toupper": _builtin_toupper,
    "stringlistmember": _builtin_string_list_member,
    "isundefined": _builtin_is_undefined,
}


# ---------------------------------------------------------------------------
# Parser (precedence climbing)
# ---------------------------------------------------------------------------

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "=?=": 3,
    "=!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
}


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def advance(self) -> tuple[str, str]:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, lexeme: str) -> None:
        kind, text = self.advance()
        if text != lexeme:
            raise ClassAdError(f"expected {lexeme!r}, found {text or 'end'!r}")

    def parse(self) -> Expr:
        expr = self.parse_ternary()
        kind, text = self.peek()
        if kind != "end":
            raise ClassAdError(f"trailing input at {text!r}")
        return expr

    def parse_ternary(self) -> Expr:
        cond = self.parse_binary(1)
        kind, text = self.peek()
        if text == "?":
            self.advance()
            then = self.parse_ternary()
            self.expect(":")
            other = self.parse_ternary()
            return Ternary(cond, then, other)
        return cond

    def parse_binary(self, min_prec: int) -> Expr:
        left = self.parse_unary()
        while True:
            kind, text = self.peek()
            prec = _PRECEDENCE.get(text)
            if kind != "op" or prec is None or prec < min_prec:
                return left
            self.advance()
            right = self.parse_binary(prec + 1)
            left = BinaryOp(text, left, right)

    def parse_unary(self) -> Expr:
        kind, text = self.peek()
        if text in ("-", "!"):
            self.advance()
            return UnaryOp(text, self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        kind, text = self.advance()
        if kind == "int":
            return Literal(int(text))
        if kind == "float":
            return Literal(float(text))
        if kind == "string":
            return Literal(_unescape(text[1:-1]))
        if kind == "name":
            lowered = text.lower()
            if lowered == "true":
                return Literal(True)
            if lowered == "false":
                return Literal(False)
            if lowered == "undefined":
                return Literal(UNDEFINED)
            if lowered == "error":
                return Literal(ERROR)
            if lowered in ("my", "target") and self.peek()[1] == ".":
                self.advance()  # consume '.'
                nkind, ntext = self.advance()
                if nkind != "name":
                    raise ClassAdError(f"attribute name expected after {text}.")
                return AttrRef(ntext, scope=lowered)
            if self.peek()[1] == "(":
                self.advance()  # consume '('
                args: list[Expr] = []
                if self.peek()[1] != ")":
                    args.append(self.parse_ternary())
                    while self.peek()[1] == ",":
                        self.advance()
                        args.append(self.parse_ternary())
                self.expect(")")
                return FuncCall(text, args)
            return AttrRef(text)
        if text == "(":
            expr = self.parse_ternary()
            self.expect(")")
            return expr
        raise ClassAdError(f"unexpected token {text or 'end'!r}")


def _unescape(body: str) -> str:
    return body.replace('\\"', '"').replace("\\\\", "\\")


#: Memoized ASTs keyed by source text. Expression trees are immutable
#: after parsing (``ClassAd.copy`` already shares them between ads), so
#: one AST can safely back every occurrence of the same source string —
#: and scheduler-driven qedit traffic repeats a handful of strings
#: (parking expressions, per-node pins) tens of thousands of times.
_PARSE_CACHE: dict[str, Expr] = {}
#: Cache cap: qedit strings are drawn from a small fixed vocabulary, so
#: eviction should be rare; it bounds memory if someone parses unbounded
#: distinct inputs. Eviction is LRU (hits refresh recency), so the hot
#: vocabulary survives a stream of one-off strings instead of being
#: wiped wholesale by a clear-all.
_PARSE_CACHE_LIMIT = 4096

#: LRU evictions from the parse memo since process start.
parse_cache_evictions = 0


def parse(text: str) -> Expr:
    """Parse a ClassAd expression string into an AST (memoized, LRU)."""
    global parse_cache_evictions
    expr = _PARSE_CACHE.get(text)
    if expr is None:
        expr = _Parser(tokenize(text)).parse()
        if len(_PARSE_CACHE) >= _PARSE_CACHE_LIMIT:
            _PARSE_CACHE.pop(next(iter(_PARSE_CACHE)))
            parse_cache_evictions += 1
        _PARSE_CACHE[text] = expr
    else:
        # Dict order is recency order: re-append the hit entry.
        del _PARSE_CACHE[text]
        _PARSE_CACHE[text] = expr
    return expr


# ---------------------------------------------------------------------------
# Ads and evaluation context
# ---------------------------------------------------------------------------


class EvalContext:
    """Name resolution for evaluation: (my ad, optional target ad)."""

    __slots__ = ("my", "target", "_depth")

    def __init__(self, my: "ClassAd", target: Optional["ClassAd"] = None) -> None:
        self.my = my
        self.target = target
        self._depth = 0

    def lookup(self, name: str, scope: Optional[str]) -> Value:
        if self._depth > 32:
            return ERROR  # circular attribute definitions
        self._depth += 1
        try:
            if scope == "my":
                return self._from(self.my, name)
            if scope == "target":
                if self.target is None:
                    return UNDEFINED
                return self._from_other(self.target, name)
            value = self._from(self.my, name)
            if value is UNDEFINED and self.target is not None:
                value = self._from_other(self.target, name)
            return value
        finally:
            self._depth -= 1

    def _from(self, ad: "ClassAd", name: str) -> Value:
        expr = ad.get_expr(name)
        if expr is None:
            return UNDEFINED
        return expr.evaluate(self)

    def _from_other(self, ad: "ClassAd", name: str) -> Value:
        # Attribute expressions on the other ad evaluate with roles swapped.
        expr = ad.get_expr(name)
        if expr is None:
            return UNDEFINED
        swapped = EvalContext(ad, self.my)
        swapped._depth = self._depth
        return expr.evaluate(swapped)


class ClassAd:
    """A set of named attributes; values are literals or expressions.

    Attribute names are case-insensitive, as in HTCondor.
    """

    def __init__(self, attrs: Optional[dict[str, Any]] = None) -> None:
        self._attrs: dict[str, Expr] = {}
        self._display: dict[str, str] = {}
        if attrs:
            for name, value in attrs.items():
                self[name] = value

    # -- mapping interface ---------------------------------------------------

    def __setitem__(self, name: str, value: Any) -> None:
        key = name.lower()
        self._display[key] = name
        if isinstance(value, Expr):
            self._attrs[key] = value
        elif isinstance(value, str):
            # Strings are stored as string literals; to store an
            # expression use set_expr (mirrors condor_qedit semantics).
            self._attrs[key] = Literal(value)
        elif isinstance(value, bool) or isinstance(value, (int, float)):
            self._attrs[key] = Literal(value)
        elif value is UNDEFINED or value is ERROR:
            self._attrs[key] = Literal(value)
        else:
            raise TypeError(f"unsupported attribute value {value!r}")

    def set_expr(self, name: str, expression: str) -> None:
        """Set an attribute to a parsed expression (``condor_qedit`` style)."""
        key = name.lower()
        self._display[key] = name
        self._attrs[key] = parse(expression)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._attrs

    def __delitem__(self, name: str) -> None:
        del self._attrs[name.lower()]
        del self._display[name.lower()]

    def get_expr(self, name: str) -> Optional[Expr]:
        return self._attrs.get(name.lower())

    def raw(self, key: str) -> Any:
        """Low-level read for the compiled evaluator.

        ``key`` must already be lowercase. Returns the literal value for
        literal-valued attributes, the :class:`Expr` for
        expression-valued ones (the caller falls back to the interpreted
        lookup, which owns the circularity guard and role-swap rules),
        or :data:`MISSING` when the attribute is absent.
        """
        expr = self._attrs.get(key)
        if expr is None:
            return MISSING
        if type(expr) is Literal:
            return expr.value
        return expr

    def keys(self) -> list[str]:
        return [self._display[k] for k in self._attrs]

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, name: str, target: Optional["ClassAd"] = None) -> Value:
        """Evaluate attribute ``name`` against an optional target ad.

        Routes through the closure compiler (:mod:`repro.condor.compile`)
        unless :func:`set_compilation` disabled it. Compiled closures are
        memoized per AST node; ``set_expr`` (condor_qedit) and requeue's
        ``base_requirements`` restore both *replace* the stored Expr, so
        a rewritten attribute always compiles (or cache-hits) on its new
        tree — stale closures are impossible by construction.
        """
        expr = self._attrs.get(name.lower())
        if expr is None:
            return UNDEFINED
        if _COMPILE_ENABLED:
            if type(expr) is Literal:
                # No context needed: a literal evaluates to itself.
                return expr.value
            global _compile_expr
            if _compile_expr is None:
                from .compile import compile_expr as _fn

                _compile_expr = _fn
            return _compile_expr(expr)(EvalContext(self, target))
        return expr.evaluate(EvalContext(self, target))

    def __getitem__(self, name: str) -> Value:
        return self.evaluate(name)

    def copy(self) -> "ClassAd":
        dup = ClassAd()
        dup._attrs = dict(self._attrs)
        dup._display = dict(self._display)
        return dup

    def __repr__(self) -> str:
        inner = ", ".join(self.keys())
        return f"<ClassAd [{inner}]>"


def symmetric_match(left: ClassAd, right: ClassAd) -> bool:
    """Condor matchmaking: both ads' Requirements must evaluate to True."""
    return (
        left.evaluate("Requirements", right) is True
        and right.evaluate("Requirements", left) is True
    )


def rank(ad: ClassAd, candidate: ClassAd) -> float:
    """Evaluate ``ad``'s Rank against ``candidate`` (0.0 when undefined)."""
    value = ad.evaluate("Rank", candidate)
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    return 0.0
