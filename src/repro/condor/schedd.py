"""The schedd: Condor's job queue, submission, and ``condor_qedit``.

Jobs enter the queue as (ClassAd, JobProfile) pairs and move through the
usual states. The external scheduler manipulates pending jobs exclusively
through :meth:`Schedd.qedit` — exactly the integration surface the paper
uses ("using the utility condor_qedit, we change each job's requirements",
§IV-D1) — and batched edits only take effect at the *next* negotiation
cycle, reproducing the dispatch latency the paper blames for MCCK's small
overhead on unfavourable distributions.
"""

from __future__ import annotations

import hashlib
import operator
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..faults.errors import (
    CLAIM_LOST,
    DEVICE_FAILED,
    JOB_CRASHED,
    LEASE_EXPIRED,
    NODE_LOST,
)
from ..mpss.runtime import JobRunResult
from ..obs import audit as _audit
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..sim import Environment, Event
from ..workloads.profiles import JobProfile
from .ads import job_ad
from .classad import ClassAd, Expr

IDLE = "Idle"
#: A match notification arrived over the fabric but the claim has not
#: been activated on the startd yet (fabric mode only — direct dispatch
#: never leaves a job in this state).
MATCHED = "Matched"
RUNNING = "Running"
COMPLETED = "Completed"
REMOVED = "Removed"
#: Waiting out the retry backoff after an infrastructure failure.
BACKOFF = "Backoff"
#: Terminally failed: retries exhausted (or the failure is not retryable).
FAILED = "Failed"

#: Result statuses that mean the *infrastructure* failed the job. Only
#: these are retryable — kill-by-container statuses ("memory-limit",
#: "oom-killed") are the job's own fault and rerunning would fail again.
INFRASTRUCTURE_STATUSES = frozenset(
    {DEVICE_FAILED, NODE_LOST, JOB_CRASHED, LEASE_EXPIRED, CLAIM_LOST,
     "infrastructure"}
)

#: Sort key for FIFO queue listings (precomputed at submission).
_FIFO_KEY = operator.attrgetter("fifo_key")


def job_tid(record: "JobRecord") -> int:
    """The trace track a job's lifecycle spans land on."""
    return _trace.JOB_TID_BASE + record.seq


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for infrastructure failures.

    A job is retried at most ``max_retries`` times (so it runs at most
    ``max_retries + 1`` times), waiting
    ``base_backoff_s * backoff_factor ** (attempt - 1)`` seconds (capped
    at ``max_backoff_s``) before re-entering the idle queue. The bound
    is what prevents a retry storm when a failure is persistent.

    ``jitter`` desynchronizes the storms the bound cannot prevent: when
    one node crash fails sixteen jobs in the same instant, identical
    backoffs would re-queue them in the same negotiation cycle too. A
    nonzero jitter scales each delay by a factor drawn deterministically
    from ``(jitter_seed, key, attempt)`` — a keyed hash, not process
    state — so replays for a fixed seed stay byte-identical while
    distinct jobs spread across ``[1 - jitter, 1] × backoff``.
    """

    max_retries: int = 3
    base_backoff_s: float = 30.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 600.0
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def should_retry(self, status: str, attempts: int) -> bool:
        """Whether a job with ``attempts`` failed runs gets another."""
        return status in INFRASTRUCTURE_STATUSES and attempts <= self.max_retries

    def backoff(self, attempt: int, key: Optional[str] = None) -> float:
        """Delay before re-queueing after failed run number ``attempt``.

        ``key`` (normally the job id) selects the jitter draw. The draw
        comes from SHA-256 — never the builtin ``hash``, whose per-process
        randomization would break cross-process replays.
        """
        if attempt <= 0:
            raise ValueError("attempt must be positive")
        delay = min(
            self.max_backoff_s,
            self.base_backoff_s * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter == 0.0 or key is None:
            return delay
        digest = hashlib.sha256(
            f"retry-jitter:{self.jitter_seed}:{key}:{attempt}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        return delay * (1.0 - self.jitter * unit)


@dataclass
class JobRecord:
    """One queued job: its ad, its (hidden) profile, and its lifecycle."""

    job_id: str
    ad: ClassAd
    profile: JobProfile
    status: str = IDLE
    seq: int = 0
    result: Optional[JobRunResult] = None
    completion: Optional[Event] = None
    matched_node: Optional[str] = None
    matched_device: Optional[int] = None
    #: Failed runs so far (infrastructure failures only).
    attempts: int = 0
    #: Result of every failed run, in order.
    failures: list[JobRunResult] = field(default_factory=list)
    #: The submit-time Requirements expression, restored on requeue so a
    #: retried job sheds any pin/park the previous attempt carried.
    base_requirements: Optional[Expr] = None
    #: FIFO examination key, fixed at submission: (submit_time, seq).
    #: Cached so queue listings sort without re-deriving tuples per call.
    fifo_key: tuple = (0.0, 0)
    #: The current match/claim token under the message fabric. Stale
    #: messages (from a match the schedd has since abandoned) carry an
    #: older token and are rejected by the claim manager.
    claim_token: Optional[int] = None
    #: When the current match notification arrived (MATCHED state only).
    #: Recovery restores the match watchdog against the original deadline.
    matched_at: Optional[float] = None
    #: When a BACKOFF job is due back in the idle queue. Recovery uses it
    #: to resume the remaining backoff instead of restarting it.
    requeue_at: Optional[float] = None

    @property
    def is_pending(self) -> bool:
        return self.status == IDLE


class Schedd:
    """Job queue and submission endpoint."""

    def __init__(
        self, env: Environment, retry_policy: Optional[RetryPolicy] = None
    ) -> None:
        self.env = env
        self.retry_policy = retry_policy or RetryPolicy()
        self._records: dict[str, JobRecord] = {}
        self._seq = 0
        #: Callbacks invoked with the JobRecord whenever a job completes.
        self.completion_listeners: list[Callable[[JobRecord], None]] = []
        #: Callbacks invoked with the JobRecord right after submission —
        #: the hook an external scheduler uses to park new arrivals before
        #: the vanilla negotiator can dispatch them.
        self.submit_listeners: list[Callable[[JobRecord], None]] = []
        #: Callbacks invoked with the JobRecord when a job starts running.
        self.start_listeners: list[Callable[[JobRecord], None]] = []
        #: Callbacks invoked with ``(record, result, requeued)`` when a
        #: run dies to an infrastructure failure.
        self.failure_listeners: list[
            Callable[[JobRecord, JobRunResult, bool], None]
        ] = []
        #: Callbacks invoked with the JobRecord when a failed job
        #: re-enters the idle queue after its backoff.
        self.requeue_listeners: list[Callable[[JobRecord], None]] = []
        #: Callbacks invoked (no arguments) after a crash–recovery replay
        #: has rebuilt the queue — external schedulers resync their view
        #: of the fresh records here.
        self.recovery_listeners: list[Callable[[], None]] = []
        #: Write-ahead job-queue log (:class:`repro.condor.recovery
        #: .JobQueueLog`); ``None`` (the default) disables journaling and
        #: keeps every code path byte-identical to a WAL-free schedd.
        self.wal = None
        #: True while the daemon is crashed: timers and listeners that
        #: fire during the outage must not touch the queue.
        self.down = False
        #: Completed crash–recovery cycles.
        self.recoveries = 0
        #: Times any job re-entered the queue after a failure.
        self.requeues = 0
        #: Jobs that exhausted their retries (or were unretryable).
        self.terminal_failures = 0
        #: Event that triggers once every submitted job has left the queue.
        self._all_done: Optional[Event] = None
        # Incremental count of jobs in a non-terminal state. Previously
        # every completion re-scanned the whole record table (O(jobs) per
        # completion, O(jobs^2) per run); transitions keep it exact.
        self._unfinished = 0
        # Incremental idle count, kept in lockstep with status changes so
        # the queue-depth gauge never pays a full-queue scan.
        self._idle = 0
        # Records in FIFO order. ``fifo_key`` is fixed at submission, so
        # the list only needs re-sorting when a submission arrives out of
        # key order (a backdated submit_time); the per-cycle ``pending()``
        # walk then filters without sorting O(jobs) records every cycle.
        self._fifo: list[JobRecord] = []
        self._fifo_dirty = False

    # -- submission -------------------------------------------------------

    def submit(
        self,
        profile: JobProfile,
        sharing: bool = True,
        memory_aware: bool = True,
    ) -> JobRecord:
        """Queue a job, building its submit ad from the profile."""
        if profile.job_id in self._records:
            raise ValueError(f"duplicate job id {profile.job_id!r}")
        self._seq += 1
        record = JobRecord(
            job_id=profile.job_id,
            ad=job_ad(profile, sharing=sharing, memory_aware=memory_aware),
            profile=profile,
            seq=self._seq,
            completion=self.env.event(),
        )
        record.base_requirements = record.ad.get_expr("Requirements")
        record.fifo_key = (profile.submit_time, record.seq)
        self._records[profile.job_id] = record
        if self._fifo and record.fifo_key < self._fifo[-1].fifo_key:
            self._fifo_dirty = True
        self._fifo.append(record)
        self._unfinished += 1
        self._idle += 1
        if self.wal is not None:
            self.wal.log_submit(record, sharing, memory_aware)
        tracer = _trace.ACTIVE
        if tracer is not None:
            tid = job_tid(record)
            tracer.set_thread_name(tid, f"job {record.job_id}")
            root = tracer.begin_keyed(
                ("job", record.job_id),
                "job",
                "schedd",
                self.env.now,
                tid=tid,
                job=record.job_id,
                declared_mb=profile.declared_memory_mb,
                declared_threads=profile.declared_threads,
            )
            tracer.begin_keyed(
                ("queued", record.job_id),
                "queued",
                "schedd",
                self.env.now,
                tid=tid,
                parent=root,
            )
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.counter("schedd.jobs_submitted").inc()
            registry.gauge("schedd.queue_depth").record(self.env.now, self._idle)
        auditor = _audit.ACTIVE
        if auditor is not None:
            auditor.job_submitted(record.job_id)
        for listener in list(self.submit_listeners):
            listener(record)
        return record

    def submit_many(
        self,
        profiles: list[JobProfile],
        sharing: bool = True,
        memory_aware: bool = True,
    ) -> None:
        for profile in profiles:
            self.submit(profile, sharing=sharing, memory_aware=memory_aware)

    # -- queue inspection ---------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        return self._records[job_id]

    def _fifo_records(self) -> list[JobRecord]:
        if self._fifo_dirty:
            self._fifo.sort(key=_FIFO_KEY)
            self._fifo_dirty = False
        return self._fifo

    def all_records(self) -> list[JobRecord]:
        """Every job ever submitted, in submission order."""
        return list(self._fifo_records())

    def pending(self) -> list[JobRecord]:
        """Idle jobs in FIFO order (the negotiator's examination order)."""
        return [r for r in self._fifo_records() if r.status == IDLE]

    def running(self) -> list[JobRecord]:
        return [r for r in self._records.values() if r.status == RUNNING]

    def completed(self) -> list[JobRecord]:
        return [r for r in self._records.values() if r.status == COMPLETED]

    def failed(self) -> list[JobRecord]:
        """Jobs that terminally failed (retries exhausted)."""
        return [r for r in self._records.values() if r.status == FAILED]

    @property
    def total_jobs(self) -> int:
        return len(self._records)

    @property
    def unfinished_jobs(self) -> int:
        return self._unfinished

    @property
    def idle_jobs(self) -> int:
        """Jobs currently idle (the size of :meth:`pending`'s result).

        Maintained incrementally so an idle-pool negotiation cycle can
        skip the O(queue) FIFO walk entirely.
        """
        return self._idle

    # -- qedit -------------------------------------------------------------

    def qedit(self, job_id: str, attr: str, expression: str) -> None:
        """Rewrite one attribute of a *pending* job (``condor_qedit``).

        ``set_expr`` *replaces* the stored expression tree, which is
        what keeps the ClassAd closure compiler honest: compiled
        closures and negotiator routing plans are memoized per tree
        (:mod:`repro.condor.compile`), so swapping in a new tree is
        itself the cache invalidation — the old closure simply becomes
        unreachable. The same holds for requeue's ``base_requirements``
        restore.
        """
        record = self._records[job_id]
        if record.status != IDLE:
            raise ValueError(f"cannot qedit job {job_id!r} in state {record.status}")
        record.ad.set_expr(attr, expression)
        if self.wal is not None:
            self.wal.log_qedit(job_id, attr, expression)

    def qedit_batch(self, edits: list[tuple[str, str, str]]) -> None:
        """Apply many edits at once (the paper batches for overhead)."""
        for job_id, attr, expression in edits:
            self.qedit(job_id, attr, expression)

    # -- lifecycle transitions ----------------------------------------------

    def mark_matched(self, job_id: str, token: int) -> None:
        """IDLE → MATCHED: a match notification arrived over the fabric.

        The job leaves the pending queue (it is spoken for) but is not
        running yet; the claim manager reverts it via :meth:`unmatch` if
        the claim never activates.
        """
        record = self._records[job_id]
        if record.status != IDLE:
            raise ValueError(f"job {job_id!r} is {record.status}, not idle")
        record.status = MATCHED
        record.claim_token = token
        record.matched_at = self.env.now
        record.ad["JobStatus"] = MATCHED
        self._idle -= 1
        if self.wal is not None:
            self.wal.log_match(job_id, token)
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.gauge("schedd.queue_depth").record(self.env.now, self._idle)

    def unmatch(self, job_id: str) -> None:
        """MATCHED → IDLE: the claim never activated; re-offer the job."""
        record = self._records[job_id]
        if record.status != MATCHED:
            raise ValueError(f"job {job_id!r} is {record.status}, not matched")
        record.status = IDLE
        record.claim_token = None
        record.matched_at = None
        record.ad["JobStatus"] = IDLE
        self._idle += 1
        if self.wal is not None:
            self.wal.log_unmatch(job_id)
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.gauge("schedd.queue_depth").record(self.env.now, self._idle)

    def mark_running(self, job_id: str, node: str, device: Optional[int]) -> None:
        record = self._records[job_id]
        if record.status not in (IDLE, MATCHED):
            raise ValueError(f"job {job_id!r} is {record.status}, not idle")
        if record.status == MATCHED:
            # Fabric mode: the job already left the idle count at
            # mark_matched; don't decrement twice below.
            self._idle += 1
        record.status = RUNNING
        record.matched_node = node
        record.matched_device = device
        record.matched_at = None
        record.ad["JobStatus"] = RUNNING
        self._idle -= 1
        if self.wal is not None:
            self.wal.log_run(job_id, node, device)
        tracer = _trace.ACTIVE
        if tracer is not None:
            span = tracer.end_keyed(
                ("queued", job_id), self.env.now, node=node, device=device
            )
            registry = _metrics.ACTIVE
            if registry is not None and span is not None:
                registry.histogram("job.queue_wait_s").observe(
                    span.end - span.start
                )
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.gauge("schedd.queue_depth").record(self.env.now, self._idle)
        for listener in list(self.start_listeners):
            listener(record)

    def mark_completed(self, job_id: str, result: JobRunResult) -> None:
        record = self._records[job_id]
        if record.status != RUNNING:
            raise ValueError(f"job {job_id!r} is {record.status}, not running")
        record.status = COMPLETED
        record.result = result
        record.ad["JobStatus"] = COMPLETED
        record.claim_token = None
        self._unfinished -= 1
        if self.wal is not None:
            self.wal.log_complete(job_id, result)
        auditor = _audit.ACTIVE
        if auditor is not None:
            auditor.job_terminal(job_id, result.status, self.env.now)
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.instant(
                "completed",
                "schedd",
                self.env.now,
                tid=job_tid(record),
                status=result.status,
            )
            tracer.end_keyed(
                ("job", job_id),
                self.env.now,
                status=result.status,
                offloads=result.offloads_run,
                attempts=record.attempts,
            )
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.counter("schedd.jobs_completed").inc()
            if result.status != "completed":
                registry.counter("schedd.jobs_killed").inc()
            if record.attempts > 0:
                registry.counter("schedd.jobs_retried_completed").inc()
        assert record.completion is not None
        record.completion.succeed(result)
        for listener in list(self.completion_listeners):
            listener(record)
        self._check_all_done()

    def mark_failed(self, job_id: str, result: JobRunResult) -> None:
        """Report an infrastructure-failed run; requeue or fail the job.

        ``result.status`` must be an infrastructure status (device lost,
        node lost, transient crash). The retry policy decides between a
        backoff + requeue and a terminal failure. Kill-by-container
        outcomes ("memory-limit", "oom-killed") are *completions* — the
        job itself misbehaved — and must go through
        :meth:`mark_completed` as before.
        """
        record = self._records[job_id]
        if record.status != RUNNING:
            raise ValueError(f"job {job_id!r} is {record.status}, not running")
        record.attempts += 1
        record.failures.append(result)
        record.matched_node = None
        record.matched_device = None
        record.claim_token = None
        retry = self.retry_policy.should_retry(result.status, record.attempts)
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.instant(
                "run-failed",
                "schedd",
                self.env.now,
                tid=job_tid(record),
                status=result.status,
                attempt=record.attempts,
                retry=retry,
            )
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.counter("schedd.runs_failed").inc()
        if retry:
            record.status = BACKOFF
            record.ad["JobStatus"] = BACKOFF
            delay = self.retry_policy.backoff(record.attempts, key=job_id)
            record.requeue_at = self.env.now + delay
            if self.wal is not None:
                self.wal.log_fail(job_id, result, True, record.requeue_at)
            if tracer is not None:
                tracer.begin_keyed(
                    ("backoff", job_id),
                    "backoff",
                    "schedd",
                    self.env.now,
                    tid=job_tid(record),
                    parent=tracer.get(("job", job_id)),
                    attempt=record.attempts,
                )
            self.env.process(
                self._requeue_after(record, delay), name=f"requeue:{job_id}"
            )
        else:
            record.status = FAILED
            record.result = result
            record.ad["JobStatus"] = FAILED
            self._unfinished -= 1
            self.terminal_failures += 1
            if self.wal is not None:
                self.wal.log_fail(job_id, result, False, None)
            auditor = _audit.ACTIVE
            if auditor is not None:
                auditor.job_terminal(job_id, result.status, self.env.now)
            if tracer is not None:
                tracer.end_keyed(
                    ("job", job_id),
                    self.env.now,
                    status=result.status,
                    attempts=record.attempts,
                )
            if registry is not None:
                registry.counter("schedd.jobs_failed_terminal").inc()
            assert record.completion is not None
            # succeed (not fail): the result object carries the failure
            # status, and an un-waited failed event would crash the
            # simulation as an unhandled exception.
            record.completion.succeed(result)
        for listener in list(self.failure_listeners):
            listener(record, result, retry)
        if not retry:
            self._check_all_done()

    def _requeue_after(self, record: JobRecord, delay: float):
        yield self.env.timeout(max(0.0, delay))
        if self.down:
            # The schedd is crashed: a real requeue timer dies with the
            # daemon. Recovery replays the BACKOFF record and resumes the
            # remaining delay from the journal's requeue_at.
            return
        if self._records.get(record.job_id) is not record:
            # Stale closure: a crash–recovery replay replaced this record
            # object wholesale and rescheduled its own requeue timer.
            return
        record.status = IDLE
        record.requeue_at = None
        record.ad["JobStatus"] = IDLE
        if record.base_requirements is not None:
            # Shed the previous attempt's pin/park so the job can match
            # anywhere again; an attached knapsack scheduler re-parks it
            # through its requeue listener.
            record.ad["Requirements"] = record.base_requirements
        self.requeues += 1
        self._idle += 1
        if self.wal is not None:
            self.wal.log_requeue(record.job_id)
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.end_keyed(("backoff", record.job_id), self.env.now)
            tracer.begin_keyed(
                ("queued", record.job_id),
                "queued",
                "schedd",
                self.env.now,
                tid=job_tid(record),
                parent=tracer.get(("job", record.job_id)),
                attempt=record.attempts,
            )
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.counter("schedd.requeues").inc()
            registry.gauge("schedd.queue_depth").record(self.env.now, self._idle)
        for listener in list(self.requeue_listeners):
            listener(record)

    def _check_all_done(self) -> None:
        if self._all_done is not None and self.unfinished_jobs == 0:
            if not self._all_done.triggered:
                self._all_done.succeed(self.env.now)

    def all_done(self) -> Event:
        """Event triggering when the queue fully drains (for makespan)."""
        if self._all_done is None:
            self._all_done = self.env.event()
            if self._records and self.unfinished_jobs == 0:
                self._all_done.succeed(self.env.now)
        return self._all_done

    def makespan(self) -> float:
        """Completion time of the last job (the paper's makespan)."""
        ends = [r.result.end for r in self._records.values() if r.result]
        return max(ends, default=0.0)

    def __repr__(self) -> str:
        return (
            f"<Schedd jobs={self.total_jobs} idle={len(self.pending())} "
            f"running={len(self.running())} completed={len(self.completed())}>"
        )
