"""The schedd: Condor's job queue, submission, and ``condor_qedit``.

Jobs enter the queue as (ClassAd, JobProfile) pairs and move through the
usual states. The external scheduler manipulates pending jobs exclusively
through :meth:`Schedd.qedit` — exactly the integration surface the paper
uses ("using the utility condor_qedit, we change each job's requirements",
§IV-D1) — and batched edits only take effect at the *next* negotiation
cycle, reproducing the dispatch latency the paper blames for MCCK's small
overhead on unfavourable distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..mpss.runtime import JobRunResult
from ..sim import Environment, Event
from ..workloads.profiles import JobProfile
from .ads import job_ad
from .classad import ClassAd

IDLE = "Idle"
RUNNING = "Running"
COMPLETED = "Completed"
REMOVED = "Removed"


@dataclass
class JobRecord:
    """One queued job: its ad, its (hidden) profile, and its lifecycle."""

    job_id: str
    ad: ClassAd
    profile: JobProfile
    status: str = IDLE
    seq: int = 0
    result: Optional[JobRunResult] = None
    completion: Optional[Event] = None
    matched_node: Optional[str] = None
    matched_device: Optional[int] = None

    @property
    def is_pending(self) -> bool:
        return self.status == IDLE


class Schedd:
    """Job queue and submission endpoint."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._records: dict[str, JobRecord] = {}
        self._seq = 0
        #: Callbacks invoked with the JobRecord whenever a job completes.
        self.completion_listeners: list[Callable[[JobRecord], None]] = []
        #: Callbacks invoked with the JobRecord right after submission —
        #: the hook an external scheduler uses to park new arrivals before
        #: the vanilla negotiator can dispatch them.
        self.submit_listeners: list[Callable[[JobRecord], None]] = []
        #: Callbacks invoked with the JobRecord when a job starts running.
        self.start_listeners: list[Callable[[JobRecord], None]] = []
        #: Event that triggers once every submitted job has left the queue.
        self._all_done: Optional[Event] = None

    # -- submission -------------------------------------------------------

    def submit(
        self,
        profile: JobProfile,
        sharing: bool = True,
        memory_aware: bool = True,
    ) -> JobRecord:
        """Queue a job, building its submit ad from the profile."""
        if profile.job_id in self._records:
            raise ValueError(f"duplicate job id {profile.job_id!r}")
        self._seq += 1
        record = JobRecord(
            job_id=profile.job_id,
            ad=job_ad(profile, sharing=sharing, memory_aware=memory_aware),
            profile=profile,
            seq=self._seq,
            completion=self.env.event(),
        )
        self._records[profile.job_id] = record
        for listener in list(self.submit_listeners):
            listener(record)
        return record

    def submit_many(
        self,
        profiles: list[JobProfile],
        sharing: bool = True,
        memory_aware: bool = True,
    ) -> None:
        for profile in profiles:
            self.submit(profile, sharing=sharing, memory_aware=memory_aware)

    # -- queue inspection ---------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        return self._records[job_id]

    def all_records(self) -> list[JobRecord]:
        """Every job ever submitted, in submission order."""
        records = list(self._records.values())
        records.sort(key=lambda r: (r.profile.submit_time, r.seq))
        return records

    def pending(self) -> list[JobRecord]:
        """Idle jobs in FIFO order (the negotiator's examination order)."""
        idle = [r for r in self._records.values() if r.status == IDLE]
        idle.sort(key=lambda r: (r.profile.submit_time, r.seq))
        return idle

    def running(self) -> list[JobRecord]:
        return [r for r in self._records.values() if r.status == RUNNING]

    def completed(self) -> list[JobRecord]:
        return [r for r in self._records.values() if r.status == COMPLETED]

    @property
    def total_jobs(self) -> int:
        return len(self._records)

    @property
    def unfinished_jobs(self) -> int:
        return sum(
            1 for r in self._records.values() if r.status in (IDLE, RUNNING)
        )

    # -- qedit -------------------------------------------------------------

    def qedit(self, job_id: str, attr: str, expression: str) -> None:
        """Rewrite one attribute of a *pending* job (``condor_qedit``)."""
        record = self._records[job_id]
        if record.status != IDLE:
            raise ValueError(f"cannot qedit job {job_id!r} in state {record.status}")
        record.ad.set_expr(attr, expression)

    def qedit_batch(self, edits: list[tuple[str, str, str]]) -> None:
        """Apply many edits at once (the paper batches for overhead)."""
        for job_id, attr, expression in edits:
            self.qedit(job_id, attr, expression)

    # -- lifecycle transitions ----------------------------------------------

    def mark_running(self, job_id: str, node: str, device: Optional[int]) -> None:
        record = self._records[job_id]
        if record.status != IDLE:
            raise ValueError(f"job {job_id!r} is {record.status}, not idle")
        record.status = RUNNING
        record.matched_node = node
        record.matched_device = device
        record.ad["JobStatus"] = RUNNING
        for listener in list(self.start_listeners):
            listener(record)

    def mark_completed(self, job_id: str, result: JobRunResult) -> None:
        record = self._records[job_id]
        if record.status != RUNNING:
            raise ValueError(f"job {job_id!r} is {record.status}, not running")
        record.status = COMPLETED
        record.result = result
        record.ad["JobStatus"] = COMPLETED
        assert record.completion is not None
        record.completion.succeed(result)
        for listener in list(self.completion_listeners):
            listener(record)
        if self._all_done is not None and self.unfinished_jobs == 0:
            if not self._all_done.triggered:
                self._all_done.succeed(self.env.now)

    def all_done(self) -> Event:
        """Event triggering when the queue fully drains (for makespan)."""
        if self._all_done is None:
            self._all_done = self.env.event()
            if self._records and self.unfinished_jobs == 0:
                self._all_done.succeed(self.env.now)
        return self._all_done

    def makespan(self) -> float:
        """Completion time of the last job (the paper's makespan)."""
        ends = [r.result.end for r in self._records.values() if r.result]
        return max(ends, default=0.0)

    def __repr__(self) -> str:
        return (
            f"<Schedd jobs={self.total_jobs} idle={len(self.pending())} "
            f"running={len(self.running())} completed={len(self.completed())}>"
        )
