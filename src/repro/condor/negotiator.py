"""The negotiator: periodic FIFO matchmaking between jobs and machines.

Every ``cycle_interval`` simulated seconds the negotiator pulls fresh
machine snapshots from the collector, walks the pending queue in FIFO
order (§II-D), and matches each job against the nodes using symmetric
ClassAd matchmaking. Resources are deducted from the cycle's snapshots as
matches are made, so one cycle can fill many slots consistently.

Placement *within* the matched set is a policy object — this is where the
paper's three configurations differ at the cluster level:

* :class:`ExclusivePlacement` (MC): a job takes a whole free coprocessor.
* :class:`RandomPlacement` (MCC): "jobs are selected randomly at the
  cluster level: they are packed arbitrarily" — any node with a free host
  slot, chosen uniformly at random; COSMIC makes it safe at the node.
* :class:`PinnedPlacement` (MCCK): jobs arrive pre-pinned by the external
  knapsack scheduler (via qedit); the negotiator merely honours the pins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from time import perf_counter
from typing import Optional

from ..net.fabric import COLLECTOR as NET_COLLECTOR
from ..net.fabric import NEGOTIATOR as NET_NEGOTIATOR
from ..net.fabric import SCHEDD as NET_SCHEDD
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..sim import Environment
from ..sim import profile as _profile
from .ads import MachineSnapshot, copy_snapshot, machine_ad
from .classad import Literal, symmetric_match
from .collector import AMBIGUOUS_NAME, Collector, build_name_index
from .compile import requirements_plan
from .schedd import JobRecord, Schedd, job_tid


@dataclass
class CycleStats:
    """Accounting for one negotiation cycle.

    ``parked + prefiltered + examined`` partitions the pending jobs the
    cycle looked at before resources ran out: *parked* jobs have
    statically unmatchable Requirements (the external scheduler's
    ``false`` rewrite, or none at all), *prefiltered* jobs failed the
    policy's cheap necessary condition, and *examined* jobs went through
    full matchmaking — of which ``matched`` succeeded.
    """

    parked: int = 0
    prefiltered: int = 0
    examined: int = 0
    matched: int = 0
    #: Fabric mode only: idle jobs skipped because a match notification
    #: for them is still in flight (extends the partition above).
    in_flight: int = 0
    #: Machines probed with symmetric ClassAd matchmaking.
    evals: int = 0
    #: Examined jobs routed through the collector's name index (O(1)).
    pin_routed: int = 0
    #: Examined jobs that scanned every machine snapshot.
    full_scans: int = 0


class SnapshotCycleView:
    """Cycle view over an eagerly-built snapshot list.

    Used in fabric mode (the negotiator's view is whatever snapshot
    response last made it through the network) and whenever the
    collector cannot serve its delta-maintained live view (heartbeat
    staleness or store mode need the historical full walk). Preserves
    the historical behaviour exactly: candidates are *all* live
    snapshots and machine ads are views over them.
    """

    __slots__ = ("_snapshots", "_index", "_ads", "has_index")

    def __init__(self, snapshots, index) -> None:
        self._snapshots = snapshots
        self._index = index
        self._ads: dict[int, object] = {}
        self.has_index = index is not None

    def candidates(self):
        return self._snapshots

    def lookup(self, key: str):
        return self._index.get(key)

    def ad(self, snapshot):
        view = self._ads.get(id(snapshot))
        if view is None:
            view = machine_ad(snapshot)
            self._ads[id(snapshot)] = view
        return view


class PlacementPolicy:
    """Chooses a (node, device, exclusive) among the matched snapshots."""

    #: Whether jobs submitted under this policy may share coprocessors.
    sharing = True
    #: Whether submit ads require advertised free device memory.
    memory_aware = True

    def exhausted(self, snapshots: list[MachineSnapshot]) -> bool:
        """True when no pending job could possibly be placed this cycle."""
        return all(s.free_slots <= 0 for s in snapshots)

    def place(
        self,
        record: JobRecord,
        candidates: list[MachineSnapshot],
    ) -> Optional[tuple[MachineSnapshot, Optional[int], bool]]:
        raise NotImplementedError

    def prefilter(self, record: JobRecord, snapshots: list[MachineSnapshot]) -> bool:
        """Cheap necessary condition before full ClassAd matchmaking.

        The analogue of Condor's autocluster optimization: skip jobs that
        cannot possibly match this cycle without paying for expression
        evaluation against every machine.
        """
        return True

    def deduct(
        self,
        snapshot: MachineSnapshot,
        device_index: Optional[int],
        exclusive: bool,
        declared_mb: float,
    ) -> None:
        """Update the cycle snapshot after a successful match."""
        snapshot.free_slots -= 1
        if device_index is None:
            return
        for device in snapshot.devices:
            if device.index == device_index:
                if exclusive:
                    device.claimed_exclusive = True
                else:
                    device.resident_jobs += 1
                    device.free_declared_mb = max(
                        0.0, device.free_declared_mb - declared_mb
                    )
                return


class ExclusivePlacement(PlacementPolicy):
    """MC baseline: dedicate one whole coprocessor per job (first fit)."""

    sharing = False

    def exhausted(self, snapshots: list[MachineSnapshot]) -> bool:
        return not any(
            s.free_slots > 0 and s.first_free_device() is not None
            for s in snapshots
        )

    def place(self, record, candidates):
        for snapshot in candidates:
            if snapshot.free_slots <= 0:
                continue
            device = snapshot.first_free_device()
            if device is not None:
                return snapshot, device.index, True
        return None


class RandomPlacement(PlacementPolicy):
    """MCC: uniform-random node among those that can hold the job.

    "Jobs are selected randomly at the cluster level: they are packed
    arbitrarily to Xeon Phi coprocessors" (§V) — but Condor still tracks
    the advertised free device memory, so a candidate needs a device with
    enough unreserved declared memory and a free host slot.
    """

    def __init__(self, rng: random.Random, memory_aware: bool = False) -> None:
        self.rng = rng
        self.memory_aware = memory_aware

    def place(self, record, candidates):
        declared = record.profile.declared_memory_mb
        viable: list[tuple] = []
        for snapshot in candidates:
            if snapshot.free_slots <= 0:
                continue
            fitting = [
                d
                for d in snapshot.devices
                if not d.claimed_exclusive
                and not d.failed
                and (not self.memory_aware or d.free_declared_mb >= declared)
            ]
            if fitting:
                viable.append((snapshot, fitting))
        if not viable:
            return None
        snapshot, fitting = self.rng.choice(viable)
        device = self.rng.choice(fitting)
        return snapshot, device.index, False

    def prefilter(self, record, snapshots):
        declared = record.profile.declared_memory_mb
        return any(
            s.free_slots > 0
            and any(
                not d.claimed_exclusive
                and not d.failed
                and (not self.memory_aware or d.free_declared_mb >= declared)
                for d in s.devices
            )
            for s in snapshots
        )


class BestFitPlacement(PlacementPolicy):
    """A stronger memory-aware heuristic than random: best fit.

    Not in the paper — used as an extra ablation baseline between MCC's
    random placement and MCCK's knapsack: place each job on the device
    whose free declared memory leaves the *least* slack, tightening the
    packing without any look-ahead over the pending set.
    """

    def place(self, record, candidates):
        declared = record.profile.declared_memory_mb
        best = None
        for snapshot in candidates:
            if snapshot.free_slots <= 0:
                continue
            for device in snapshot.devices:
                if device.claimed_exclusive or device.failed:
                    continue
                slack = device.free_declared_mb - declared
                if slack < 0:
                    continue
                if best is None or slack < best[0]:
                    best = (slack, snapshot, device)
        if best is None:
            return None
        _slack, snapshot, device = best
        return snapshot, device.index, False

    def prefilter(self, record, snapshots):
        declared = record.profile.declared_memory_mb
        return any(
            s.free_slots > 0
            and any(
                not d.claimed_exclusive
                and not d.failed
                and d.free_declared_mb >= declared
                for d in s.devices
            )
            for s in snapshots
        )


class PinnedPlacement(PlacementPolicy):
    """MCCK: honour the external scheduler's node/device pins.

    A pinned job's Requirements only match its assigned node, so the
    candidate list is that node (or empty). The device comes from the
    ``AssignedPhiDevice`` attribute written alongside the pin.
    """

    def place(self, record, candidates):
        device_attr = record.ad.evaluate("AssignedPhiDevice")
        device_index = int(device_attr) if isinstance(device_attr, (int, float)) else 0
        for snapshot in candidates:
            if snapshot.free_slots <= 0:
                continue
            device = next(
                (d for d in snapshot.devices if d.index == device_index), None
            )
            if device is not None and device.failed:
                # The pinned card is down; the external scheduler will
                # re-pack the job, so don't dispatch it into a failure.
                continue
            return snapshot, device_index, False
        return None


class Negotiator:
    """Runs negotiation cycles as a simulation process."""

    def __init__(
        self,
        env: Environment,
        schedd: Schedd,
        collector: Collector,
        policy: PlacementPolicy,
        cycle_interval: float = 15.0,
        reschedule_on_completion: bool = False,
        reschedule_delay: float = 1.0,
        use_pin_index: bool = True,
        fabric=None,
    ) -> None:
        """``reschedule_on_completion`` models ``condor_reschedule``: a
        job completion prompts an extra negotiation cycle after
        ``reschedule_delay`` seconds instead of waiting for the periodic
        timer — the knob that shrinks the integration latency the paper
        blames for MCCK's overhead on unfavourable distributions.

        With a ``fabric`` (:class:`repro.net.fabric.MessageFabric`), the
        negotiator stops touching the collector and startds directly: it
        negotiates over the last snapshot-response it received, sends
        match notifications to the schedd, and requests a fresh snapshot
        each cycle — its view of the pool is as stale as the network
        makes it."""
        if cycle_interval <= 0:
            raise ValueError("cycle_interval must be positive")
        if reschedule_delay < 0:
            raise ValueError("reschedule_delay must be non-negative")
        self.env = env
        self.schedd = schedd
        self.collector = collector
        self.policy = policy
        self.cycle_interval = cycle_interval
        self.reschedule_on_completion = reschedule_on_completion
        self.reschedule_delay = reschedule_delay
        self._fabric = fabric
        #: Fabric mode: jobs whose match notification is not yet
        #: acknowledged (job_id -> token); skipped when re-offering.
        self._inflight: dict[str, int] = {}
        #: Fabric mode: snapshots from the latest snapshot-response.
        self._machine_view: list[MachineSnapshot] = []
        self._next_token = 1
        self._resched_msg_pending = False
        #: Route jobs whose Requirements pin ``TARGET.Name`` through the
        #: collector's name index instead of scanning every machine.
        #: Match decisions are identical either way (the pin literal can
        #: match at most the indexed machine); the flag exists so the
        #: benchmark can measure the full-scan baseline.
        self.use_pin_index = use_pin_index
        self.cycles_run = 0
        self.matches_made = 0
        #: Accounting for the most recent cycle (None before the first).
        self.last_cycle: Optional[CycleStats] = None
        self._proc = None
        self._reschedule_pending = False
        #: True while the daemon is crashed: cycles are skipped (and not
        #: counted) until the restart.
        self.down = False

    def start(self) -> None:
        """Begin periodic negotiation (call once, before env.run)."""
        if self._proc is not None:
            raise RuntimeError("negotiator already started")
        if self._fabric is not None:
            from .claims import MSG_RESCHEDULE, MSG_SNAPSHOT_RESPONSE

            self._fabric.register(
                NET_NEGOTIATOR, MSG_SNAPSHOT_RESPONSE, self._on_snapshot_response
            )
            if self.reschedule_on_completion:
                self._fabric.register(
                    NET_NEGOTIATOR, MSG_RESCHEDULE, self._on_reschedule_msg
                )
            self._request_snapshots()
        self._proc = self.env.process(self._loop(), name="negotiator")
        if self.reschedule_on_completion:
            self.schedd.completion_listeners.append(self._on_completion)

    def _on_completion(self, _record) -> None:
        if self._fabric is not None:
            # The listener fires at the schedd; condor_reschedule is a
            # message to the negotiator, not a local call.
            if self._resched_msg_pending:
                return
            self._resched_msg_pending = True
            from .claims import MSG_RESCHEDULE

            self._fabric.send(NET_SCHEDD, NET_NEGOTIATOR, MSG_RESCHEDULE, {})
            return
        if self._reschedule_pending:
            return
        self._reschedule_pending = True
        self.env.process(self._reschedule(), name="negotiator-reschedule")

    def _on_reschedule_msg(self, _msg) -> None:
        self._resched_msg_pending = False
        if self._reschedule_pending:
            return
        self._reschedule_pending = True
        self.env.process(self._reschedule(), name="negotiator-reschedule")

    def _on_snapshot_response(self, msg) -> None:
        self._machine_view = msg.payload["snapshots"]

    def _request_snapshots(self) -> None:
        from .claims import MSG_SNAPSHOT_REQUEST

        self._fabric.send(NET_NEGOTIATOR, NET_COLLECTOR, MSG_SNAPSHOT_REQUEST, {})

    def _match_delivered(self, msg) -> None:
        self._inflight.pop(msg.payload["job_id"], None)

    def _reschedule(self):
        if self.reschedule_delay > 0:
            yield self.env.timeout(self.reschedule_delay)
        else:
            yield self.env.timeout(0)
        self._reschedule_pending = False
        self.negotiate_once()

    def _loop(self):
        while True:
            self.negotiate_once()
            yield self.env.timeout(self.cycle_interval)

    def crash(self) -> None:
        """Drop all soft state: the daemon just died.

        The machine view and in-flight bookkeeping are rebuilt from
        scratch after the restart; ``_next_token`` survives — it models
        the claim-id sequence, and reusing a token would alias a dead
        match's claim onto a live one.
        """
        self.down = True
        self._machine_view = []
        self._inflight.clear()
        if self._fabric is not None:
            self._fabric.set_down(NET_NEGOTIATOR)

    def restore(self) -> None:
        """Restart cold: reopen the endpoint and ask for a fresh view.

        The periodic loop never stopped ticking; the first cycle after
        the snapshot response lands rebuilds the indexed view.
        """
        self.down = False
        if self._fabric is not None:
            self._fabric.set_up(NET_NEGOTIATOR)
            self._request_snapshots()

    def negotiate_once(self) -> int:
        """One negotiation cycle; returns the number of matches made."""
        if self.down or self.schedd.down:
            # Crash–recovery: a dead negotiator runs no cycle, and a dead
            # schedd cannot be asked for its queue. Skipped cycles are
            # not counted — the daemon wasn't there to run them.
            return 0
        self.cycles_run += 1
        tracer = _trace.ACTIVE
        registry = _metrics.ACTIVE
        prof = _profile.ACTIVE
        wall_start = perf_counter() if registry is not None else 0.0
        stats = CycleStats()
        if self._fabric is not None:
            # Negotiate over the last snapshot-response that made it
            # through the network (copied: deduction must not corrupt
            # the stored view), and ask for a fresh one for next cycle.
            snapshots = [copy_snapshot(s) for s in self._machine_view]
            index = build_name_index(snapshots) if self.use_pin_index else None
            view = SnapshotCycleView(snapshots, index)
            self._request_snapshots()
        else:
            # Fast path: the collector's delta-maintained live view,
            # lazy per machine — a cycle's cost scales with the machines
            # it actually probes, not the cluster size.
            view = self.collector.live_view(self.use_pin_index)
            if view is None:
                if self.use_pin_index:
                    snapshots, index = self.collector.indexed_snapshots(
                        self.env.now
                    )
                else:
                    snapshots = self.collector.snapshots(self.env.now)
                    index = None
                view = SnapshotCycleView(snapshots, index)
        # Machine ads are live views over the snapshots: a deduction is
        # visible to the next probe without rebuilding anything.
        # Resources only change on deduction, so exhaustion is
        # recomputed after each match rather than per pending job — and
        # computed lazily, so a cycle with nothing pending builds no
        # snapshots at all (the O(1) idle-pool floor).
        exhausted: Optional[bool] = None
        # The queue walk is the cycle's O(jobs) floor — with 10k+ jobs
        # parked by the external scheduler, per-record work must stay at
        # a couple of dict hits. Local counters (folded into ``stats``
        # below) and bound methods keep attribute traffic off the loop.
        policy = self.policy
        prefilter = policy.prefilter
        inflight = self._inflight
        parked = prefiltered = examined = in_flight = 0
        pending = self.schedd.pending() if self.schedd.idle_jobs else ()
        for record in pending:
            if exhausted is None:
                exhausted = policy.exhausted(view.candidates())
            if exhausted:
                break
            if inflight and record.job_id in inflight:
                # Fabric mode: this job's match notification is still in
                # flight — re-offering it would double-match.
                in_flight += 1
                continue
            req = record.ad._attrs.get("requirements")
            if req is None:
                # No Requirements at all: nothing can ever match.
                parked += 1
                continue
            if type(req) is Literal:
                # Parked by the external scheduler (Requirements
                # rewritten to ``false``): skip matchmaking outright
                # without even a plan lookup. ``parse`` memoizes ASTs,
                # so every parked job shares one Literal node.
                if req.value is not True:
                    parked += 1
                    continue
            plan = requirements_plan(req)
            if plan.never_matches:
                parked += 1
                continue
            if not prefilter(record, view.candidates()):
                prefiltered += 1
                continue
            examined += 1
            placement = self._match(record, view, plan, stats)
            if placement is None:
                continue
            snapshot, device_index, exclusive = placement
            policy.deduct(
                snapshot,
                device_index,
                exclusive,
                record.profile.declared_memory_mb,
            )
            exhausted = policy.exhausted(view.candidates())
            if self._fabric is None:
                startd = self.collector.startd(snapshot.node)
                if not startd.alive:
                    # The node died inside the staleness window; skip the
                    # match rather than dispatching into a crash.
                    continue
                if tracer is not None:
                    tracer.instant(
                        "matched",
                        "negotiator",
                        self.env.now,
                        tid=job_tid(record),
                        node=snapshot.node,
                        device=device_index,
                        exclusive=exclusive,
                    )
                startd.start_job(record, device_index, exclusive)
            else:
                # Fabric mode: a match is a *notification* to the schedd
                # (which activates the claim); whether the node is still
                # alive is for the claim protocol to discover.
                if tracer is not None:
                    tracer.instant(
                        "matched",
                        "negotiator",
                        self.env.now,
                        tid=job_tid(record),
                        node=snapshot.node,
                        device=device_index,
                        exclusive=exclusive,
                    )
                self._send_match(record, snapshot.node, device_index, exclusive)
            stats.matched += 1
        stats.parked = parked
        stats.prefiltered = prefiltered
        stats.examined = examined
        stats.in_flight = in_flight
        matched = stats.matched
        self.matches_made += matched
        self.last_cycle = stats
        if prof is not None:
            prof.negotiation_cycles += 1
            prof.match_probes += stats.evals
            prof.pin_routed += stats.pin_routed
            prof.full_scans += stats.full_scans
        if tracer is not None:
            # A cycle occupies zero *simulated* time; the span carries
            # its outcome in args (matches, queue examined).
            tracer.set_thread_name(_trace.NEGOTIATOR_TID, "negotiator")
            tracer.complete(
                "negotiation-cycle",
                "negotiator",
                self.env.now,
                self.env.now,
                tid=_trace.NEGOTIATOR_TID,
                cycle=self.cycles_run,
                matches=matched,
                examined=stats.examined,
            )
        if registry is not None:
            registry.counter("negotiator.cycles").inc()
            registry.counter("negotiator.matches").inc(matched)
            registry.counter("negotiator.parked").inc(stats.parked)
            registry.counter("negotiator.prefiltered").inc(stats.prefiltered)
            registry.counter("negotiator.examined").inc(stats.examined)
            registry.counter("negotiator.evals").inc(stats.evals)
            registry.counter("negotiator.pin_hits").inc(stats.pin_routed)
            registry.counter("negotiator.full_scans").inc(stats.full_scans)
            registry.histogram("negotiator.cycle_matches").observe(matched)
            # The one wall-clock metric: host-side cost of a cycle, as
            # production schedulers report it. Lives only in metrics so
            # trace export stays deterministic.
            registry.histogram("negotiator.cycle_wall_ms").observe(
                (perf_counter() - wall_start) * 1e3
            )
        return matched

    def _send_match(
        self,
        record: JobRecord,
        node: str,
        device_index: Optional[int],
        exclusive: bool,
    ) -> None:
        from .claims import MSG_MATCH

        token = self._next_token
        self._next_token += 1
        self._inflight[record.job_id] = token
        self._fabric.send(
            NET_NEGOTIATOR,
            NET_SCHEDD,
            MSG_MATCH,
            {
                "job_id": record.job_id,
                "node": node,
                "device": device_index,
                "exclusive": exclusive,
                "token": token,
            },
            on_delivered=self._match_delivered,
        )

    def _match(self, record: JobRecord, view, plan, stats):
        if view.has_index and plan.pin_name is not None:
            pinned = view.lookup(plan.pin_name)
            if pinned is not AMBIGUOUS_NAME:
                # The index covers every live machine, so a miss proves
                # no machine advertises the pinned name, and a hit is the
                # only machine that can satisfy ``TARGET.Name == ...`` —
                # one matchmaking probe replaces the full scan.
                stats.pin_routed += 1
                if pinned is None:
                    return None
                stats.evals += 1
                if symmetric_match(record.ad, view.ad(pinned)):
                    return self.policy.place(record, [pinned])
                return None
            # Two live names collide case-insensitively: scan instead.
        snapshots = view.candidates()
        stats.full_scans += 1
        stats.evals += len(snapshots)
        candidates = [
            snapshot
            for snapshot in snapshots
            if symmetric_match(record.ad, view.ad(snapshot))
        ]
        if not candidates:
            return None
        return self.policy.place(record, candidates)

    def __repr__(self) -> str:
        return (
            f"<Negotiator cycles={self.cycles_run} matches={self.matches_made} "
            f"interval={self.cycle_interval}>"
        )
