"""HTCondor analogue: ClassAds, schedd, collector, negotiator, startd, pool."""

from .ads import DeviceSnapshot, MachineSnapshot, job_ad, machine_ad
from .classad import (
    ERROR,
    UNDEFINED,
    ClassAd,
    ClassAdError,
    parse,
    rank,
    symmetric_match,
)
from .collector import Collector
from .negotiator import (
    BestFitPlacement,
    ExclusivePlacement,
    Negotiator,
    PinnedPlacement,
    PlacementPolicy,
    RandomPlacement,
)
from .pool import CondorPool
from .schedd import (
    BACKOFF,
    COMPLETED,
    FAILED,
    IDLE,
    INFRASTRUCTURE_STATUSES,
    RUNNING,
    JobRecord,
    RetryPolicy,
    Schedd,
)
from .startd import NodeExecutor, Startd
from .tools import condor_q, condor_status
from .submit import (
    SubmitError,
    format_classad,
    parse_classad_text,
    parse_submit,
)

__all__ = [
    "BACKOFF",
    "BestFitPlacement",
    "COMPLETED",
    "ClassAd",
    "FAILED",
    "INFRASTRUCTURE_STATUSES",
    "RetryPolicy",
    "ClassAdError",
    "Collector",
    "CondorPool",
    "DeviceSnapshot",
    "ERROR",
    "ExclusivePlacement",
    "IDLE",
    "JobRecord",
    "MachineSnapshot",
    "Negotiator",
    "NodeExecutor",
    "PinnedPlacement",
    "PlacementPolicy",
    "RUNNING",
    "RandomPlacement",
    "Schedd",
    "Startd",
    "SubmitError",
    "UNDEFINED",
    "format_classad",
    "job_ad",
    "machine_ad",
    "condor_q",
    "condor_status",
    "parse_classad_text",
    "parse_submit",
    "parse",
    "rank",
    "symmetric_match",
]
