"""HTCondor analogue: ClassAds, schedd, collector, negotiator, startd, pool."""

from .ads import DeviceSnapshot, MachineSnapshot, job_ad, machine_ad
from .classad import (
    ERROR,
    UNDEFINED,
    ClassAd,
    ClassAdError,
    parse,
    rank,
    symmetric_match,
)
from .collector import Collector
from .negotiator import (
    BestFitPlacement,
    ExclusivePlacement,
    Negotiator,
    PinnedPlacement,
    PlacementPolicy,
    RandomPlacement,
)
from .pool import CondorPool
from .schedd import COMPLETED, IDLE, RUNNING, JobRecord, Schedd
from .startd import NodeExecutor, Startd
from .tools import condor_q, condor_status
from .submit import (
    SubmitError,
    format_classad,
    parse_classad_text,
    parse_submit,
)

__all__ = [
    "BestFitPlacement",
    "COMPLETED",
    "ClassAd",
    "ClassAdError",
    "Collector",
    "CondorPool",
    "DeviceSnapshot",
    "ERROR",
    "ExclusivePlacement",
    "IDLE",
    "JobRecord",
    "MachineSnapshot",
    "Negotiator",
    "NodeExecutor",
    "PinnedPlacement",
    "PlacementPolicy",
    "RUNNING",
    "RandomPlacement",
    "Schedd",
    "Startd",
    "SubmitError",
    "UNDEFINED",
    "format_classad",
    "job_ad",
    "machine_ad",
    "condor_q",
    "condor_status",
    "parse_classad_text",
    "parse_submit",
    "parse",
    "rank",
    "symmetric_match",
]
