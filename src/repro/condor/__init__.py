"""HTCondor analogue: ClassAds, schedd, collector, negotiator, startd, pool."""

from .ads import (
    DeviceSnapshot,
    MachineAdView,
    MachineSnapshot,
    job_ad,
    machine_ad,
    pin_requirements,
    slot_name,
)
from .classad import (
    ERROR,
    UNDEFINED,
    ClassAd,
    ClassAdError,
    compilation_enabled,
    parse,
    rank,
    set_compilation,
    symmetric_match,
)
from .claims import (
    CollectorAgent,
    Lease,
    ScheddClaimManager,
    StartdClaimAgent,
)
from .collector import Collector, build_name_index
from .compile import RequirementsPlan, compile_expr, requirements_plan
from .negotiator import (
    BestFitPlacement,
    CycleStats,
    ExclusivePlacement,
    Negotiator,
    PinnedPlacement,
    PlacementPolicy,
    RandomPlacement,
)
from .pool import CondorPool
from .recovery import DaemonSupervisor, JobQueueLog, WalRecord
from .schedd import (
    BACKOFF,
    COMPLETED,
    FAILED,
    IDLE,
    INFRASTRUCTURE_STATUSES,
    MATCHED,
    RUNNING,
    JobRecord,
    RetryPolicy,
    Schedd,
)
from .startd import NodeExecutor, Startd
from .tools import condor_q, condor_status
from .submit import (
    SubmitError,
    format_classad,
    parse_classad_text,
    parse_submit,
)

__all__ = [
    "BACKOFF",
    "BestFitPlacement",
    "COMPLETED",
    "ClassAd",
    "FAILED",
    "INFRASTRUCTURE_STATUSES",
    "RetryPolicy",
    "ClassAdError",
    "Collector",
    "CollectorAgent",
    "CondorPool",
    "DaemonSupervisor",
    "JobQueueLog",
    "Lease",
    "MATCHED",
    "ScheddClaimManager",
    "StartdClaimAgent",
    "build_name_index",
    "DeviceSnapshot",
    "ERROR",
    "ExclusivePlacement",
    "IDLE",
    "JobRecord",
    "MachineSnapshot",
    "Negotiator",
    "NodeExecutor",
    "PinnedPlacement",
    "PlacementPolicy",
    "RUNNING",
    "RandomPlacement",
    "Schedd",
    "Startd",
    "SubmitError",
    "UNDEFINED",
    "WalRecord",
    "CycleStats",
    "MachineAdView",
    "RequirementsPlan",
    "compilation_enabled",
    "compile_expr",
    "format_classad",
    "job_ad",
    "machine_ad",
    "condor_q",
    "condor_status",
    "parse_classad_text",
    "parse_submit",
    "parse",
    "pin_requirements",
    "rank",
    "requirements_plan",
    "set_compilation",
    "slot_name",
    "symmetric_match",
]
