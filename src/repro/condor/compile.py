"""ClassAd expression → Python-closure compiler, plus Requirements analysis.

The interpreted evaluator in :mod:`repro.condor.classad` walks an AST,
re-dispatching on node type and re-parsing operator strings on every
probe. Negotiation evaluates the *same handful* of expressions (the three
submit-file Requirements shapes, the machine-side Requirements, the
scheduler's per-node pins and the parking literal) millions of times per
run, so this module compiles each :class:`~repro.condor.classad.Expr`
tree **once** into a closure:

* operator dispatch happens at compile time (one specialized closure per
  node instead of a ``self.op`` string test per evaluation);
* attribute references become direct dict reads through
  :meth:`ClassAd.raw`, with the full UNDEFINED / role-swap semantics
  preserved (non-literal attribute values fall back to the interpreted
  :meth:`EvalContext.lookup`, which is the only place the circularity
  depth guard can trip);
* constant subtrees are folded at compile time (the parking expression
  ``false`` compiles to a single return);
* ``&&`` / ``||`` short-circuit exactly like the interpreter, including
  the three-valued UNDEFINED rules.

Closures are memoized per AST node. Because :func:`classad.parse` itself
memoizes ASTs per source string, this is equivalent to memoization per
canonical expression string — and because ``condor_qedit`` (and the
requeue path's ``base_requirements`` restore) *replace* the stored Expr
rather than mutating it, a rewritten attribute can never be served a
stale closure: the new Expr object simply misses the cache and compiles
fresh.

Equivalence with the interpreter (values *and* UNDEFINED/ERROR
propagation) is property-tested in
``tests/test_condor_classad_properties.py``.
"""

from __future__ import annotations

import operator
from typing import Callable, Optional

from ..sim import profile as _profile
from .classad import (
    _BUILTINS,
    ERROR,
    UNDEFINED,
    AttrRef,
    BinaryOp,
    ClassAd,
    ClassAdError,
    EvalContext,
    Expr,
    FuncCall,
    Literal,
    MISSING,
    Ternary,
    UnaryOp,
    Value,
    _meta_equal,
)

#: A compiled expression: call with an evaluation context, get a value.
CompiledExpr = Callable[[EvalContext], Value]

#: Closure cache keyed by AST node identity. Entries hold a strong
#: reference to the Expr so its id can never be recycled while cached.
#: Parse-memoized ASTs make this effectively a per-source-string cache;
#: the cap only matters if unbounded distinct expressions are compiled.
#: Eviction is LRU (hits refresh recency), so long-lived shared ASTs —
#: the machine Requirements, the parking literal — never get wiped by a
#: burst of one-off expressions the way the old clear-all did.
_CACHE: dict[int, tuple[Expr, CompiledExpr, bool]] = {}
_CACHE_LIMIT = 4096

#: Requirements analyses, cached with the same identity-keyed discipline.
_PLANS: dict[int, tuple[Expr, "RequirementsPlan"]] = {}

#: Process-wide closure-cache statistics (also mirrored into the active
#: :class:`~repro.sim.profile.SimProfiler`, which reports per-run).
cache_hits = 0
cache_misses = 0
#: LRU evictions across the closure and plan caches since process start.
cache_evictions = 0

_ARITH = BinaryOp._arith
_COMPARE = BinaryOp._compare

_CMP_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Context for folding constant subtrees (they contain no attribute
#: references, so the ads are never consulted).
_FOLD_CTX = EvalContext(ClassAd())


def compile_expr(expr: Expr) -> CompiledExpr:
    """Compile ``expr`` into a closure (memoized per AST node)."""
    return _compiled(expr)[0]


def _compiled(expr: Expr) -> tuple[CompiledExpr, bool]:
    global cache_hits, cache_misses, cache_evictions
    prof = _profile.ACTIVE
    key = id(expr)
    entry = _CACHE.get(key)
    if entry is not None:
        cache_hits += 1
        if prof is not None:
            prof.compile_hits += 1
        # Dict order is recency order: re-append the hit entry.
        del _CACHE[key]
        _CACHE[key] = entry
        return entry[1], entry[2]
    cache_misses += 1
    if prof is not None:
        prof.compile_misses += 1
    fn, const = _build(expr)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.pop(next(iter(_CACHE)))
        cache_evictions += 1
        if prof is not None:
            prof.compile_evictions += 1
    _CACHE[key] = (expr, fn, const)
    return fn, const


# ---------------------------------------------------------------------------
# Requirements analysis
# ---------------------------------------------------------------------------


class RequirementsPlan:
    """How the negotiator should route one job's Requirements.

    Attributes
    ----------
    fn:
        The compiled Requirements closure.
    never_matches:
        The expression is constant and does not evaluate to ``True``
        (the scheduler's parking literal ``false`` is the common case);
        matchmaking can be skipped outright.
    pin_name:
        When the expression is a conjunction containing
        ``TARGET.Name == "<literal>"``, the lowercased literal: only the
        machine advertising that name can possibly match, so the
        negotiator routes the job through the collector's name index
        instead of scanning every machine. ``None`` for general
        expressions (full-scan fallback).
    """

    __slots__ = ("fn", "never_matches", "pin_name")

    def __init__(
        self, fn: CompiledExpr, never_matches: bool, pin_name: Optional[str]
    ) -> None:
        self.fn = fn
        self.never_matches = never_matches
        self.pin_name = pin_name

    def __repr__(self) -> str:
        return (
            f"<RequirementsPlan never_matches={self.never_matches} "
            f"pin={self.pin_name!r}>"
        )


def requirements_plan(expr: Expr) -> RequirementsPlan:
    """Analyze a Requirements expression (memoized per AST node, LRU)."""
    global cache_evictions
    key = id(expr)
    entry = _PLANS.get(key)
    if entry is not None:
        # Dict order is recency order: re-append the hit entry.
        del _PLANS[key]
        _PLANS[key] = entry
        return entry[1]
    fn, const = _compiled(expr)
    never = const and fn(_FOLD_CTX) is not True
    plan = RequirementsPlan(fn, never, _pin_literal(expr))
    if len(_PLANS) >= _CACHE_LIMIT:
        _PLANS.pop(next(iter(_PLANS)))
        cache_evictions += 1
        prof = _profile.ACTIVE
        if prof is not None:
            prof.compile_evictions += 1
    _PLANS[key] = (expr, plan)
    return plan


def _pin_literal(expr: Expr) -> Optional[str]:
    """Extract the pin target from ``TARGET.Name == "<literal>"``.

    Walks the ``&&`` spine only: any conjunct evaluating to False forces
    the whole conjunction to not-True regardless of what the remaining
    conjuncts yield (``UNDEFINED && False`` is ``False``), so a machine
    whose Name differs from the literal can never match. Only
    TARGET-scoped references qualify — an unscoped ``Name`` would read
    the *job's* ad first, which cannot be decided statically.
    """
    if isinstance(expr, BinaryOp):
        if expr.op == "&&":
            return _pin_literal(expr.left) or _pin_literal(expr.right)
        if expr.op == "==":
            for ref, lit in (
                (expr.left, expr.right),
                (expr.right, expr.left),
            ):
                if (
                    isinstance(ref, AttrRef)
                    and ref.scope == "target"
                    and ref.name.lower() == "name"
                    and isinstance(lit, Literal)
                    and isinstance(lit.value, str)
                ):
                    # ClassAd string equality is case-insensitive; the
                    # collector's index is keyed lowercase to match.
                    return lit.value.lower()
    return None


# ---------------------------------------------------------------------------
# Compilation proper
# ---------------------------------------------------------------------------


def _build(expr: Expr) -> tuple[CompiledExpr, bool]:
    """Compile one node; returns (closure, is_constant)."""
    kind = type(expr)
    if kind is Literal:
        value = expr.value
        return (lambda ctx, _v=value: _v), True
    if kind is AttrRef:
        return _build_attr(expr), False
    if kind is UnaryOp:
        return _fold(_build_unary(expr))
    if kind is BinaryOp:
        if expr.op in ("&&", "||"):
            return _build_logical(expr)
        return _fold(_build_binary(expr))
    if kind is Ternary:
        return _fold(_build_ternary(expr))
    if kind is FuncCall:
        return _fold(_build_func(expr))
    raise ClassAdError(f"cannot compile node {expr!r}")


def _fold(built: tuple[CompiledExpr, bool]) -> tuple[CompiledExpr, bool]:
    """Evaluate a constant subtree once and return it as a literal."""
    fn, const = built
    if const:
        value = fn(_FOLD_CTX)
        return (lambda ctx, _v=value: _v), True
    return fn, False


def _build_attr(expr: AttrRef) -> CompiledExpr:
    key = expr.name.lower()
    name = expr.name
    scope = expr.scope
    if scope == "my":

        def run_my(ctx: EvalContext, _key=key, _name=name) -> Value:
            value = ctx.my.raw(_key)
            if value is MISSING:
                return UNDEFINED
            if isinstance(value, Expr):
                # Expression-valued attribute: interpreted lookup keeps
                # the depth guard and role-swap semantics exact.
                return ctx.lookup(_name, "my")
            return value

        return run_my
    if scope == "target":

        def run_target(ctx: EvalContext, _key=key, _name=name) -> Value:
            target = ctx.target
            if target is None:
                return UNDEFINED
            value = target.raw(_key)
            if value is MISSING:
                return UNDEFINED
            if isinstance(value, Expr):
                return ctx.lookup(_name, "target")
            return value

        return run_target

    def run(ctx: EvalContext, _key=key, _name=name) -> Value:
        # Unscoped: my ad first; UNDEFINED (missing *or* literally
        # undefined) falls through to the target ad.
        value = ctx.my.raw(_key)
        if value is not MISSING and value is not UNDEFINED:
            if isinstance(value, Expr):
                return ctx.lookup(_name, None)
            return value
        target = ctx.target
        if target is None:
            return UNDEFINED
        value = target.raw(_key)
        if value is MISSING:
            return UNDEFINED
        if isinstance(value, Expr):
            return ctx.lookup(_name, None)
        return value

    return run


def _build_unary(expr: UnaryOp) -> tuple[CompiledExpr, bool]:
    fn, const = _compiled(expr.operand)
    if expr.op == "-":

        def run_neg(ctx: EvalContext, _f=fn) -> Value:
            value = _f(ctx)
            if value is ERROR:
                return ERROR
            if value is UNDEFINED:
                return UNDEFINED
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return ERROR
            return -value

        return run_neg, const
    if expr.op == "!":

        def run_not(ctx: EvalContext, _f=fn) -> Value:
            value = _f(ctx)
            if value is ERROR:
                return ERROR
            if value is UNDEFINED:
                return UNDEFINED
            if not isinstance(value, bool):
                return ERROR
            return not value

        return run_not, const
    raise ClassAdError(f"unknown unary operator {expr.op!r}")


def _build_logical(expr: BinaryOp) -> tuple[CompiledExpr, bool]:
    lf, lconst = _compiled(expr.left)
    rf, rconst = _compiled(expr.right)
    conj = expr.op == "&&"
    if lconst:
        left = lf(_FOLD_CTX)
        # Decisive constant left: the interpreter short-circuits without
        # touching the right side, so folding is exact.
        if conj and left is False:
            return (lambda ctx: False), True
        if not conj and left is True:
            return (lambda ctx: True), True
    if conj:

        def run_and(ctx: EvalContext, _lf=lf, _rf=rf) -> Value:
            left = _lf(ctx)
            if left is False:
                return False
            if left is not True:
                if left is not UNDEFINED:
                    return ERROR  # ERROR or a non-boolean operand
                # left is UNDEFINED: the right side still decides False.
            right = _rf(ctx)
            if right is False:
                return False
            if right is not True:
                if right is not UNDEFINED:
                    return ERROR
            if left is UNDEFINED or right is UNDEFINED:
                return UNDEFINED
            return True

        return _fold((run_and, lconst and rconst))

    def run_or(ctx: EvalContext, _lf=lf, _rf=rf) -> Value:
        left = _lf(ctx)
        if left is True:
            return True
        if left is not False:
            if left is not UNDEFINED:
                return ERROR
        right = _rf(ctx)
        if right is True:
            return True
        if right is not False:
            if right is not UNDEFINED:
                return ERROR
        if left is UNDEFINED or right is UNDEFINED:
            return UNDEFINED
        return False

    return _fold((run_or, lconst and rconst))


def _build_binary(expr: BinaryOp) -> tuple[CompiledExpr, bool]:
    op = expr.op
    lf, lconst = _compiled(expr.left)
    rf, rconst = _compiled(expr.right)
    const = lconst and rconst
    if op in ("=?=", "=!="):
        same = op == "=?="

        def run_meta(ctx: EvalContext, _lf=lf, _rf=rf, _same=same) -> Value:
            result = _meta_equal(_lf(ctx), _rf(ctx))
            return result if _same else not result

        return run_meta, const
    if op in ("+", "-", "*", "/"):

        def run_arith(ctx: EvalContext, _lf=lf, _rf=rf, _op=op) -> Value:
            left = _lf(ctx)
            right = _rf(ctx)
            if left is ERROR or right is ERROR:
                return ERROR
            if left is UNDEFINED or right is UNDEFINED:
                return UNDEFINED
            return _ARITH(_op, left, right)

        return run_arith, const
    cmp = _CMP_OPS.get(op)
    if cmp is None:
        raise ClassAdError(f"unknown binary operator {op!r}")

    def run_cmp(ctx: EvalContext, _lf=lf, _rf=rf, _op=op, _cmp=cmp) -> Value:
        left = _lf(ctx)
        right = _rf(ctx)
        # Fast paths guard with *exact* types so markers, bools, and any
        # exotic numeric subclass fall through to the interpreter's
        # static helper, keeping semantics bit-identical.
        lt = type(left)
        rt = type(right)
        if (lt is int or lt is float) and (rt is int or rt is float):
            return _cmp(left, right)
        if lt is str and rt is str:
            return _cmp(left.lower(), right.lower())
        if left is ERROR or right is ERROR:
            return ERROR
        if left is UNDEFINED or right is UNDEFINED:
            return UNDEFINED
        return _COMPARE(_op, left, right)

    return run_cmp, const


def _build_ternary(expr: Ternary) -> tuple[CompiledExpr, bool]:
    cf, cconst = _compiled(expr.cond)
    tf, tconst = _compiled(expr.then)
    of, oconst = _compiled(expr.other)

    def run(ctx: EvalContext, _cf=cf, _tf=tf, _of=of) -> Value:
        cond = _cf(ctx)
        if cond is ERROR or cond is UNDEFINED:
            return cond
        if not isinstance(cond, bool):
            return ERROR
        return _tf(ctx) if cond else _of(ctx)

    return run, cconst and tconst and oconst


def _build_func(expr: FuncCall) -> tuple[CompiledExpr, bool]:
    func = _BUILTINS.get(expr.name)
    if func is None:
        # The interpreter returns ERROR for unknown functions without
        # evaluating the arguments; evaluation is side-effect free, so
        # folding to a constant is exact.
        return (lambda ctx: ERROR), True
    built = [_compiled(arg) for arg in expr.args]
    arg_fns = [fn for fn, _ in built]
    const = all(c for _, c in built)

    def run(ctx: EvalContext, _fns=arg_fns, _func=func) -> Value:
        values = [fn(ctx) for fn in _fns]
        for value in values:
            if value is ERROR:
                return ERROR
        try:
            return _func(values)
        except ClassAdError:
            return ERROR

    return run, const


def cache_info() -> dict[str, int]:
    """Closure-cache statistics (for the profiler and tests)."""
    return {
        "hits": cache_hits,
        "misses": cache_misses,
        "evictions": cache_evictions,
        "size": len(_CACHE),
        "plans": len(_PLANS),
    }


def clear_caches() -> None:
    """Drop all compiled closures and plans (tests / memory pressure)."""
    _CACHE.clear()
    _PLANS.clear()
