"""Pool assembly: central manager + compute nodes, wired and ready to run."""

from __future__ import annotations

from typing import Optional, Sequence

from ..sim import Environment
from ..workloads.profiles import JobProfile
from .collector import Collector
from .negotiator import Negotiator, PlacementPolicy
from .schedd import RetryPolicy, Schedd
from .startd import NodeExecutor, Startd


class CondorPool:
    """A complete Condor pool over a set of node executors.

    The pool owns the schedd, collector, per-node startds, and the
    negotiator; jobs are submitted through :meth:`submit` and the whole
    thing runs on the shared simulation environment.
    """

    def __init__(
        self,
        env: Environment,
        executors: Sequence[NodeExecutor],
        policy: PlacementPolicy,
        slots_per_node: int = 16,
        cycle_interval: float = 15.0,
        dispatch_latency: float = 1.0,
        reschedule_on_completion: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        heartbeat_timeout: Optional[float] = None,
    ) -> None:
        if not executors:
            raise ValueError("a pool needs at least one node")
        self.env = env
        self.policy = policy
        self.schedd = Schedd(env, retry_policy=retry_policy)
        self.collector = Collector(heartbeat_timeout=heartbeat_timeout)
        self.startds: list[Startd] = []
        for executor in executors:
            startd = Startd(
                env,
                self.schedd,
                executor,
                slots=slots_per_node,
                dispatch_latency=dispatch_latency,
            )
            self.collector.register(startd)
            self.startds.append(startd)
        self.negotiator = Negotiator(
            env,
            self.schedd,
            self.collector,
            policy,
            cycle_interval,
            reschedule_on_completion=reschedule_on_completion,
        )

    def submit(self, profiles: Sequence[JobProfile]) -> None:
        """Queue jobs; the submit-file style follows the pool's policy."""
        for profile in profiles:
            self.schedd.submit(
                profile,
                sharing=self.policy.sharing,
                memory_aware=self.policy.memory_aware,
            )

    def start(self) -> None:
        """Begin negotiation cycles."""
        self.negotiator.start()

    def run_to_completion(self, limit: Optional[float] = None) -> float:
        """Start the pool, run until the queue drains; returns makespan."""
        if self.schedd.total_jobs == 0:
            raise ValueError("no jobs submitted")
        self.start()
        done = self.schedd.all_done()
        if limit is not None:
            result = self.env.run(until=self.env.any_of([done, self.env.timeout(limit)]))
            if not done.triggered:
                raise TimeoutError(
                    f"pool did not drain within {limit} simulated seconds"
                )
        else:
            self.env.run(until=done)
        return self.schedd.makespan()

    def __repr__(self) -> str:
        return f"<CondorPool nodes={len(self.startds)} {self.schedd!r}>"
