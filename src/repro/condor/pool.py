"""Pool assembly: central manager + compute nodes, wired and ready to run."""

from __future__ import annotations

from typing import Optional, Sequence

from ..net.fabric import MessageFabric
from ..net.profile import NetProfile
from ..sim import Environment
from ..workloads.profiles import JobProfile
from .claims import CollectorAgent, ScheddClaimManager, StartdClaimAgent
from .collector import Collector
from .negotiator import Negotiator, PlacementPolicy
from .recovery import DaemonSupervisor, JobQueueLog
from .schedd import RetryPolicy, Schedd
from .startd import NodeExecutor, Startd


class CondorPool:
    """A complete Condor pool over a set of node executors.

    The pool owns the schedd, collector, per-node startds, and the
    negotiator; jobs are submitted through :meth:`submit` and the whole
    thing runs on the shared simulation environment.

    With ``net`` set (a :class:`~repro.net.profile.NetProfile`), every
    daemon pair routes through a seeded :class:`MessageFabric` and slot
    claims carry leases (:mod:`repro.condor.claims`); without it, the
    daemons call each other directly and behaviour is byte-identical to
    the fabric-free pool.
    """

    def __init__(
        self,
        env: Environment,
        executors: Sequence[NodeExecutor],
        policy: PlacementPolicy,
        slots_per_node: int = 16,
        cycle_interval: float = 15.0,
        dispatch_latency: float = 1.0,
        reschedule_on_completion: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        heartbeat_timeout: Optional[float] = None,
        net: Optional[NetProfile] = None,
        net_seed: int = 0,
        recovery: bool = False,
    ) -> None:
        """``recovery`` attaches the crash–recovery machinery: the schedd
        journals its queue to a :class:`~repro.condor.recovery
        .JobQueueLog` (before any submission, so the journal is complete)
        and a :class:`~repro.condor.recovery.DaemonSupervisor` stands by
        to crash/restart daemons. Requires ``net`` — daemon crashes are
        modelled as fabric endpoint downtime."""
        if not executors:
            raise ValueError("a pool needs at least one node")
        if recovery and net is None:
            raise ValueError(
                "recovery requires the message fabric (pass a NetProfile)"
            )
        self.env = env
        self.policy = policy
        self.net = net
        if net is not None and retry_policy is None and net.retry_jitter > 0:
            # Under an unreliable network many claims die in the same
            # partition window; jittered backoff keeps their retries
            # from re-queueing in lockstep.
            retry_policy = RetryPolicy(
                jitter=net.retry_jitter, jitter_seed=net_seed
            )
        self.schedd = Schedd(env, retry_policy=retry_policy)
        if net is not None and heartbeat_timeout is None:
            heartbeat_timeout = net.heartbeat_timeout_s
        self.collector = Collector(heartbeat_timeout=heartbeat_timeout)
        self.startds: list[Startd] = []
        for executor in executors:
            startd = Startd(
                env,
                self.schedd,
                executor,
                slots=slots_per_node,
                dispatch_latency=dispatch_latency,
            )
            self.collector.register(startd)
            self.startds.append(startd)
        self.fabric: Optional[MessageFabric] = None
        self.claims: Optional[ScheddClaimManager] = None
        self.agents: dict[str, StartdClaimAgent] = {}
        self.collector_agent: Optional[CollectorAgent] = None
        if net is not None:
            self.fabric = MessageFabric(env, net, net_seed)
            self.claims = ScheddClaimManager(env, self.schedd, self.fabric, net)
            self.agents = {
                startd.name: StartdClaimAgent(env, startd, self.fabric, net)
                for startd in self.startds
            }
            self.collector_agent = CollectorAgent(
                env, self.collector, self.fabric, net, self.startds
            )
        self.negotiator = Negotiator(
            env,
            self.schedd,
            self.collector,
            policy,
            cycle_interval,
            reschedule_on_completion=reschedule_on_completion,
            fabric=self.fabric,
        )
        self.supervisor: Optional[DaemonSupervisor] = None
        if recovery:
            self.schedd.wal = JobQueueLog(env, self.schedd)
            self.supervisor = DaemonSupervisor(env, self)

    def submit(self, profiles: Sequence[JobProfile]) -> None:
        """Queue jobs; the submit-file style follows the pool's policy."""
        for profile in profiles:
            self.schedd.submit(
                profile,
                sharing=self.policy.sharing,
                memory_aware=self.policy.memory_aware,
            )

    def start(self) -> None:
        """Begin negotiation cycles."""
        self.negotiator.start()

    def lease_expiries(self) -> int:
        """Startd-side lease expiry kills across the pool (fabric mode)."""
        return sum(agent.lease_expiries for agent in self.agents.values())

    def claims_rejected(self) -> int:
        """Claim activations the startds turned down (fabric mode)."""
        return sum(agent.claims_rejected for agent in self.agents.values())

    def run_to_completion(self, limit: Optional[float] = None) -> float:
        """Start the pool, run until the queue drains; returns makespan."""
        if self.schedd.total_jobs == 0:
            raise ValueError("no jobs submitted")
        self.start()
        done = self.schedd.all_done()
        if limit is not None:
            result = self.env.run(until=self.env.any_of([done, self.env.timeout(limit)]))
            if not done.triggered:
                raise TimeoutError(
                    f"pool did not drain within {limit} simulated seconds"
                )
        else:
            self.env.run(until=done)
        return self.schedd.makespan()

    def __repr__(self) -> str:
        return f"<CondorPool nodes={len(self.startds)} {self.schedd!r}>"
