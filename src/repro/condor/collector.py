"""The collector: central-manager registry of node state.

Real Condor nodes push periodic ClassAd updates to the collector; the
negotiator then works from the collector's (slightly stale) view. We
model the pull at the start of each negotiation cycle, which corresponds
to updates arriving just in time — the staleness that matters for the
paper (dispatch waiting for the next cycle) lives in the negotiator.
"""

from __future__ import annotations

from .ads import MachineSnapshot
from .startd import Startd


class Collector:
    """Registry of startds; serves fresh snapshots to the negotiator."""

    def __init__(self) -> None:
        self._startds: dict[str, Startd] = {}

    def register(self, startd: Startd) -> None:
        if startd.name in self._startds:
            raise ValueError(f"node {startd.name!r} already registered")
        self._startds[startd.name] = startd

    def startd(self, name: str) -> Startd:
        return self._startds[name]

    @property
    def startds(self) -> list[Startd]:
        return list(self._startds.values())

    def snapshots(self) -> list[MachineSnapshot]:
        """Current state of every node, in registration order."""
        return [s.snapshot() for s in self._startds.values()]

    def __len__(self) -> int:
        return len(self._startds)

    def __repr__(self) -> str:
        return f"<Collector nodes={len(self._startds)}>"
