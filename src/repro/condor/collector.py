"""The collector: central-manager registry of node state.

Real Condor nodes push periodic ClassAd updates to the collector; the
negotiator then works from the collector's (slightly stale) view. In
direct mode we model the pull at the start of each negotiation cycle,
which corresponds to updates arriving just in time — the staleness that
matters for the paper (dispatch waiting for the next cycle) lives in the
negotiator. Under the message fabric the collector switches to *store*
mode: it serves the last machine-update each startd managed to push
through the network, so the negotiator's view really is stale.

Failure model: a crashed node is *deregistered* (the fault injector
knows the exact moment), and — as the detection backstop real pools rely
on — a node whose heartbeat goes stale is dropped from the negotiation
snapshots until it reports again. Heartbeats are opt-in: with no
``heartbeat_timeout`` configured and no heartbeats recorded, behaviour
is identical to the fault-free collector. Staleness transitions are
reported to the observability layer (a trace instant plus the
``collector.stale_drops`` / ``collector.reregistrations`` counters) so
silent capacity loss shows up in traces.
"""

from __future__ import annotations

from typing import Optional

from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .ads import MachineSnapshot, copy_snapshot, slot_name
from .startd import Startd

#: Index value for a slot name claimed by several nodes (names differing
#: only by case collide under the case-insensitive index): the negotiator
#: must fall back to a full scan rather than pick one arbitrarily.
AMBIGUOUS_NAME = object()


def build_name_index(
    snapshots: list[MachineSnapshot],
) -> dict[str, object]:
    """Slot-name → snapshot index for pinned-job routing.

    Lowercased (ClassAd string comparison is case-insensitive); a
    case-collision maps to :data:`AMBIGUOUS_NAME`. Shared between the
    collector's direct-mode :meth:`Collector.indexed_snapshots` and the
    fabric-mode negotiator, which indexes snapshot-response payloads.
    """
    index: dict[str, object] = {}
    for snapshot in snapshots:
        key = slot_name(snapshot.node).lower()
        index[key] = AMBIGUOUS_NAME if key in index else snapshot
    return index


class Collector:
    """Registry of startds; serves fresh snapshots to the negotiator.

    Parameters
    ----------
    heartbeat_timeout:
        Seconds without a heartbeat after which a node is considered
        dead. ``None`` (default) disables staleness checking entirely.
    """

    def __init__(self, heartbeat_timeout: Optional[float] = None) -> None:
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        self.heartbeat_timeout = heartbeat_timeout
        self._startds: dict[str, Startd] = {}
        self._dead: set[str] = set()
        self._heartbeats: dict[str, float] = {}
        #: Fabric mode: serve stored machine-updates, not live state.
        self._use_store = False
        self._stored: dict[str, MachineSnapshot] = {}
        #: Last observed staleness per heartbeat-tracked node, for
        #: transition (not per-query) observability emissions.
        self._stale: dict[str, bool] = {}
        #: Staleness drops / re-registrations observed (transitions).
        self.stale_drops = 0
        self.reregistrations = 0

    def register(self, startd: Startd) -> None:
        if startd.name in self._startds:
            raise ValueError(f"node {startd.name!r} already registered")
        self._startds[startd.name] = startd

    def deregister(self, name: str) -> None:
        """Drop a crashed node from matchmaking (it stays in the registry)."""
        if name not in self._startds:
            raise KeyError(f"node {name!r} is not registered")
        self._dead.add(name)

    def reinstate(self, name: str) -> None:
        """Readmit a rebooted node to matchmaking."""
        if name not in self._startds:
            raise KeyError(f"node {name!r} is not registered")
        self._dead.discard(name)

    def record_heartbeat(self, name: str, now: float) -> None:
        """Note a liveness report from ``name`` at simulation time ``now``."""
        if name not in self._startds:
            raise KeyError(f"node {name!r} is not registered")
        self._heartbeats[name] = now

    # -- fabric store mode ------------------------------------------------

    def enable_store(self) -> None:
        """Serve stored machine-updates instead of reading startds live."""
        self._use_store = True

    def store_update(self, snapshot: MachineSnapshot, now: float) -> None:
        """Record a machine-update that arrived over the fabric.

        The update doubles as the node's heartbeat — exactly Condor's
        behaviour, where the periodic ClassAd push *is* the liveness
        signal.
        """
        self._stored[snapshot.node] = snapshot
        self.record_heartbeat(snapshot.node, now)

    # -- liveness ---------------------------------------------------------

    def is_alive(self, name: str, now: Optional[float] = None) -> bool:
        """Whether ``name`` should be offered to the negotiator.

        Deregistered nodes are dead. Staleness applies only when a
        timeout is configured, ``now`` is supplied, *and* the node has
        ever heartbeated — so pools that never enable heartbeats behave
        exactly as before.
        """
        if name in self._dead:
            return False
        if (
            self.heartbeat_timeout is not None
            and now is not None
            and name in self._heartbeats
            and now - self._heartbeats[name] > self.heartbeat_timeout
        ):
            return False
        return True

    def _note_staleness(self, name: str, now: Optional[float]) -> None:
        """Track heartbeat-staleness transitions and report them."""
        if (
            self.heartbeat_timeout is None
            or now is None
            or name not in self._heartbeats
            or name in self._dead
        ):
            return
        stale = now - self._heartbeats[name] > self.heartbeat_timeout
        was_stale = self._stale.get(name, False)
        if stale == was_stale:
            return
        self._stale[name] = stale
        tracer = _trace.ACTIVE
        registry = _metrics.ACTIVE
        if stale:
            self.stale_drops += 1
            if tracer is not None:
                tracer.instant(
                    "node-stale",
                    "collector",
                    now,
                    tid=_trace.FAULTS_TID,
                    node=name,
                    last_heartbeat=self._heartbeats[name],
                )
            if registry is not None:
                registry.counter("collector.stale_drops").inc()
        else:
            self.reregistrations += 1
            if tracer is not None:
                tracer.instant(
                    "node-reregistered",
                    "collector",
                    now,
                    tid=_trace.FAULTS_TID,
                    node=name,
                )
            if registry is not None:
                registry.counter("collector.reregistrations").inc()

    def startd(self, name: str) -> Startd:
        return self._startds[name]

    @property
    def startds(self) -> list[Startd]:
        return list(self._startds.values())

    def snapshots(self, now: Optional[float] = None) -> list[MachineSnapshot]:
        """Current state of every live node, in registration order.

        Store mode returns copies of the last received machine-updates
        (nodes that never reported are absent); direct mode reads each
        startd live.
        """
        out: list[MachineSnapshot] = []
        for s in self._startds.values():
            self._note_staleness(s.name, now)
            if not self.is_alive(s.name, now):
                continue
            if self._use_store:
                stored = self._stored.get(s.name)
                if stored is not None:
                    out.append(copy_snapshot(stored))
            else:
                out.append(s.snapshot())
        return out

    def indexed_snapshots(
        self, now: Optional[float] = None
    ) -> tuple[list[MachineSnapshot], dict[str, object]]:
        """Snapshots plus a slot-name index for pinned-job routing.

        Because every live snapshot appears in the index, a miss proves
        no machine advertises that name, and a hit is the *only* machine
        that can satisfy ``TARGET.Name == <literal>``. See
        :func:`build_name_index`.
        """
        snapshots = self.snapshots(now)
        return snapshots, build_name_index(snapshots)

    def __len__(self) -> int:
        return len(self._startds)

    def __repr__(self) -> str:
        dead = len(self._dead)
        return f"<Collector nodes={len(self._startds)} dead={dead}>"
