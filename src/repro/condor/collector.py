"""The collector: central-manager registry of node state.

Real Condor nodes push periodic ClassAd updates to the collector; the
negotiator then works from the collector's (slightly stale) view. We
model the pull at the start of each negotiation cycle, which corresponds
to updates arriving just in time — the staleness that matters for the
paper (dispatch waiting for the next cycle) lives in the negotiator.

Failure model: a crashed node is *deregistered* (the fault injector
knows the exact moment), and — as the detection backstop real pools rely
on — a node whose heartbeat goes stale is dropped from the negotiation
snapshots until it reports again. Heartbeats are opt-in: with no
``heartbeat_timeout`` configured and no heartbeats recorded, behaviour
is identical to the fault-free collector.
"""

from __future__ import annotations

from typing import Optional

from .ads import MachineSnapshot, slot_name
from .startd import Startd

#: Index value for a slot name claimed by several nodes (names differing
#: only by case collide under the case-insensitive index): the negotiator
#: must fall back to a full scan rather than pick one arbitrarily.
AMBIGUOUS_NAME = object()


class Collector:
    """Registry of startds; serves fresh snapshots to the negotiator.

    Parameters
    ----------
    heartbeat_timeout:
        Seconds without a heartbeat after which a node is considered
        dead. ``None`` (default) disables staleness checking entirely.
    """

    def __init__(self, heartbeat_timeout: Optional[float] = None) -> None:
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        self.heartbeat_timeout = heartbeat_timeout
        self._startds: dict[str, Startd] = {}
        self._dead: set[str] = set()
        self._heartbeats: dict[str, float] = {}

    def register(self, startd: Startd) -> None:
        if startd.name in self._startds:
            raise ValueError(f"node {startd.name!r} already registered")
        self._startds[startd.name] = startd

    def deregister(self, name: str) -> None:
        """Drop a crashed node from matchmaking (it stays in the registry)."""
        if name not in self._startds:
            raise KeyError(f"node {name!r} is not registered")
        self._dead.add(name)

    def reinstate(self, name: str) -> None:
        """Readmit a rebooted node to matchmaking."""
        if name not in self._startds:
            raise KeyError(f"node {name!r} is not registered")
        self._dead.discard(name)

    def record_heartbeat(self, name: str, now: float) -> None:
        """Note a liveness report from ``name`` at simulation time ``now``."""
        if name not in self._startds:
            raise KeyError(f"node {name!r} is not registered")
        self._heartbeats[name] = now

    def is_alive(self, name: str, now: Optional[float] = None) -> bool:
        """Whether ``name`` should be offered to the negotiator.

        Deregistered nodes are dead. Staleness applies only when a
        timeout is configured, ``now`` is supplied, *and* the node has
        ever heartbeated — so pools that never enable heartbeats behave
        exactly as before.
        """
        if name in self._dead:
            return False
        if (
            self.heartbeat_timeout is not None
            and now is not None
            and name in self._heartbeats
            and now - self._heartbeats[name] > self.heartbeat_timeout
        ):
            return False
        return True

    def startd(self, name: str) -> Startd:
        return self._startds[name]

    @property
    def startds(self) -> list[Startd]:
        return list(self._startds.values())

    def snapshots(self, now: Optional[float] = None) -> list[MachineSnapshot]:
        """Current state of every live node, in registration order."""
        return [
            s.snapshot()
            for s in self._startds.values()
            if self.is_alive(s.name, now)
        ]

    def indexed_snapshots(
        self, now: Optional[float] = None
    ) -> tuple[list[MachineSnapshot], dict[str, object]]:
        """Snapshots plus a slot-name index for pinned-job routing.

        The index maps each live node's advertised slot name (lowercased
        — ClassAd string comparison is case-insensitive) to its
        snapshot. Because every live snapshot appears in the index, a
        miss proves no machine advertises that name, and a hit is the
        *only* machine that can satisfy ``TARGET.Name == <literal>``.
        Should two nodes' names collide after lowercasing, the entry
        becomes :data:`AMBIGUOUS_NAME` and the negotiator falls back to
        scanning.
        """
        snapshots = self.snapshots(now)
        index: dict[str, object] = {}
        for snapshot in snapshots:
            key = slot_name(snapshot.node).lower()
            index[key] = AMBIGUOUS_NAME if key in index else snapshot
        return snapshots, index

    def __len__(self) -> int:
        return len(self._startds)

    def __repr__(self) -> str:
        dead = len(self._dead)
        return f"<Collector nodes={len(self._startds)} dead={dead}>"
