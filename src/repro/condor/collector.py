"""The collector: central-manager registry of node state.

Real Condor nodes push periodic ClassAd updates to the collector; the
negotiator then works from the collector's (slightly stale) view. In
direct mode we model the pull at the start of each negotiation cycle,
which corresponds to updates arriving just in time — the staleness that
matters for the paper (dispatch waiting for the next cycle) lives in the
negotiator. Under the message fabric the collector switches to *store*
mode: it serves the last machine-update each startd managed to push
through the network, so the negotiator's view really is stale.

Failure model: a crashed node is *deregistered* (the fault injector
knows the exact moment), and — as the detection backstop real pools rely
on — a node whose heartbeat goes stale is dropped from the negotiation
snapshots until it reports again. Heartbeats are opt-in: with no
``heartbeat_timeout`` configured and no heartbeats recorded, behaviour
is identical to the fault-free collector. Staleness transitions are
reported to the observability layer (a trace instant plus the
``collector.stale_drops`` / ``collector.reregistrations`` counters) so
silent capacity loss shows up in traces.
"""

from __future__ import annotations

from typing import Optional

from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .ads import MachineSnapshot, copy_snapshot, machine_ad, slot_name
from .startd import Startd

#: Index value for a slot name claimed by several nodes (names differing
#: only by case collide under the case-insensitive index): the negotiator
#: must fall back to a full scan rather than pick one arbitrarily.
AMBIGUOUS_NAME = object()


def build_name_index(
    snapshots: list[MachineSnapshot],
) -> dict[str, object]:
    """Slot-name → snapshot index for pinned-job routing.

    Lowercased (ClassAd string comparison is case-insensitive); a
    case-collision maps to :data:`AMBIGUOUS_NAME`. Shared between the
    collector's direct-mode :meth:`Collector.indexed_snapshots` and the
    fabric-mode negotiator, which indexes snapshot-response payloads.
    """
    index: dict[str, object] = {}
    for snapshot in snapshots:
        key = slot_name(snapshot.node).lower()
        index[key] = AMBIGUOUS_NAME if key in index else snapshot
    return index


class Collector:
    """Registry of startds; serves fresh snapshots to the negotiator.

    Parameters
    ----------
    heartbeat_timeout:
        Seconds without a heartbeat after which a node is considered
        dead. ``None`` (default) disables staleness checking entirely.
    """

    def __init__(self, heartbeat_timeout: Optional[float] = None) -> None:
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        self.heartbeat_timeout = heartbeat_timeout
        self._startds: dict[str, Startd] = {}
        self._dead: set[str] = set()
        self._heartbeats: dict[str, float] = {}
        #: Fabric mode: serve stored machine-updates, not live state.
        self._use_store = False
        self._stored: dict[str, MachineSnapshot] = {}
        #: Last observed staleness per heartbeat-tracked node, for
        #: transition (not per-query) observability emissions.
        self._stale: dict[str, bool] = {}
        #: Staleness drops / re-registrations observed (transitions).
        self.stale_drops = 0
        self.reregistrations = 0
        #: Delta-maintained candidate set: names of nodes that are alive,
        #: not deregistered, and have at least one free host slot. Every
        #: job Requirements shape includes ``TARGET.FreeSlots >= 1``, so
        #: matchmaking decisions restricted to this set are identical to
        #: a full scan; startds push 0<->free transitions as they happen.
        self._free: set[str] = set()
        #: Registration order, so candidate lists keep the order
        #: :meth:`snapshots` would have produced.
        self._reg_index: dict[str, int] = {}
        #: Static lowercased slot-name -> startd map (collisions map to
        #: :data:`AMBIGUOUS_NAME` permanently; the negotiator falls back
        #: to a scan, which decides identically).
        self._name_map: dict[str, object] = {}

    def register(self, startd: Startd) -> None:
        if startd.name in self._startds:
            raise ValueError(f"node {startd.name!r} already registered")
        self._reg_index[startd.name] = len(self._startds)
        self._startds[startd.name] = startd
        key = slot_name(startd.name).lower()
        self._name_map[key] = (
            AMBIGUOUS_NAME if key in self._name_map else startd
        )
        startd.watcher = self
        self.refresh_membership(startd)

    def deregister(self, name: str) -> None:
        """Drop a crashed node from matchmaking (it stays in the registry)."""
        if name not in self._startds:
            raise KeyError(f"node {name!r} is not registered")
        self._dead.add(name)
        self._free.discard(name)

    def reinstate(self, name: str) -> None:
        """Readmit a rebooted node to matchmaking."""
        if name not in self._startds:
            raise KeyError(f"node {name!r} is not registered")
        self._dead.discard(name)
        self.refresh_membership(self._startds[name])

    def crash_reset(self) -> None:
        """Forget all volatile state: the collector daemon just crashed.

        The stored ads, heartbeat clocks, and staleness cache all lived
        in the dead process; a restarted collector learns the pool again
        from the re-advertisements the recovery supervisor forces. The
        registration table and ``_dead`` survive — they model pool
        *configuration* and the fault injector's own bookkeeping, not
        collector memory.
        """
        self._stored.clear()
        self._heartbeats.clear()
        self._stale.clear()

    def refresh_membership(self, startd: Startd) -> None:
        """Re-derive one node's presence in the free-candidate set.

        Called on registration and by the startd itself whenever its
        free-slot count crosses zero or its liveness flips, keeping the
        set O(1)-current without any per-cycle rebuild.
        """
        name = startd.name
        if startd.alive and name not in self._dead and startd.free_slots > 0:
            self._free.add(name)
        else:
            self._free.discard(name)

    def record_heartbeat(self, name: str, now: float) -> None:
        """Note a liveness report from ``name`` at simulation time ``now``."""
        if name not in self._startds:
            raise KeyError(f"node {name!r} is not registered")
        self._heartbeats[name] = now

    # -- fabric store mode ------------------------------------------------

    def enable_store(self) -> None:
        """Serve stored machine-updates instead of reading startds live."""
        self._use_store = True

    def store_update(self, snapshot: MachineSnapshot, now: float) -> None:
        """Record a machine-update that arrived over the fabric.

        The update doubles as the node's heartbeat — exactly Condor's
        behaviour, where the periodic ClassAd push *is* the liveness
        signal.
        """
        self._stored[snapshot.node] = snapshot
        self.record_heartbeat(snapshot.node, now)

    # -- liveness ---------------------------------------------------------

    def is_alive(self, name: str, now: Optional[float] = None) -> bool:
        """Whether ``name`` should be offered to the negotiator.

        Deregistered nodes are dead. Staleness applies only when a
        timeout is configured, ``now`` is supplied, *and* the node has
        ever heartbeated — so pools that never enable heartbeats behave
        exactly as before.
        """
        if name in self._dead:
            return False
        if (
            self.heartbeat_timeout is not None
            and now is not None
            and name in self._heartbeats
            and now - self._heartbeats[name] > self.heartbeat_timeout
        ):
            return False
        return True

    def _note_staleness(self, name: str, now: Optional[float]) -> None:
        """Track heartbeat-staleness transitions and report them."""
        if (
            self.heartbeat_timeout is None
            or now is None
            or name not in self._heartbeats
            or name in self._dead
        ):
            return
        stale = now - self._heartbeats[name] > self.heartbeat_timeout
        was_stale = self._stale.get(name, False)
        if stale == was_stale:
            return
        self._stale[name] = stale
        tracer = _trace.ACTIVE
        registry = _metrics.ACTIVE
        if stale:
            self.stale_drops += 1
            if tracer is not None:
                tracer.instant(
                    "node-stale",
                    "collector",
                    now,
                    tid=_trace.FAULTS_TID,
                    node=name,
                    last_heartbeat=self._heartbeats[name],
                )
            if registry is not None:
                registry.counter("collector.stale_drops").inc()
        else:
            self.reregistrations += 1
            if tracer is not None:
                tracer.instant(
                    "node-reregistered",
                    "collector",
                    now,
                    tid=_trace.FAULTS_TID,
                    node=name,
                )
            if registry is not None:
                registry.counter("collector.reregistrations").inc()

    def startd(self, name: str) -> Startd:
        return self._startds[name]

    @property
    def startds(self) -> list[Startd]:
        return list(self._startds.values())

    def snapshots(self, now: Optional[float] = None) -> list[MachineSnapshot]:
        """Current state of every live node, in registration order.

        Store mode returns copies of the last received machine-updates
        (nodes that never reported are absent); direct mode reads each
        startd live.
        """
        out: list[MachineSnapshot] = []
        for s in self._startds.values():
            self._note_staleness(s.name, now)
            if not self.is_alive(s.name, now):
                continue
            if self._use_store:
                stored = self._stored.get(s.name)
                if stored is not None:
                    out.append(copy_snapshot(stored))
            else:
                out.append(s.snapshot())
        return out

    def indexed_snapshots(
        self, now: Optional[float] = None
    ) -> tuple[list[MachineSnapshot], dict[str, object]]:
        """Snapshots plus a slot-name index for pinned-job routing.

        Because every live snapshot appears in the index, a miss proves
        no machine advertises that name, and a hit is the *only* machine
        that can satisfy ``TARGET.Name == <literal>``. See
        :func:`build_name_index`.
        """
        snapshots = self.snapshots(now)
        return snapshots, build_name_index(snapshots)

    def live_view(self, use_index: bool) -> Optional["LiveCycleView"]:
        """A lazy per-cycle view over the delta-maintained live sets.

        Only available when neither heartbeat staleness nor fabric store
        mode is in play — both need the per-query full walk (staleness
        transitions are observable; stored ads shadow live state). The
        returned view builds snapshots on demand, so a cycle that never
        probes a machine never pays for it.
        """
        if self.heartbeat_timeout is not None or self._use_store:
            return None
        return LiveCycleView(self, use_index)

    def __len__(self) -> int:
        return len(self._startds)

    def __repr__(self) -> str:
        dead = len(self._dead)
        return f"<Collector nodes={len(self._startds)} dead={dead}>"


class LiveCycleView:
    """One negotiation cycle's lazy window onto the collector.

    Snapshots and machine ads are built on first use and cached for the
    cycle, shared between the candidate scan and the pin-index lookup so
    deductions land on one object per node. Restricting candidates to
    free-slot nodes is decision-identical to the historical full scan
    because every job Requirements shape includes
    ``TARGET.FreeSlots >= 1`` (only the per-cycle evaluation *count*
    observed by the profiler shrinks).
    """

    __slots__ = ("_collector", "_snaps", "_ads", "_candidates", "has_index")

    def __init__(self, collector: Collector, use_index: bool) -> None:
        self._collector = collector
        self._snaps: dict[str, MachineSnapshot] = {}
        self._ads: dict[int, object] = {}
        self._candidates: Optional[list[MachineSnapshot]] = None
        self.has_index = use_index

    def _snapshot_of(self, startd: Startd) -> MachineSnapshot:
        snap = self._snaps.get(startd.name)
        if snap is None:
            snap = startd.snapshot()
            self._snaps[startd.name] = snap
        return snap

    def candidates(self) -> list[MachineSnapshot]:
        """Snapshots of live free-slot nodes, in registration order."""
        if self._candidates is None:
            collector = self._collector
            startds = collector._startds
            names = sorted(
                collector._free, key=collector._reg_index.__getitem__
            )
            self._candidates = [
                self._snapshot_of(startds[name]) for name in names
            ]
        return self._candidates

    def lookup(self, key: str):
        """Pin-index lookup: snapshot, ``None`` (miss) or AMBIGUOUS_NAME.

        A miss proves no live machine advertises the name; a hit is the
        only machine that can satisfy ``TARGET.Name == <literal>``. Full
        nodes resolve too (their snapshot is built on demand): the pin
        probe then fails on ``FreeSlots >= 1`` exactly as the historical
        index over all live snapshots did.
        """
        entry = self._collector._name_map.get(key)
        if entry is None or entry is AMBIGUOUS_NAME:
            return entry
        if not self._collector.is_alive(entry.name):
            return None
        return self._snapshot_of(entry)

    def ad(self, snapshot: MachineSnapshot):
        """The (cached) live machine-ad view for ``snapshot``."""
        view = self._ads.get(id(snapshot))
        if view is None:
            view = machine_ad(snapshot)
            self._ads[id(snapshot)] = view
        return view
