"""HTCondor-style claim leases over the message fabric.

In direct mode the negotiator calls ``startd.start_job`` and the starter
calls ``schedd.mark_completed`` — perfectly reliable Python calls. Under
the fabric every daemon interaction becomes a message that can be lost,
delayed, duplicated, or partitioned away, and the glue in this module
keeps the cluster's state consistent anyway:

* :class:`ScheddClaimManager` — the schedd's side: accepts match
  notifications (IDLE → MATCHED), activates claims on startds, opens a
  claim when the job-started report arrives, renews the lease
  periodically, and declares the claim lost when renewals go
  unacknowledged for too long (requeueing the job through the existing
  ``RetryPolicy``/BACKOFF path).
* :class:`StartdClaimAgent` — the startd's side: validates and launches
  claims, extends the lease on each renewal, and *kills the run* when
  the lease expires — a partitioned schedd cannot hold a slot forever.
* :class:`CollectorAgent` — routes periodic machine-updates (which
  double as heartbeats) and the negotiator's snapshot requests.

Why no run can overlap its own retry (the no-double-run argument):

1. The startd-side lease expires at the *send* time of the last renewal
   it received, plus ``lease_duration_s`` — receiving a message proves
   the sender was alive at send time, nothing later.
2. The schedd stops sending renewals once they go unacknowledged for a
   full lease duration, then waits out ``last_send + lease_duration_s``
   (plus slack) before declaring the claim lost. Any renewal the startd
   might still receive was sent at or before ``last_send``, so its lease
   expires — and the watchdog kills the run — strictly before the schedd
   requeues the job.
3. An orphaned claim-activation (the schedd timed the match out before
   the startd saw it) is bounded the same way: its lease starts at the
   activation's send time, which is also when the schedd's match timer
   started, and ``match_timeout_s > lease_duration_s`` is enforced by
   :class:`~repro.net.profile.NetProfile`. Activations that arrive
   already past their lease are dropped on the floor.

Stale messages — reports from a match the schedd has since abandoned —
carry an outdated claim token and are rejected; a stale job-started
additionally triggers a best-effort claim-release so the orphan run is
reaped early rather than waiting for its lease.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults.errors import CLAIM_LOST, ClaimReleased, LeaseExpired
from ..mpss.runtime import JobRunResult
from ..net.fabric import (
    COLLECTOR,
    NEGOTIATOR,
    SCHEDD,
    Message,
    MessageFabric,
    startd_endpoint,
)
from ..net.profile import NetProfile
from ..obs import audit as _audit
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..sim import Environment
from .collector import Collector
from .schedd import IDLE, MATCHED, RUNNING, JobRecord, Schedd, job_tid
from .startd import Startd

#: Fabric message kinds, one namespace for the whole daemon protocol.
MSG_MATCH = "match"
MSG_RESCHEDULE = "reschedule"
MSG_CLAIM_ACTIVATE = "claim-activate"
MSG_CLAIM_REJECT = "claim-reject"
MSG_CLAIM_RELEASE = "claim-release"
MSG_JOB_STARTED = "job-started"
MSG_JOB_DONE = "job-done"
MSG_LEASE_RENEW = "lease-renew"
MSG_MACHINE_UPDATE = "machine-update"
MSG_SNAPSHOT_REQUEST = "snapshot-request"
MSG_SNAPSHOT_RESPONSE = "snapshot-response"


@dataclass
class Lease:
    """Startd-side lease state for one active claim."""

    job_id: str
    token: int
    expires_at: float
    closed: bool = False


@dataclass
class _Claim:
    """Schedd-side state for one activated claim."""

    job_id: str
    node: str
    token: int
    opened_at: float
    #: Send time of the newest renewal (or job-started) the startd has
    #: acknowledged — proof the startd heard from us at that instant.
    last_acked_send: float
    #: Send time of the newest renewal we have *dispatched*.
    last_sent: float
    closed: bool = False


class ScheddClaimManager:
    """The schedd's half of the match/claim/lease protocol."""

    def __init__(
        self,
        env: Environment,
        schedd: Schedd,
        fabric: MessageFabric,
        profile: NetProfile,
    ) -> None:
        self.env = env
        self.schedd = schedd
        self.fabric = fabric
        self.profile = profile
        self._claims: dict[int, _Claim] = {}
        self.claims_opened = 0
        self.claims_lost = 0
        self.claims_rejected = 0
        self.match_timeouts = 0
        self.stale_messages = 0
        fabric.register(SCHEDD, MSG_MATCH, self._on_match)
        fabric.register(SCHEDD, MSG_CLAIM_REJECT, self._on_reject)
        fabric.register(SCHEDD, MSG_JOB_STARTED, self._on_started)
        fabric.register(SCHEDD, MSG_JOB_DONE, self._on_done)

    # -- inbound handlers -------------------------------------------------

    def _on_match(self, msg: Message) -> None:
        payload = msg.payload
        job_id = payload["job_id"]
        token = payload["token"]
        record = self.schedd.get(job_id)
        if record.status != IDLE:
            # The job was matched elsewhere (or finished) while this
            # notification was in flight.
            self._stale("match", job_id)
            return
        self.schedd.mark_matched(job_id, token)
        self.fabric.send(
            SCHEDD,
            startd_endpoint(payload["node"]),
            MSG_CLAIM_ACTIVATE,
            {
                "job_id": job_id,
                "token": token,
                "device": payload["device"],
                "exclusive": payload["exclusive"],
            },
        )
        self.env.process(
            self._match_watchdog(record, token), name=f"match-timeout:{job_id}"
        )

    def _on_reject(self, msg: Message) -> None:
        payload = msg.payload
        job_id = payload["job_id"]
        record = self.schedd.get(job_id)
        if record.status == MATCHED and record.claim_token == payload["token"]:
            self.claims_rejected += 1
            registry = _metrics.ACTIVE
            if registry is not None:
                registry.counter("net.claims_rejected").inc()
            self.schedd.unmatch(job_id)
        else:
            self._stale("claim-reject", job_id)

    def _on_started(self, msg: Message) -> None:
        payload = msg.payload
        job_id = payload["job_id"]
        token = payload["token"]
        record = self.schedd.get(job_id)
        if record.status == MATCHED and record.claim_token == token:
            claim = _Claim(
                job_id=job_id,
                node=payload["node"],
                token=token,
                opened_at=self.env.now,
                last_acked_send=msg.send_time,
                last_sent=msg.send_time,
            )
            self._claims[token] = claim
            self.claims_opened += 1
            auditor = _audit.ACTIVE
            if auditor is not None:
                auditor.claim_opened(job_id, token, self.env.now)
            self.schedd.mark_running(job_id, payload["node"], payload["device"])
            self.env.process(
                self._renewal_loop(record, claim), name=f"lease:{job_id}"
            )
        else:
            # An orphan run from a match we abandoned: reap it early.
            self._stale("job-started", job_id)
            self.fabric.send(
                SCHEDD,
                msg.src,
                MSG_CLAIM_RELEASE,
                {"job_id": job_id, "token": token},
            )

    def _on_done(self, msg: Message) -> None:
        payload = msg.payload
        job_id = payload["job_id"]
        token = payload["token"]
        record = self.schedd.get(job_id)
        claim = self._claims.get(token)
        if (
            claim is None
            or claim.closed
            or record.claim_token != token
            or record.status != RUNNING
        ):
            # Late report from a claim already declared lost (the run's
            # real outcome was superseded by the requeue).
            self._stale("job-done", job_id)
            return
        self._close_claim(claim)
        result: JobRunResult = payload["result"]
        if payload["failed"]:
            self.schedd.mark_failed(job_id, result)
        else:
            self.schedd.mark_completed(job_id, result)

    # -- timers -----------------------------------------------------------

    def _match_watchdog(
        self, record: JobRecord, token: int, deadline: float | None = None
    ):
        if deadline is None:
            deadline = self.env.now + self.profile.match_timeout_s
        if deadline > self.env.now:
            yield self.env.timeout(deadline - self.env.now)
        if self.schedd._records.get(record.job_id) is not record:
            # Stale closure: a crash–recovery replay replaced this record
            # object and restarted its own watchdog against the journal.
            return
        if record.status == MATCHED and record.claim_token == token:
            self.match_timeouts += 1
            registry = _metrics.ACTIVE
            if registry is not None:
                registry.counter("net.match_timeouts").inc()
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.instant(
                    "match-timeout",
                    "net",
                    self.env.now,
                    tid=job_tid(record),
                )
            self.schedd.unmatch(record.job_id)

    def _renewal_loop(self, record: JobRecord, claim: _Claim):
        profile = self.profile
        registry = _metrics.ACTIVE
        # Tolerate one full lease of silence before giving up — the
        # startd-side lease is still live for that long after its last
        # acknowledged renewal, so stopping earlier would waste claims.
        grace = profile.lease_duration_s
        while True:
            yield self.env.timeout(profile.renew_interval_s)
            if claim.closed:
                return
            if self.env.now - claim.last_acked_send > grace:
                break
            claim.last_sent = self.env.now

            def _acked(msg: Message, claim: _Claim = claim) -> None:
                if msg.send_time > claim.last_acked_send:
                    claim.last_acked_send = msg.send_time

            self.fabric.send(
                SCHEDD,
                startd_endpoint(claim.node),
                MSG_LEASE_RENEW,
                {"job_id": claim.job_id, "token": claim.token},
                on_delivered=_acked,
            )
            if registry is not None:
                registry.counter("net.lease_renewals").inc()
        # Stop-then-drain: no renewal will be sent after ``last_sent``,
        # so the startd's lease — extended at most to the send time of a
        # renewal, never its delivery time — expires by
        # ``last_sent + lease_duration_s``. Waiting past that (plus one
        # renew interval of slack for the kill to unwind) guarantees the
        # old run is dead before the job is requeued: no double-run.
        deadline = (
            claim.last_sent
            + profile.lease_duration_s
            + profile.renew_interval_s
        )
        if deadline > self.env.now:
            yield self.env.timeout(deadline - self.env.now)
        if claim.closed:
            return  # the job-done report made it through after all
        self._declare_lost(record, claim)

    def _declare_lost(self, record: JobRecord, claim: _Claim) -> None:
        self.claims_lost += 1
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.counter("net.claims_lost").inc()
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.instant(
                "claim-lost",
                "net",
                self.env.now,
                tid=job_tid(record),
                node=claim.node,
            )
        self._close_claim(claim)
        lost = JobRunResult(
            job_id=claim.job_id,
            start=claim.opened_at,
            end=self.env.now,
            status=CLAIM_LOST,
            offloads_run=0,
            attempt=record.attempts,
        )
        self.schedd.mark_failed(claim.job_id, lost)
        # Best-effort release so a run that is somehow still alive (it
        # cannot be — see the module docstring — but belt and braces for
        # the auditor) is reaped when the network heals.
        self.fabric.send(
            SCHEDD,
            startd_endpoint(claim.node),
            MSG_CLAIM_RELEASE,
            {"job_id": claim.job_id, "token": claim.token},
        )

    # -- crash–recovery ---------------------------------------------------

    def crash(self) -> None:
        """Drop all claim state: the daemon holding it just died.

        The renewal loops and watchdogs notice through their ``closed``
        and record-identity checks; no per-claim audit events fire — the
        auditor's ``schedd_crashed`` wipes the claim ledger wholesale.
        """
        for claim in list(self._claims.values()):
            claim.closed = True
        self._claims.clear()

    def readopt(self, record: JobRecord) -> None:
        """Re-adopt a replayed RUNNING job under its journaled claim token.

        Rebuilds the schedd-side claim entry and restarts its renewal
        loop. The lease clock restarts at the recovery instant: if the
        startd is healthy the next renewal re-establishes the lease; if
        it is gone, the loop's stop-then-drain path declares the claim
        lost and the job flows into the normal retry/backoff path.
        """
        now = self.env.now
        claim = _Claim(
            job_id=record.job_id,
            node=record.matched_node,
            token=record.claim_token,
            opened_at=now,
            last_acked_send=now,
            last_sent=now,
        )
        self._claims[claim.token] = claim
        auditor = _audit.ACTIVE
        if auditor is not None:
            auditor.claim_opened(claim.job_id, claim.token, now)
        self.env.process(
            self._renewal_loop(record, claim), name=f"lease:{record.job_id}"
        )

    def restart_watchdog(self, record: JobRecord, deadline: float) -> None:
        """Restore a MATCHED job's watchdog against its original deadline.

        An already-expired deadline fires the watchdog immediately: any
        claim the lost activation might have opened is itself past its
        lease by then (``match_timeout_s > lease_duration_s``), so the
        re-offer cannot overlap a live run.
        """
        self.env.process(
            self._match_watchdog(record, record.claim_token, deadline),
            name=f"match-timeout:{record.job_id}",
        )

    # -- internals --------------------------------------------------------

    def _close_claim(self, claim: _Claim) -> None:
        claim.closed = True
        self._claims.pop(claim.token, None)
        auditor = _audit.ACTIVE
        if auditor is not None:
            auditor.claim_closed(claim.job_id, claim.token, self.env.now)

    def _stale(self, kind: str, job_id: str) -> None:
        self.stale_messages += 1
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.counter("net.stale_messages").inc()

    @property
    def open_claims(self) -> int:
        return len(self._claims)


class StartdClaimAgent:
    """The startd's half: validate claims, lease the run, kill on expiry."""

    def __init__(
        self,
        env: Environment,
        startd: Startd,
        fabric: MessageFabric,
        profile: NetProfile,
    ) -> None:
        self.env = env
        self.startd = startd
        self.fabric = fabric
        self.profile = profile
        self.endpoint = startd_endpoint(startd.name)
        self._leases: dict[int, Lease] = {}
        self.lease_expiries = 0
        self.claims_rejected = 0
        self.stale_messages = 0
        startd.claim_agent = self
        fabric.register(self.endpoint, MSG_CLAIM_ACTIVATE, self._on_activate)
        fabric.register(self.endpoint, MSG_LEASE_RENEW, self._on_renew)
        fabric.register(self.endpoint, MSG_CLAIM_RELEASE, self._on_release)

    # -- inbound handlers -------------------------------------------------

    def _on_activate(self, msg: Message) -> None:
        payload = msg.payload
        job_id = payload["job_id"]
        token = payload["token"]
        expires_at = msg.send_time + self.profile.lease_duration_s
        if expires_at <= self.env.now:
            # The activation spent longer in flight than a whole lease:
            # the schedd's match timer has already reverted the job
            # (match_timeout_s > lease_duration_s), so starting now
            # would create exactly the orphan the lease bounds.
            self.stale_messages += 1
            return
        # Simulation shortcut: the activation would carry the job ad;
        # we look the (static) record up in the shared schedd table.
        record = self.startd.schedd.get(job_id)
        reason = self.startd.claim_error(
            record, payload["device"], payload["exclusive"]
        )
        if reason is not None:
            self.claims_rejected += 1
            self.fabric.send(
                self.endpoint,
                SCHEDD,
                MSG_CLAIM_REJECT,
                {"job_id": job_id, "token": token, "reason": reason},
            )
            return
        lease = Lease(job_id=job_id, token=token, expires_at=expires_at)
        self._leases[token] = lease
        auditor = _audit.ACTIVE
        if auditor is not None:
            auditor.lease_opened(
                self.startd.name, job_id, token, self.env.now
            )
        self.startd.start_claimed(
            record, payload["device"], payload["exclusive"], lease
        )
        self.fabric.send(
            self.endpoint,
            SCHEDD,
            MSG_JOB_STARTED,
            {
                "job_id": job_id,
                "token": token,
                "node": self.startd.name,
                "device": payload["device"],
            },
        )
        self.env.process(
            self._watchdog(lease),
            name=f"lease-watchdog:{job_id}@{self.startd.name}",
        )

    def _on_renew(self, msg: Message) -> None:
        lease = self._leases.get(msg.payload["token"])
        if lease is None or lease.closed:
            self.stale_messages += 1
            return
        extended = msg.send_time + self.profile.lease_duration_s
        if extended > lease.expires_at:
            lease.expires_at = extended

    def _on_release(self, msg: Message) -> None:
        lease = self._leases.get(msg.payload["token"])
        if lease is None or lease.closed:
            return  # already over — release is idempotent
        self.startd.interrupt_job(
            lease.job_id, ClaimReleased(lease.job_id, self.startd.name)
        )

    # -- outbound reporting (called by the starter) -----------------------

    def report_done(
        self,
        record: JobRecord,
        result: JobRunResult,
        failed: bool,
        lease: Lease,
    ) -> None:
        """Close the lease and send the run's outcome to the schedd."""
        lease.closed = True
        self._leases.pop(lease.token, None)
        auditor = _audit.ACTIVE
        if auditor is not None:
            auditor.lease_closed(
                self.startd.name, record.job_id, lease.token, self.env.now
            )
        self.fabric.send(
            self.endpoint,
            SCHEDD,
            MSG_JOB_DONE,
            {
                "job_id": record.job_id,
                "token": lease.token,
                "failed": failed,
                "result": result,
            },
        )

    # -- the lease watchdog -----------------------------------------------

    def _watchdog(self, lease: Lease):
        while not lease.closed and self.env.now < lease.expires_at:
            yield self.env.timeout(lease.expires_at - self.env.now)
        if lease.closed:
            return
        self.lease_expiries += 1
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.counter("net.lease_expiries").inc()
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.instant(
                "lease-expired",
                "net",
                self.env.now,
                tid=_trace.NET_TID,
                job=lease.job_id,
                node=self.startd.name,
            )
        self.startd.interrupt_job(
            lease.job_id, LeaseExpired(lease.job_id, self.startd.name)
        )

    @property
    def open_leases(self) -> int:
        return len(self._leases)


class CollectorAgent:
    """Routes machine-updates and snapshot requests over the fabric."""

    def __init__(
        self,
        env: Environment,
        collector: Collector,
        fabric: MessageFabric,
        profile: NetProfile,
        startds: list[Startd],
    ) -> None:
        self.env = env
        self.collector = collector
        self.fabric = fabric
        self.profile = profile
        self.startds = list(startds)
        collector.enable_store()
        fabric.register(COLLECTOR, MSG_MACHINE_UPDATE, self._on_update)
        fabric.register(COLLECTOR, MSG_SNAPSHOT_REQUEST, self._on_request)
        for startd in startds:
            # Seed the store with the registration-time (birth) ad so
            # the first negotiation cycles don't see an empty pool.
            collector.store_update(startd.snapshot(), env.now)
            env.process(
                self._publisher(startd),
                name=f"collector-update:{startd.name}",
            )

    def _publisher(self, startd: Startd):
        interval = self.profile.update_interval_s
        while True:
            yield self.env.timeout(interval)
            if not startd.alive:
                continue  # a crashed node's daemon publishes nothing
            self.fabric.send(
                startd_endpoint(startd.name),
                COLLECTOR,
                MSG_MACHINE_UPDATE,
                {"snapshot": startd.snapshot()},
            )

    def force_readvertise(self) -> None:
        """Demand an immediate ad from every live startd.

        A restarted collector holds no store: instead of trusting
        whatever the crashed instance knew, every healthy startd
        re-advertises right now (the same ``MSG_MACHINE_UPDATE`` path as
        the periodic publisher), rebuilding the store from live state.
        """
        for startd in self.startds:
            if not startd.alive:
                continue
            self.fabric.send(
                startd_endpoint(startd.name),
                COLLECTOR,
                MSG_MACHINE_UPDATE,
                {"snapshot": startd.snapshot()},
            )

    def _on_update(self, msg: Message) -> None:
        # The send time is when the node was provably alive — using it
        # (not the delivery time) keeps the staleness clock honest.
        self.collector.store_update(msg.payload["snapshot"], msg.send_time)

    def _on_request(self, msg: Message) -> None:
        snapshots = self.collector.snapshots(self.env.now)
        self.fabric.send(
            COLLECTOR,
            NEGOTIATOR,
            MSG_SNAPSHOT_RESPONSE,
            {"snapshots": snapshots},
        )
