"""Daemon crash–recovery: the schedd's write-ahead log and the supervisor.

HTCondor's daemons survive restarts because the schedd journals every
job-queue transition to disk (the ``job_queue.log``) and replays it at
boot, while the collector and negotiator hold only soft state that is
re-advertised or rebuilt. This module reproduces that architecture on
the simulator's clock:

* :class:`JobQueueLog` — an in-sim write-ahead log attached to a
  :class:`~repro.condor.schedd.Schedd`. Every submission, qedit, match,
  dispatch, status change, requeue, and terminal outcome appends a
  record; a checkpoint compacts the log to one snapshot per job.
  ``replay()`` rebuilds the queue — fresh :class:`JobRecord` objects,
  FIFO order, idle/unfinished counters, retry accounting — from the
  records alone.
* :class:`DaemonSupervisor` — crashes and restarts the schedd,
  negotiator, and collector. A crash closes the daemon's fabric
  endpoint (in-flight messages keep retransmitting, exactly like a TCP
  peer retrying a dead daemon's port) and drops its volatile state; the
  restart replays/rebuilds and reconciles with the rest of the pool.

Reconciliation (schedd restart) follows the startd-side source of
truth, the claim leases in :mod:`repro.condor.claims`:

* RUNNING jobs are *re-adopted* by claim token: the claim-manager entry
  and its renewal loop are recreated, so a still-healthy run finishes
  under its original claim and a dead one is declared lost through the
  normal lease path into :class:`~repro.condor.schedd.RetryPolicy`.
* MATCHED jobs get their match watchdog back with the *original*
  deadline (journaled match time + ``match_timeout_s``), so a claim
  that never activates is re-offered exactly when it would have been.
* BACKOFF jobs resume the *remaining* backoff (journaled requeue time
  minus now) — attempt accounting is replayed, never reset.

Determinism: the WAL holds plain state (no RNG, no events), appends are
pure bookkeeping, and replay + reconciliation run synchronously at the
restart instant in journal order. A fixed seed therefore reproduces a
crash run byte-for-byte, and a run with recovery disabled (``wal is
None``, no supervisor) executes the exact pre-PR instruction stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from ..faults.schedule import DAEMONS
from ..net.fabric import COLLECTOR, NEGOTIATOR, SCHEDD
from ..obs import audit as _audit
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..sim import Environment
from .ads import job_ad
from .schedd import (
    BACKOFF,
    COMPLETED,
    FAILED,
    IDLE,
    MATCHED,
    RUNNING,
    JobRecord,
    Schedd,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .pool import CondorPool

__all__ = ["DAEMONS", "DaemonSupervisor", "JobQueueLog", "WalRecord"]


@dataclass(frozen=True)
class WalRecord:
    """One journal entry: a kind, a sim timestamp, and its payload.

    The payload is plain state (ids, numbers, frozen profiles, result
    objects) — never live queue objects — so replay depends only on the
    journal, not on what the crashed daemon left behind.
    """

    kind: str
    time: float
    job_id: Optional[str]
    data: dict = field(default_factory=dict)


class JobQueueLog:
    """Sim-clock write-ahead log for one schedd's job queue.

    Attach before the first submission (``schedd.wal = JobQueueLog(env,
    schedd)``); every transition then journals itself through the
    ``log_*`` hooks in :class:`~repro.condor.schedd.Schedd`. The log
    auto-compacts once it grows past ``4 ×`` the jobs it has seen, by
    checkpointing: one ``snapshot`` record per job plus a ``checkpoint``
    header carrying the schedd-level counters.
    """

    def __init__(self, env: Environment, schedd: Schedd) -> None:
        self.env = env
        self.schedd = schedd
        self.records: list[WalRecord] = []
        #: Total records ever appended (compaction does not reset this).
        self.appended = 0
        #: Records replayed across every recovery of this schedd.
        self.replayed = 0
        self.compactions = 0
        self._jobs_seen = 0
        #: ``job_id -> (sharing, memory_aware)``: the submit-ad flags,
        #: needed to rebuild ads for jobs whose submit record has been
        #: compacted away.
        self._flags: dict[str, tuple[bool, bool]] = {}

    def __len__(self) -> int:
        return len(self.records)

    # -- journaling hooks --------------------------------------------------

    def _append(self, kind: str, job_id: Optional[str], **data: Any) -> None:
        self.records.append(
            WalRecord(kind=kind, time=self.env.now, job_id=job_id, data=data)
        )
        self.appended += 1
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.counter("wal.records").inc()
        if len(self.records) > max(64, 4 * self._jobs_seen):
            self.checkpoint()

    def log_submit(
        self, record: JobRecord, sharing: bool, memory_aware: bool
    ) -> None:
        self._jobs_seen += 1
        self._flags[record.job_id] = (sharing, memory_aware)
        self._append(
            "submit",
            record.job_id,
            profile=record.profile,
            seq=record.seq,
        )

    def log_qedit(self, job_id: str, attr: str, expression: str) -> None:
        self._append("qedit", job_id, attr=attr, expression=expression)

    def log_match(self, job_id: str, token: int) -> None:
        self._append("match", job_id, token=token)

    def log_unmatch(self, job_id: str) -> None:
        self._append("unmatch", job_id)

    def log_run(self, job_id: str, node: str, device: Optional[int]) -> None:
        self._append("run", job_id, node=node, device=device)

    def log_complete(self, job_id: str, result: Any) -> None:
        self._append("complete", job_id, result=result)

    def log_fail(
        self,
        job_id: str,
        result: Any,
        retry: bool,
        requeue_at: Optional[float],
    ) -> None:
        self._append(
            "fail", job_id, result=result, retry=retry, requeue_at=requeue_at
        )

    # -- checkpoint / compaction ------------------------------------------

    def log_requeue(self, job_id: str) -> None:
        self._append("requeue", job_id)

    def checkpoint(self) -> None:
        """Compact the journal to the schedd's current state.

        Writes a ``checkpoint`` header (schedd counters) followed by one
        ``snapshot`` record per job, then truncates everything older —
        HTCondor's periodic ``job_queue.log`` compaction.
        """
        schedd = self.schedd
        now = self.env.now
        compacted: list[WalRecord] = [
            WalRecord(
                kind="checkpoint",
                time=now,
                job_id=None,
                data={
                    "seq": schedd._seq,
                    "requeues": schedd.requeues,
                    "terminal_failures": schedd.terminal_failures,
                },
            )
        ]
        for record in schedd.all_records():
            sharing, memory_aware = self._flags[record.job_id]
            compacted.append(
                WalRecord(
                    kind="snapshot",
                    time=now,
                    job_id=record.job_id,
                    data={
                        "profile": record.profile,
                        "sharing": sharing,
                        "memory_aware": memory_aware,
                        "seq": record.seq,
                        "status": record.status,
                        "attempts": record.attempts,
                        "failures": tuple(record.failures),
                        "result": record.result,
                        "matched_node": record.matched_node,
                        "matched_device": record.matched_device,
                        "claim_token": record.claim_token,
                        "matched_at": record.matched_at,
                        "requeue_at": record.requeue_at,
                        "requirements": record.ad.get_expr("Requirements"),
                        "assigned_device": record.ad.get_expr(
                            "AssignedPhiDevice"
                        ),
                    },
                )
            )
        self.records = compacted
        self.compactions += 1

    # -- replay ------------------------------------------------------------

    def replay(self, schedd: Optional[Schedd] = None) -> int:
        """Rebuild the schedd's queue from the journal; return the record count.

        Reconstruction is silent: no listeners, traces, metrics, or audit
        events fire — those already fired when the journaled transition
        happened. Completion events are carried over from the pre-crash
        records where they exist, so external waiters still resolve; the
        ``_all_done`` event object is likewise preserved (the pool holds
        a reference to it).
        """
        schedd = schedd or self.schedd
        old = schedd._records
        schedd._records = {}
        schedd._fifo = []
        schedd._fifo_dirty = False
        schedd._seq = 0
        schedd._idle = 0
        schedd._unfinished = 0
        schedd.requeues = 0
        schedd.terminal_failures = 0
        for rec in self.records:
            self._apply(schedd, rec, old)
        schedd._check_all_done()
        self.replayed += len(self.records)
        return len(self.records)

    def _apply(self, schedd: Schedd, rec: WalRecord, old: dict) -> None:
        kind, data = rec.kind, rec.data
        if kind == "checkpoint":
            schedd._seq = data["seq"]
            schedd.requeues = data["requeues"]
            schedd.terminal_failures = data["terminal_failures"]
            return
        if kind in ("submit", "snapshot"):
            if kind == "submit":
                profile = data["profile"]
                sharing, memory_aware = self._flags[rec.job_id]
            else:
                profile = data["profile"]
                sharing, memory_aware = data["sharing"], data["memory_aware"]
            record = JobRecord(
                job_id=rec.job_id,
                ad=job_ad(profile, sharing=sharing, memory_aware=memory_aware),
                profile=profile,
                seq=data["seq"],
                completion=self._carry_completion(schedd, old, rec.job_id),
            )
            record.base_requirements = record.ad.get_expr("Requirements")
            record.fifo_key = (profile.submit_time, record.seq)
            if kind == "snapshot":
                record.status = data["status"]
                record.attempts = data["attempts"]
                record.failures = list(data["failures"])
                record.result = data["result"]
                record.matched_node = data["matched_node"]
                record.matched_device = data["matched_device"]
                record.claim_token = data["claim_token"]
                record.matched_at = data["matched_at"]
                record.requeue_at = data["requeue_at"]
                record.ad["JobStatus"] = record.status
                if data["requirements"] is not None:
                    record.ad["Requirements"] = data["requirements"]
                if data["assigned_device"] is not None:
                    record.ad["AssignedPhiDevice"] = data["assigned_device"]
            schedd._records[rec.job_id] = record
            if schedd._fifo and record.fifo_key < schedd._fifo[-1].fifo_key:
                schedd._fifo_dirty = True
            schedd._fifo.append(record)
            schedd._seq = max(schedd._seq, record.seq)
            if record.status not in (COMPLETED, FAILED):
                schedd._unfinished += 1
            if record.status == IDLE:
                schedd._idle += 1
            if record.status in (COMPLETED, FAILED):
                self._settle_completion(record)
            return
        record = schedd._records[rec.job_id]
        if kind == "qedit":
            record.ad.set_expr(data["attr"], data["expression"])
        elif kind == "match":
            record.status = MATCHED
            record.claim_token = data["token"]
            record.matched_at = rec.time
            record.ad["JobStatus"] = MATCHED
            schedd._idle -= 1
        elif kind == "unmatch":
            record.status = IDLE
            record.claim_token = None
            record.matched_at = None
            record.ad["JobStatus"] = IDLE
            schedd._idle += 1
        elif kind == "run":
            if record.status == IDLE:
                schedd._idle -= 1
            record.status = RUNNING
            record.matched_node = data["node"]
            record.matched_device = data["device"]
            record.matched_at = None
            record.ad["JobStatus"] = RUNNING
        elif kind == "complete":
            record.status = COMPLETED
            record.result = data["result"]
            record.claim_token = None
            record.ad["JobStatus"] = COMPLETED
            schedd._unfinished -= 1
            self._settle_completion(record)
        elif kind == "fail":
            result = data["result"]
            record.attempts += 1
            record.failures.append(result)
            record.matched_node = None
            record.matched_device = None
            record.claim_token = None
            if data["retry"]:
                record.status = BACKOFF
                record.requeue_at = data["requeue_at"]
                record.ad["JobStatus"] = BACKOFF
            else:
                record.status = FAILED
                record.result = result
                record.ad["JobStatus"] = FAILED
                schedd._unfinished -= 1
                schedd.terminal_failures += 1
                self._settle_completion(record)
        elif kind == "requeue":
            record.status = IDLE
            record.requeue_at = None
            record.ad["JobStatus"] = IDLE
            if record.base_requirements is not None:
                record.ad["Requirements"] = record.base_requirements
            schedd.requeues += 1
            schedd._idle += 1
        else:  # pragma: no cover - journal corruption guard
            raise ValueError(f"unknown WAL record kind {kind!r}")

    def _carry_completion(self, schedd: Schedd, old: dict, job_id: str):
        prior = old.get(job_id)
        if prior is not None and prior.completion is not None:
            return prior.completion
        return schedd.env.event()

    @staticmethod
    def _settle_completion(record: JobRecord) -> None:
        if record.completion is not None and not record.completion.triggered:
            record.completion.succeed(record.result)


class DaemonSupervisor:
    """Crashes and restarts the pool's central daemons, deterministically.

    The fault injector routes ``daemon-crash`` events here. A crash
    *always* schedules its own restart (after the profile's
    ``daemon_downtime_s``) before any other effect — the structural
    sibling of the injector's last-healthy-device guard: no fault
    profile can leave the pool permanently headless.
    """

    def __init__(self, env: Environment, pool: "CondorPool") -> None:
        if pool.fabric is None:
            raise ValueError(
                "daemon crash-recovery requires the message fabric "
                "(construct the pool with a NetProfile)"
            )
        self.env = env
        self.pool = pool
        self._down: set[str] = set()
        #: Every crash as ``(time, daemon)``, in injection order.
        self.crash_log: list[tuple[float, str]] = []
        self.crashes = 0
        #: Completed schedd WAL replays (collector/negotiator restarts
        #: rebuild soft state and are not counted here).
        self.recoveries = 0
        self.records_replayed = 0
        #: RUNNING jobs re-adopted against a still-open startd lease.
        self.jobs_readopted = 0

    def is_up(self, daemon: str) -> bool:
        return daemon not in self._down

    def crash_daemon(self, daemon: str, downtime_s: float) -> None:
        """Crash ``daemon`` now; its restart lands after ``downtime_s``."""
        if daemon not in DAEMONS:
            raise ValueError(f"unknown daemon {daemon!r}")
        if daemon in self._down:
            raise ValueError(f"daemon {daemon!r} is already down")
        if downtime_s <= 0:
            raise ValueError("downtime_s must be positive")
        self._down.add(daemon)
        self.crashes += 1
        self.crash_log.append((self.env.now, daemon))
        # Headless-pool guard: the restart is committed before the crash
        # takes effect, so a crashed daemon can never stay down forever.
        self.env.process(
            self._restart_later(daemon, downtime_s), name=f"restart:{daemon}"
        )
        if daemon == "schedd":
            self._crash_schedd()
        elif daemon == "negotiator":
            self.pool.negotiator.crash()
        else:
            self._crash_collector()

    def _restart_later(self, daemon: str, downtime_s: float):
        yield self.env.timeout(downtime_s)
        self._down.discard(daemon)
        if daemon == "schedd":
            self._restore_schedd()
        elif daemon == "negotiator":
            self.pool.negotiator.restore()
        else:
            self._restore_collector()
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.instant(
                f"{daemon}-restarted",
                "recovery",
                self.env.now,
                tid=_trace.FAULTS_TID,
            )

    # -- schedd ------------------------------------------------------------

    def _crash_schedd(self) -> None:
        pool = self.pool
        pool.schedd.down = True
        pool.fabric.set_down(SCHEDD)
        pool.claims.crash()
        auditor = _audit.ACTIVE
        if auditor is not None:
            auditor.schedd_crashed(self.env.now)

    def _restore_schedd(self) -> None:
        pool = self.pool
        schedd = pool.schedd
        assert schedd.wal is not None, "schedd restarted without a WAL"
        replayed = schedd.wal.replay(schedd)
        self.records_replayed += replayed
        readopted = self._reconcile()
        self.jobs_readopted += readopted
        # The compaction a real schedd performs right after a successful
        # replay: the rebuilt queue state is the new journal base.
        schedd.wal.checkpoint()
        # The daemon is up again *before* subscribers resync: listeners
        # (e.g. the knapsack scheduler's full resync) may issue qedits
        # and schedule repacks, both of which no-op against a down schedd.
        schedd.down = False
        for listener in list(schedd.recovery_listeners):
            listener()
        schedd.recoveries += 1
        self.recoveries += 1
        pool.fabric.set_up(SCHEDD)
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.counter("schedd.recoveries").inc()
            registry.counter("wal.replayed").inc(replayed)
            registry.counter("jobs.readopted").inc(readopted)

    def _reconcile(self) -> int:
        """Reconcile replayed records with startd-side lease state.

        Walks the rebuilt queue in FIFO order (deterministic) and hands
        each in-flight job back to the claim machinery; returns how many
        RUNNING jobs were re-adopted against a live lease.
        """
        pool, env = self.pool, self.env
        schedd = pool.schedd
        claims = pool.claims
        profile = claims.profile
        readopted = 0
        for record in schedd.all_records():
            if record.status == RUNNING:
                agent = pool.agents[record.matched_node]
                lease = agent._leases.get(record.claim_token)
                live = (
                    lease is not None
                    and not lease.closed
                    and agent.startd.alive
                )
                # Recreate the claim either way: a closed lease means the
                # startd's job-done report is already in flight (the
                # transport retransmits until the schedd acks), and that
                # report must find its claim to land. A dead node's claim
                # is declared lost by the recreated renewal loop and the
                # job flows into the normal retry path.
                claims.readopt(record)
                if live:
                    readopted += 1
            elif record.status == MATCHED:
                deadline = record.matched_at + profile.match_timeout_s
                claims.restart_watchdog(record, deadline)
            elif record.status == BACKOFF:
                delay = max(0.0, record.requeue_at - env.now)
                env.process(
                    schedd._requeue_after(record, delay),
                    name=f"requeue:{record.job_id}",
                )
        return readopted

    # -- collector ---------------------------------------------------------

    def _crash_collector(self) -> None:
        self.pool.collector.crash_reset()
        self.pool.fabric.set_down(COLLECTOR)

    def _restore_collector(self) -> None:
        self.pool.fabric.set_up(COLLECTOR)
        # Stateless recovery: demand a fresh ad from every live startd
        # instead of restoring the stale store.
        self.pool.collector_agent.force_readvertise()
