"""Builders for the job and machine ClassAds the integration exchanges.

Mirrors §IV-D1: each compute node learns its Phi configuration through
``micinfo`` and advertises device count and memory; each job's submit
file requests a number of Phi devices, memory and threads. The external
knapsack scheduler later *rewrites* job Requirements to pin the job to
the node it selected (``Name == "<slot>@<node>"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..workloads.profiles import JobProfile
from .classad import MISSING, ClassAd, Expr, Literal, Value, parse


def slot_name(node: str) -> str:
    """The advertised slot name for a node (Condor's ``slot1@host``)."""
    return f"slot1@{node}"


def pin_requirements(node: str) -> str:
    """The Requirements rewrite that pins a job to ``node``.

    This is the §IV-D qedit payload; the negotiator's pin analysis
    (:func:`repro.condor.compile.requirements_plan`) recognizes exactly
    this shape and routes the job through the collector's name index.
    """
    return f'TARGET.Name == "{slot_name(node)}" && TARGET.FreeSlots >= 1'


@dataclass(slots=True)
class DeviceSnapshot:
    """Negotiation-time view of one coprocessor on a node."""

    index: int
    memory_mb: float
    free_declared_mb: float
    resident_jobs: int
    hardware_threads: int
    claimed_exclusive: bool
    #: The card is down (failed or resetting); unplaceable until restored.
    failed: bool = False


@dataclass(slots=True)
class MachineSnapshot:
    """Negotiation-time view of one compute node (all its slots).

    The negotiator *deducts* from this snapshot as it matches jobs within
    a cycle, exactly like Condor's resource deduction during negotiation.
    """

    node: str
    total_slots: int
    free_slots: int
    devices: list[DeviceSnapshot] = field(default_factory=list)

    @property
    def devices_free(self) -> int:
        """Devices with no exclusive claim (the MC baseline's resource)."""
        return sum(
            1 for d in self.devices if not d.claimed_exclusive and not d.failed
        )

    def best_device_for(self, declared_mb: float) -> Optional[DeviceSnapshot]:
        """Sharing placement: the device with most free declared memory."""
        usable = [
            d for d in self.devices if not d.claimed_exclusive and not d.failed
        ]
        if not usable:
            return None
        return max(usable, key=lambda d: (d.free_declared_mb, -d.index))

    def first_free_device(self) -> Optional[DeviceSnapshot]:
        """Exclusive placement: lowest-index unclaimed device."""
        for device in self.devices:
            if (
                not device.claimed_exclusive
                and not device.failed
                and device.resident_jobs == 0
            ):
                return device
        return None


def copy_snapshot(snapshot: MachineSnapshot) -> MachineSnapshot:
    """A deep-enough copy for negotiation-time deduction.

    Fabric mode hands the negotiator snapshots that live in the
    collector's store (and may serve several cycles); deduction must
    mutate a private copy, not the stored ad.
    """
    return MachineSnapshot(
        node=snapshot.node,
        total_slots=snapshot.total_slots,
        free_slots=snapshot.free_slots,
        devices=[
            DeviceSnapshot(
                index=d.index,
                memory_mb=d.memory_mb,
                free_declared_mb=d.free_declared_mb,
                resident_jobs=d.resident_jobs,
                hardware_threads=d.hardware_threads,
                claimed_exclusive=d.claimed_exclusive,
                failed=d.failed,
            )
            for d in snapshot.devices
        ],
    )


def job_ad(
    profile: JobProfile, sharing: bool = True, memory_aware: bool = True
) -> ClassAd:
    """Build the submit-file ClassAd for ``profile``.

    ``sharing=False`` produces the baseline (MC) request: the job insists
    on a whole free coprocessor, reproducing the exclusive-allocation
    policy.

    ``sharing=True, memory_aware=True`` additionally requires the
    advertised *free* device memory to cover the declaration (Condor
    deducts PhiFreeMemory during negotiation, so the cluster never
    overcommits declarations). With ``memory_aware=False`` the job only
    needs a free host slot — the paper's MCC, where jobs are "packed
    arbitrarily" and COSMIC alone prevents oversubscription by queueing
    them at the node.
    """
    ad = ClassAd(
        {
            "JobId": profile.job_id,
            "App": profile.app,
            "QDate": profile.submit_time,
            "RequestPhiDevices": 1,
            "RequestPhiMemory": float(profile.declared_memory_mb),
            "RequestPhiThreads": int(profile.declared_threads),
            "JobStatus": "Idle",
        }
    )
    if sharing and memory_aware:
        ad.set_expr(
            "Requirements",
            "TARGET.PhiDevices >= MY.RequestPhiDevices"
            " && MY.RequestPhiMemory <= TARGET.PhiFreeMemory"
            " && TARGET.FreeSlots >= 1",
        )
    elif sharing:
        ad.set_expr(
            "Requirements",
            "TARGET.PhiDevices >= MY.RequestPhiDevices"
            " && MY.RequestPhiMemory <= TARGET.PhiMemory"
            " && TARGET.FreeSlots >= 1",
        )
    else:
        ad.set_expr(
            "Requirements",
            "TARGET.PhiDevicesFree >= MY.RequestPhiDevices"
            " && MY.RequestPhiMemory <= TARGET.PhiMemory"
            " && TARGET.FreeSlots >= 1",
        )
    return ad


# -- live machine-ad views ---------------------------------------------------
#
# The negotiator deducts from a MachineSnapshot as it matches jobs within
# a cycle. Earlier versions rebuilt (or cache-looked-up) a whole dict ad
# after every deduction; the view below instead *computes* the advertised
# attributes from the snapshot at read time, so a deduction is visible to
# the very next probe with zero rebuild cost.


def _phi_memory(snapshot: MachineSnapshot) -> float:
    return float(
        max((d.memory_mb for d in snapshot.devices if not d.failed), default=0.0)
    )


def _phi_free_memory(snapshot: MachineSnapshot) -> float:
    return float(
        max(
            (d.free_declared_mb for d in snapshot.devices if not d.failed),
            default=0.0,
        )
    )


#: Computed machine attributes, keyed lowercase. Failed cards are
#: invisible: excluded from the device count and the advertised memory,
#: so matchmaking never routes a job to a node whose only cards are down.
_COMPUTED: dict[str, Callable[[MachineSnapshot], Value]] = {
    "name": lambda s: slot_name(s.node),
    "machine": lambda s: s.node,
    "totalslots": lambda s: s.total_slots,
    "freeslots": lambda s: s.free_slots,
    "phidevices": lambda s: sum(1 for d in s.devices if not d.failed),
    "phidevicesfree": lambda s: s.devices_free,
    "phimemory": _phi_memory,
    "phifreememory": _phi_free_memory,
}

_COMPUTED_DISPLAY = {
    "name": "Name",
    "machine": "Machine",
    "totalslots": "TotalSlots",
    "freeslots": "FreeSlots",
    "phidevices": "PhiDevices",
    "phidevicesfree": "PhiDevicesFree",
    "phimemory": "PhiMemory",
    "phifreememory": "PhiFreeMemory",
}

#: One shared AST for every machine's Requirements: machines accept any
#: job whose declared memory fits one card.
_MACHINE_REQUIREMENTS: Expr = parse("TARGET.RequestPhiMemory <= MY.PhiMemory")


class MachineAdView(ClassAd):
    """A node's advertised ClassAd as a live view over its snapshot.

    Behaves exactly like the dict ad it replaces — same attributes, same
    values, same Requirements — except reads reflect the snapshot's
    *current* state, so the negotiator's deduct-then-rematch loop needs
    no rebuild. Explicitly stored attributes (via ``__setitem__`` /
    ``set_expr``) shadow computed ones, matching plain-ClassAd override
    semantics.
    """

    def __init__(self, snapshot: MachineSnapshot) -> None:
        super().__init__()
        self._snapshot = snapshot
        self._attrs["requirements"] = _MACHINE_REQUIREMENTS
        self._display["requirements"] = "Requirements"

    def raw(self, key: str):
        expr = self._attrs.get(key)
        if expr is not None:
            return expr.value if type(expr) is Literal else expr
        fn = _COMPUTED.get(key)
        if fn is not None:
            return fn(self._snapshot)
        return MISSING

    def get_expr(self, name: str):
        key = name.lower()
        expr = self._attrs.get(key)
        if expr is not None:
            return expr
        fn = _COMPUTED.get(key)
        if fn is not None:
            return Literal(fn(self._snapshot))
        return None

    def evaluate(self, name: str, target=None):
        key = name.lower()
        if key not in self._attrs:
            fn = _COMPUTED.get(key)
            if fn is not None:
                return fn(self._snapshot)
        return super().evaluate(name, target)

    def __contains__(self, name: str) -> bool:
        key = name.lower()
        return key in self._attrs or key in _COMPUTED

    def keys(self) -> list[str]:
        names = [
            _COMPUTED_DISPLAY[k] for k in _COMPUTED if k not in self._attrs
        ]
        names.extend(self._display[k] for k in self._attrs)
        return names

    def copy(self) -> ClassAd:
        # Materialize: a copy is a plain ad frozen at the current state.
        dup = ClassAd()
        for key, fn in _COMPUTED.items():
            if key not in self._attrs:
                dup[_COMPUTED_DISPLAY[key]] = fn(self._snapshot)
        dup._attrs.update(self._attrs)
        dup._display.update(self._display)
        return dup


def machine_ad(snapshot: MachineSnapshot) -> ClassAd:
    """A node's advertised ClassAd, as a live view over the snapshot."""
    return MachineAdView(snapshot)
