"""Builders for the job and machine ClassAds the integration exchanges.

Mirrors §IV-D1: each compute node learns its Phi configuration through
``micinfo`` and advertises device count and memory; each job's submit
file requests a number of Phi devices, memory and threads. The external
knapsack scheduler later *rewrites* job Requirements to pin the job to
the node it selected (``Name == "<slot>@<node>"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..workloads.profiles import JobProfile
from .classad import ClassAd


@dataclass
class DeviceSnapshot:
    """Negotiation-time view of one coprocessor on a node."""

    index: int
    memory_mb: float
    free_declared_mb: float
    resident_jobs: int
    hardware_threads: int
    claimed_exclusive: bool
    #: The card is down (failed or resetting); unplaceable until restored.
    failed: bool = False


@dataclass
class MachineSnapshot:
    """Negotiation-time view of one compute node (all its slots).

    The negotiator *deducts* from this snapshot as it matches jobs within
    a cycle, exactly like Condor's resource deduction during negotiation.
    """

    node: str
    total_slots: int
    free_slots: int
    devices: list[DeviceSnapshot] = field(default_factory=list)

    @property
    def devices_free(self) -> int:
        """Devices with no exclusive claim (the MC baseline's resource)."""
        return sum(
            1 for d in self.devices if not d.claimed_exclusive and not d.failed
        )

    def best_device_for(self, declared_mb: float) -> Optional[DeviceSnapshot]:
        """Sharing placement: the device with most free declared memory."""
        usable = [
            d for d in self.devices if not d.claimed_exclusive and not d.failed
        ]
        if not usable:
            return None
        return max(usable, key=lambda d: (d.free_declared_mb, -d.index))

    def first_free_device(self) -> Optional[DeviceSnapshot]:
        """Exclusive placement: lowest-index unclaimed device."""
        for device in self.devices:
            if (
                not device.claimed_exclusive
                and not device.failed
                and device.resident_jobs == 0
            ):
                return device
        return None


def job_ad(
    profile: JobProfile, sharing: bool = True, memory_aware: bool = True
) -> ClassAd:
    """Build the submit-file ClassAd for ``profile``.

    ``sharing=False`` produces the baseline (MC) request: the job insists
    on a whole free coprocessor, reproducing the exclusive-allocation
    policy.

    ``sharing=True, memory_aware=True`` additionally requires the
    advertised *free* device memory to cover the declaration (Condor
    deducts PhiFreeMemory during negotiation, so the cluster never
    overcommits declarations). With ``memory_aware=False`` the job only
    needs a free host slot — the paper's MCC, where jobs are "packed
    arbitrarily" and COSMIC alone prevents oversubscription by queueing
    them at the node.
    """
    ad = ClassAd(
        {
            "JobId": profile.job_id,
            "App": profile.app,
            "QDate": profile.submit_time,
            "RequestPhiDevices": 1,
            "RequestPhiMemory": float(profile.declared_memory_mb),
            "RequestPhiThreads": int(profile.declared_threads),
            "JobStatus": "Idle",
        }
    )
    if sharing and memory_aware:
        ad.set_expr(
            "Requirements",
            "TARGET.PhiDevices >= MY.RequestPhiDevices"
            " && MY.RequestPhiMemory <= TARGET.PhiFreeMemory"
            " && TARGET.FreeSlots >= 1",
        )
    elif sharing:
        ad.set_expr(
            "Requirements",
            "TARGET.PhiDevices >= MY.RequestPhiDevices"
            " && MY.RequestPhiMemory <= TARGET.PhiMemory"
            " && TARGET.FreeSlots >= 1",
        )
    else:
        ad.set_expr(
            "Requirements",
            "TARGET.PhiDevicesFree >= MY.RequestPhiDevices"
            " && MY.RequestPhiMemory <= TARGET.PhiMemory"
            " && TARGET.FreeSlots >= 1",
        )
    return ad


#: Memoized machine ads keyed by snapshot contents. The negotiator
#: rebuilds a node's ad after every deduction, but deductions cycle
#: through a small set of states (free slots x free declared memory), so
#: most rebuilds re-derive an ad already built this run. Machine ads are
#: never mutated after construction (matchmaking only evaluates them),
#: so sharing one ad between identical snapshots is safe.
_MACHINE_AD_CACHE: dict[tuple, ClassAd] = {}
_MACHINE_AD_CACHE_LIMIT = 65536


def machine_ad(snapshot: MachineSnapshot) -> ClassAd:
    """Build a node's advertised ClassAd from a negotiation snapshot.

    Failed cards are invisible: they are excluded from the device count
    and from the advertised memory, so matchmaking never routes a job to
    a node whose only cards are down.
    """
    key = (
        snapshot.node,
        snapshot.total_slots,
        snapshot.free_slots,
        tuple(
            (
                d.index,
                d.memory_mb,
                d.free_declared_mb,
                d.resident_jobs,
                d.claimed_exclusive,
                d.failed,
            )
            for d in snapshot.devices
        ),
    )
    cached = _MACHINE_AD_CACHE.get(key)
    if cached is not None:
        return cached
    usable = [d for d in snapshot.devices if not d.failed]
    memory = max((d.memory_mb for d in usable), default=0.0)
    free_declared = max((d.free_declared_mb for d in usable), default=0.0)
    ad = ClassAd(
        {
            "Name": f"slot1@{snapshot.node}",
            "Machine": snapshot.node,
            "TotalSlots": snapshot.total_slots,
            "FreeSlots": snapshot.free_slots,
            "PhiDevices": len(usable),
            "PhiDevicesFree": snapshot.devices_free,
            "PhiMemory": float(memory),
            "PhiFreeMemory": float(free_declared),
        }
    )
    # Machines accept any job whose declared memory fits one card.
    ad.set_expr("Requirements", "TARGET.RequestPhiMemory <= MY.PhiMemory")
    if len(_MACHINE_AD_CACHE) >= _MACHINE_AD_CACHE_LIMIT:
        _MACHINE_AD_CACHE.clear()
    _MACHINE_AD_CACHE[key] = ad
    return ad
