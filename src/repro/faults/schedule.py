"""Deterministic fault schedules: seeded, picklable, content-addressable.

A :class:`FaultProfile` declares *rates* (events per 1000 simulated
seconds, cluster-wide, per category) and recovery timings; a
:class:`FaultSchedule` is the concrete, fully deterministic realisation
of a profile under one seed — exponential inter-arrival times per
category, merged into one time-ordered event list. Target selection is
*not* part of the schedule: each event carries a ``pick`` value in
[0, 1) that the injector maps onto the (deterministically ordered) set
of currently eligible targets at injection time, so the same seed always
produces the same chaos even though the eligible set depends on how the
simulation unfolded.

Both dataclasses are frozen and built from primitives only, so a
profile can ride inside a :class:`~repro.experiments.runner.SimTask`'s
parameters — making the fault configuration part of the experiment
cache key (cached results never mix fault configurations).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace

#: Event kinds, in the deterministic generation order.
DEVICE_FAIL = "device-fail"  # permanent card loss
DEVICE_RESET = "device-reset"  # card hang + MPSS reset: downtime, then back
NODE_CRASH = "node-crash"  # whole node lost, reboots after downtime
JOB_CRASH = "job-crash"  # one running job dies transiently
DAEMON_CRASH = "daemon-crash"  # a central daemon dies, restarts after downtime

# DAEMON_CRASH is appended (not inserted): the sort tiebreak below uses
# KINDS.index, so old profiles keep their pre-existing event orderings.
KINDS = (DEVICE_FAIL, DEVICE_RESET, NODE_CRASH, JOB_CRASH, DAEMON_CRASH)

#: Central daemons a DAEMON_CRASH event may target, in pick order.
DAEMONS = ("schedd", "negotiator", "collector")


def parse_crash(spec: str) -> tuple[float, str]:
    """Parse a CLI scripted-crash spec ``T:DAEMON``.

    ``"600:schedd"`` crashes the schedd at t=600 s. The daemon must be
    one of :data:`DAEMONS`.
    """
    parts = spec.split(":", 1)
    if len(parts) != 2:
        raise ValueError(f"crash spec {spec!r} is not T:DAEMON")
    try:
        time = float(parts[0])
    except ValueError:
        raise ValueError(f"crash spec {spec!r} has a non-numeric time") from None
    daemon = parts[1]
    if daemon not in DAEMONS:
        raise ValueError(
            f"crash spec {spec!r} names unknown daemon {daemon!r} "
            f"(expected one of {', '.join(DAEMONS)})"
        )
    if time < 0:
        raise ValueError(f"crash spec {spec!r} has a negative time")
    return (time, daemon)


def derive_fault_seed(seed: int) -> int:
    """Derive the fault-schedule seed from the workload seed.

    One RNG spine: the CLI's ``--seed`` names the workload; the fault
    seed is a stable hash of it, so the pair can never drift apart and
    two runs with the same ``--seed`` see identical chaos.
    """
    digest = hashlib.sha256(f"fault-schedule:{seed}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class FaultProfile:
    """Rates and recovery timings for one chaos configuration.

    Rates are expected events per 1000 simulated seconds across the
    whole cluster; ``0.0`` everywhere (the default) is the null profile
    and injects nothing — byte-identical to running without faults.
    """

    device_fail_rate: float = 0.0
    device_reset_rate: float = 0.0
    node_crash_rate: float = 0.0
    job_crash_rate: float = 0.0
    #: Central-daemon crashes (schedd/negotiator/collector) per 1000 s.
    daemon_crash_rate: float = 0.0
    #: Seconds a reset card stays down before MPSS brings it back.
    reset_downtime_s: float = 60.0
    #: Seconds a crashed node takes to reboot and re-advertise.
    node_downtime_s: float = 300.0
    #: Seconds a crashed daemon stays down before its restart completes.
    #: Kept below the default lease duration so a quick schedd restart
    #: can still re-adopt running claims instead of losing them all.
    daemon_downtime_s: float = 20.0
    #: Generation horizon: no events are scheduled past this time.
    horizon_s: float = 50_000.0
    #: Collector heartbeat period while chaos is active.
    heartbeat_interval_s: float = 30.0
    #: Scripted daemon crashes: ``(time, daemon)`` pairs injected at a
    #: fixed sim time regardless of rates (the CLI's ``--crash T:DAEMON``).
    crashes: tuple[tuple[float, str], ...] = ()

    def __post_init__(self) -> None:
        for name in ("device_fail_rate", "device_reset_rate",
                     "node_crash_rate", "job_crash_rate",
                     "daemon_crash_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.reset_downtime_s < 0 or self.node_downtime_s < 0:
            raise ValueError("downtimes must be non-negative")
        if self.daemon_downtime_s <= 0:
            raise ValueError("daemon_downtime_s must be positive")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        for entry in self.crashes:
            time, daemon = entry
            if time < 0:
                raise ValueError(f"scripted crash {entry!r} has a negative time")
            if daemon not in DAEMONS:
                raise ValueError(
                    f"scripted crash {entry!r} names unknown daemon "
                    f"{daemon!r} (expected one of {', '.join(DAEMONS)})"
                )

    @property
    def is_null(self) -> bool:
        """True when the profile injects nothing."""
        return (
            self.device_fail_rate == 0.0
            and self.device_reset_rate == 0.0
            and self.node_crash_rate == 0.0
            and self.job_crash_rate == 0.0
            and self.daemon_crash_rate == 0.0
            and not self.crashes
        )

    @property
    def total_rate(self) -> float:
        return (
            self.device_fail_rate
            + self.device_reset_rate
            + self.node_crash_rate
            + self.job_crash_rate
            + self.daemon_crash_rate
        )

    @property
    def has_daemon_crashes(self) -> bool:
        """True when the profile can crash a central daemon."""
        return self.daemon_crash_rate > 0.0 or bool(self.crashes)

    @classmethod
    def chaos(cls, rate: float, **overrides) -> "FaultProfile":
        """The standard mix at ``rate`` total events per 1000 s.

        Resets and transient job crashes dominate (they dominate real
        Phi deployments); permanent card loss and node crashes are the
        tail. ``overrides`` replace any field afterwards.
        """
        if rate < 0:
            raise ValueError("rate must be non-negative")
        profile = cls(
            device_fail_rate=0.10 * rate,
            device_reset_rate=0.45 * rate,
            node_crash_rate=0.10 * rate,
            job_crash_rate=0.35 * rate,
        )
        return replace(profile, **overrides) if overrides else profile


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled injection: when, what, and a target-selection draw."""

    time: float
    kind: str
    #: Uniform draw in [0, 1); the injector maps it onto the eligible
    #: target list at injection time.
    pick: float
    seq: int
    #: Explicit target for scripted events (``None`` = pick-based).
    target: str | None = None


@dataclass(frozen=True)
class FaultSchedule:
    """The deterministic realisation of a profile under one seed."""

    profile: FaultProfile
    seed: int
    events: tuple[FaultEvent, ...]

    @classmethod
    def generate(cls, profile: FaultProfile, seed: int) -> "FaultSchedule":
        """Draw the event list; same (profile, seed) → identical output."""
        rng = random.Random(seed)
        raw: list[tuple[float, str, float, str | None]] = []
        rates = (
            (DEVICE_FAIL, profile.device_fail_rate),
            (DEVICE_RESET, profile.device_reset_rate),
            (NODE_CRASH, profile.node_crash_rate),
            (JOB_CRASH, profile.job_crash_rate),
            (DAEMON_CRASH, profile.daemon_crash_rate),
        )
        for kind, rate in rates:
            if rate <= 0:
                continue
            t = 0.0
            while True:
                t += rng.expovariate(rate / 1000.0)
                if t > profile.horizon_s:
                    break
                raw.append((t, kind, rng.random(), None))
        for time, daemon in profile.crashes:
            raw.append((time, DAEMON_CRASH, 0.0, daemon))
        raw.sort(key=lambda e: (e[0], KINDS.index(e[1])))
        events = tuple(
            FaultEvent(time=t, kind=kind, pick=pick, seq=i, target=target)
            for i, (t, kind, pick, target) in enumerate(raw)
        )
        return cls(profile=profile, seed=seed, events=events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (
            f"<FaultSchedule seed={self.seed} events={len(self.events)} "
            f"horizon={self.profile.horizon_s:g}s>"
        )
