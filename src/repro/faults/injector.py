"""The fault injector: drives a :class:`FaultSchedule` against a cluster.

One injector process walks the schedule in time order and applies each
event to the live cluster:

* **device-fail** — a card dies permanently: the device flips to
  ``"failed"``, in-flight offloads and every job matched to the card are
  interrupted with a device-failure cause, and the negotiator stops
  seeing the card in machine ads.
* **device-reset** — the same, but MPSS brings the card back after
  ``reset_downtime_s``.
* **node-crash** — the startd dies: every active job is interrupted with
  :class:`~repro.faults.errors.NodeLost`, the node is deregistered from
  the collector, and all its cards go down until the node reboots after
  ``node_downtime_s``.
* **job-crash** — one running job's device-side process dies
  transiently (:class:`~repro.faults.errors.JobCrashed`).

Failed jobs are routed through the schedd's requeue/backoff path; the
knapsack scheduler (when present) subscribes to the injector's
``device_failed_listeners`` / ``device_restored_listeners`` to take
capacity offline and re-pack.

Target selection maps each event's pre-drawn ``pick`` onto the
deterministically ordered list of currently eligible targets, so runs
are reproducible even though eligibility depends on simulation state.
Events that cannot be applied safely are *skipped and logged*, never
silently dropped: permanent failures (device-fail, node-crash) are
skipped when they would leave the cluster with zero healthy cards —
which would deadlock the queue — and any event with no eligible target
records ``"no-target"``.

This module deliberately imports nothing from :mod:`repro.condor` or
:mod:`repro.cluster` (it receives the pool and nodes as arguments), so
those layers can import :mod:`repro.faults` without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..net.fabric import startd_endpoint
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..sim import Environment
from .errors import JobCrashed, NodeLost
from .schedule import (
    DAEMON_CRASH,
    DAEMONS,
    DEVICE_FAIL,
    DEVICE_RESET,
    JOB_CRASH,
    NODE_CRASH,
    FaultSchedule,
)

#: Everything an injection attempt can resolve to.
OUTCOMES = (
    "applied",
    "skipped-last-device",
    "no-target",
    "skipped-daemon-down",
)


@dataclass(frozen=True)
class InjectionRecord:
    """The audited outcome of one scheduled fault event."""

    time: float
    seq: int
    kind: str
    target: Optional[str]
    outcome: str


def _pick(items: list, pick: float):
    """Deterministically map a [0, 1) draw onto a non-empty list."""
    return items[min(len(items) - 1, int(pick * len(items)))]


class FaultInjector:
    """Applies a fault schedule to a running cluster simulation.

    Parameters
    ----------
    env:
        The simulation environment (shared with the pool).
    schedule:
        The pre-generated deterministic event list.
    pool:
        The Condor pool under attack (schedd, collector, startds).
    nodes:
        The compute nodes backing the pool's startds, in startd order.
    """

    def __init__(
        self,
        env: Environment,
        schedule: FaultSchedule,
        pool: Any,
        nodes: list,
    ) -> None:
        self.env = env
        self.schedule = schedule
        self.pool = pool
        self.nodes = list(nodes)
        self.log: list[InjectionRecord] = []
        self.applied = 0
        self.skipped = 0
        #: Called with ``(node_name, device_index)`` when a card goes
        #: down / comes back — the knapsack scheduler's repack hooks.
        self.device_failed_listeners: list[Callable[[str, int], None]] = []
        self.device_restored_listeners: list[Callable[[str, int], None]] = []
        self._started = False

    def start(self) -> None:
        """Launch the injector (and heartbeats) as simulation processes.

        A no-op when the schedule is empty: a null profile must add
        *zero* events to the simulation so fault-free runs stay
        byte-identical to runs without the faults subsystem.
        """
        if self._started:
            raise RuntimeError("injector already started")
        self._started = True
        if not self.schedule.events:
            return
        if (
            any(e.kind == DAEMON_CRASH for e in self.schedule.events)
            and getattr(self.pool, "supervisor", None) is None
        ):
            raise ValueError(
                "the schedule injects daemon crashes but the pool has no "
                "DaemonSupervisor (build it with recovery enabled)"
            )
        self.env.process(self._driver(), name="fault-injector")
        if getattr(self.pool, "fabric", None) is not None:
            # Fabric mode: periodic machine-updates over the network
            # double as heartbeats, so side-channel heartbeat processes
            # would mask exactly the staleness the fabric models.
            return
        collector = self.pool.collector
        for startd in self.pool.startds:
            collector.record_heartbeat(startd.name, self.env.now)
            self.env.process(
                self._heartbeat(startd), name=f"heartbeat:{startd.name}"
            )

    # -- processes ---------------------------------------------------------

    def _driver(self):
        for event in self.schedule.events:
            delay = event.time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            outcome, target = self._apply(event)
            self.log.append(
                InjectionRecord(
                    time=self.env.now,
                    seq=event.seq,
                    kind=event.kind,
                    target=target,
                    outcome=outcome,
                )
            )
            if outcome == "applied":
                self.applied += 1
            else:
                self.skipped += 1
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.set_thread_name(_trace.FAULTS_TID, "fault injector")
                tracer.instant(
                    f"fault:{event.kind}",
                    "faults",
                    self.env.now,
                    tid=_trace.FAULTS_TID,
                    target=target,
                    outcome=outcome,
                )
            registry = _metrics.ACTIVE
            if registry is not None:
                if outcome == "applied":
                    registry.counter("faults.applied").inc()
                else:
                    registry.counter("faults.skipped").inc()

    def _heartbeat(self, startd):
        interval = self.schedule.profile.heartbeat_interval_s
        collector = self.pool.collector
        while True:
            yield self.env.timeout(interval)
            if startd.alive:
                collector.record_heartbeat(startd.name, self.env.now)

    # -- event application -------------------------------------------------

    def _apply(self, event) -> tuple[str, Optional[str]]:
        if event.kind == DEVICE_FAIL:
            eligible = self._healthy_devices()
            if not eligible:
                return "no-target", None
            if len(eligible) <= 1:
                # A permanent loss of the last card would strand the
                # queue forever; account for the event instead.
                return "skipped-last-device", None
            node, index = _pick(eligible, event.pick)
            self._fail_device(node, index)
            return "applied", f"{node.name}/mic{index}"

        if event.kind == DEVICE_RESET:
            eligible = self._healthy_devices()
            if not eligible:
                return "no-target", None
            node, index = _pick(eligible, event.pick)
            self._fail_device(node, index)
            self.env.process(
                self._restore_device_later(node, index),
                name=f"reset:{node.name}/mic{index}",
            )
            return "applied", f"{node.name}/mic{index}"

        if event.kind == NODE_CRASH:
            alive = [
                node
                for node in self.nodes
                if self.pool.collector.startd(node.name).alive
            ]
            if not alive:
                return "no-target", None
            node = _pick(alive, event.pick)
            survivors = [
                (n, i) for n, i in self._healthy_devices() if n is not node
            ]
            if not survivors:
                return "skipped-last-device", None
            self._crash_node(node)
            return "applied", node.name

        if event.kind == JOB_CRASH:
            running = sorted(self.pool.schedd.running(), key=lambda r: r.seq)
            if not running:
                return "no-target", None
            record = _pick(running, event.pick)
            startd = self.pool.collector.startd(record.matched_node)
            startd.interrupt_job(record.job_id, JobCrashed(record.job_id))
            return "applied", record.job_id

        if event.kind == DAEMON_CRASH:
            supervisor = self.pool.supervisor
            downtime = self.schedule.profile.daemon_downtime_s
            if event.target is not None:
                # Scripted crash: sibling of the last-device guard — a
                # daemon that is already down cannot crash again, and
                # (because crash_daemon schedules the restart before any
                # other effect) no profile can keep one down forever.
                if not supervisor.is_up(event.target):
                    return "skipped-daemon-down", event.target
                supervisor.crash_daemon(event.target, downtime)
                return "applied", event.target
            eligible = [d for d in DAEMONS if supervisor.is_up(d)]
            if not eligible:
                return "no-target", None
            daemon = _pick(eligible, event.pick)
            supervisor.crash_daemon(daemon, downtime)
            return "applied", daemon

        raise ValueError(f"unknown fault kind {event.kind!r}")

    # -- mechanics ---------------------------------------------------------

    def _healthy_devices(self) -> list[tuple[Any, int]]:
        """(node, index) pairs usable right now, in deterministic order."""
        eligible = []
        for node in self.nodes:
            if not self.pool.collector.startd(node.name).alive:
                continue
            for index, device in enumerate(node.devices):
                if device.state == "healthy":
                    eligible.append((node, index))
        return eligible

    def _fail_device(self, node, index: int) -> None:
        cause = node.fail_device(index)
        startd = self.pool.collector.startd(node.name)
        startd.fail_device_jobs(index, cause)
        for listener in list(self.device_failed_listeners):
            listener(node.name, index)

    def _restore_device_later(self, node, index: int):
        yield self.env.timeout(self.schedule.profile.reset_downtime_s)
        if not self.pool.collector.startd(node.name).alive:
            # The node crashed while the card was resetting; the node's
            # own reboot will bring the card back.
            return
        node.restore_device(index)
        for listener in list(self.device_restored_listeners):
            listener(node.name, index)

    def _crash_node(self, node) -> None:
        startd = self.pool.collector.startd(node.name)
        # Interrupt every active job with the node-loss cause *before*
        # failing the cards, so jobs report "node-lost" rather than the
        # per-card cause (interrupts fire in scheduling order).
        startd.fail_node(NodeLost(node.name))
        for index, device in enumerate(node.devices):
            if device.state == "healthy":
                node.fail_device(index)
                for listener in list(self.device_failed_listeners):
                    listener(node.name, index)
        self.pool.collector.deregister(node.name)
        fabric = getattr(self.pool, "fabric", None)
        if fabric is not None:
            fabric.set_down(startd_endpoint(node.name))
        self.env.process(
            self._restore_node_later(node), name=f"reboot:{node.name}"
        )

    def _restore_node_later(self, node):
        yield self.env.timeout(self.schedule.profile.node_downtime_s)
        startd = self.pool.collector.startd(node.name)
        for index, device in enumerate(node.devices):
            if device.state != "healthy":
                node.restore_device(index)
        startd.restore()
        self.pool.collector.reinstate(node.name)
        self.pool.collector.record_heartbeat(node.name, self.env.now)
        fabric = getattr(self.pool, "fabric", None)
        if fabric is not None:
            fabric.set_up(startd_endpoint(node.name))
        for index in range(len(node.devices)):
            for listener in list(self.device_restored_listeners):
                listener(node.name, index)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector events={len(self.schedule.events)} "
            f"applied={self.applied} skipped={self.skipped}>"
        )
