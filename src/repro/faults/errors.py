"""Infrastructure-failure exceptions and interrupt causes.

The cluster distinguishes two families of job death:

* **kill-by-container** — the job overran its own declaration (COSMIC's
  container, the card's OOM killer). The job is at fault; rerunning it
  would fail again, so these are terminal and never retried.
* **infrastructure failure** — the card hung, the node died, or the
  device-side process crashed transiently. The job is blameless; the
  schedd requeues it under a bounded-retry backoff policy.

The two families are told apart through the ``fault_status`` attribute
protocol: any exception *or* interrupt cause carrying a ``fault_status``
string is an infrastructure failure, and the string becomes the
:class:`~repro.mpss.runtime.JobRunResult` status. The protocol avoids
``isinstance`` checks across package layers — :mod:`repro.phi` defines
its own :class:`~repro.phi.device.DeviceFailed` with the same attribute
without importing this module.
"""

from __future__ import annotations

#: JobRunResult statuses that mean "the infrastructure failed the job".
DEVICE_FAILED = "device-failed"
NODE_LOST = "node-lost"
JOB_CRASHED = "job-crashed"
#: The startd's claim lease ran out (no renewal over the network): the
#: slot is reclaimed and the run killed. The job is blameless.
LEASE_EXPIRED = "lease-expired"
#: The schedd stopped hearing renewal acks and declared the claim lost
#: (the startd-side kill happened first; see repro.condor.claims).
CLAIM_LOST = "claim-lost"


class InfrastructureFailure(Exception):
    """Base class for failures the job is not responsible for."""

    fault_status = "infrastructure"


class NodeLost(InfrastructureFailure):
    """The compute node crashed (or its MPSS daemon died) under the job."""

    fault_status = NODE_LOST

    def __init__(self, node: str) -> None:
        super().__init__(f"node {node} lost")
        self.node = node


class JobCrashed(InfrastructureFailure):
    """The job's device-side process died transiently (not its fault)."""

    fault_status = JOB_CRASHED

    def __init__(self, job_id: str) -> None:
        super().__init__(f"job {job_id} crashed")
        self.job_id = job_id


class LeaseExpired(InfrastructureFailure):
    """The startd reclaimed the slot: no lease renewal arrived in time."""

    fault_status = LEASE_EXPIRED

    def __init__(self, job_id: str, node: str) -> None:
        super().__init__(f"lease on job {job_id} at {node} expired")
        self.job_id = job_id
        self.node = node


class ClaimReleased(InfrastructureFailure):
    """The schedd released the claim (e.g. an orphaned run it no longer
    recognises); the startd kills the run on receipt."""

    fault_status = CLAIM_LOST

    def __init__(self, job_id: str, node: str) -> None:
        super().__init__(f"claim on job {job_id} at {node} released")
        self.job_id = job_id
        self.node = node


def fault_status_of(exc_or_cause: object) -> str | None:
    """The infrastructure-failure status carried by an exception or
    interrupt cause, or ``None`` when it is not an infrastructure
    failure."""
    status = getattr(exc_or_cause, "fault_status", None)
    return status if isinstance(status, str) else None
