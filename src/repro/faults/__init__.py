"""Deterministic fault injection and the cluster failure model.

The paper evaluates a healthy cluster; real Phi deployments lose cards
to hangs and resets, nodes to crashes, and device-side processes to
transient faults. This package makes those failure modes first-class —
and *deterministic*: a frozen :class:`FaultProfile` plus one seed fully
determine the chaos, so degradation curves are reproducible artifacts.

See DESIGN.md ("Failure model") for the recovery-policy walkthrough.
"""

from .errors import (
    DEVICE_FAILED,
    InfrastructureFailure,
    JOB_CRASHED,
    JobCrashed,
    NODE_LOST,
    NodeLost,
    fault_status_of,
)
from .injector import OUTCOMES, FaultInjector, InjectionRecord
from .schedule import (
    DAEMON_CRASH,
    DAEMONS,
    DEVICE_FAIL,
    DEVICE_RESET,
    JOB_CRASH,
    KINDS,
    NODE_CRASH,
    FaultEvent,
    FaultProfile,
    FaultSchedule,
    derive_fault_seed,
    parse_crash,
)

__all__ = [
    "DAEMON_CRASH",
    "DAEMONS",
    "DEVICE_FAIL",
    "DEVICE_FAILED",
    "DEVICE_RESET",
    "FaultEvent",
    "FaultInjector",
    "FaultProfile",
    "FaultSchedule",
    "InfrastructureFailure",
    "InjectionRecord",
    "JOB_CRASH",
    "JOB_CRASHED",
    "JobCrashed",
    "KINDS",
    "NODE_CRASH",
    "NODE_LOST",
    "NodeLost",
    "OUTCOMES",
    "derive_fault_seed",
    "fault_status_of",
    "parse_crash",
]
