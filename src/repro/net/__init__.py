"""Simulated message fabric between the condor daemons.

The real COSMIC deployment runs schedd, negotiator, collector, and
startd as separate daemons over a lossy network. This package routes
every daemon pair through a seeded, deterministic fabric with per-link
delay, loss, duplication, reordering, and scripted partitions — plus an
at-least-once transport (retransmit with seeded backoff) and sequence
numbers so receivers can reject duplicates and dispatch in order.
"""

from .fabric import (
    COLLECTOR,
    NEGOTIATOR,
    SCHEDD,
    FabricStats,
    Message,
    MessageFabric,
    startd_endpoint,
)
from .profile import (
    NetProfile,
    PartitionSpec,
    derive_net_seed,
    parse_partition,
)

__all__ = [
    "COLLECTOR",
    "FabricStats",
    "Message",
    "MessageFabric",
    "NEGOTIATOR",
    "NetProfile",
    "PartitionSpec",
    "SCHEDD",
    "derive_net_seed",
    "parse_partition",
    "startd_endpoint",
]
