"""Network fault profiles: the fabric's seeded configuration.

Mirrors :mod:`repro.faults.schedule`: a frozen, picklable profile that
rides inside experiment task params (so the fabric configuration is part
of the result-cache key), plus a seed-derivation helper so the network
stream is decoupled from — but reproducibly derived from — the workload
seed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


def derive_net_seed(seed: int) -> int:
    """Derive the fabric's RNG seed from the experiment seed.

    Like :func:`repro.faults.schedule.derive_fault_seed`: a distinct,
    stable stream per experiment seed, so changing the workload seed
    changes the network weather too, without the two streams aliasing.
    """
    digest = hashlib.sha256(f"net-fabric:{seed}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class PartitionSpec:
    """A scripted partition window: ``pattern`` is unreachable in [start, end).

    ``pattern`` names the endpoints cut off from the rest of the fabric:
    an exact endpoint name (``"startd:node3"``), a prefix glob
    (``"startd:*"``), or ``"*"`` for a full blackout. While the window is
    active, any message whose source *or* destination matches is dropped
    at send time (the transport keeps retransmitting, so delivery resumes
    when the window closes).
    """

    start_s: float
    end_s: float
    pattern: str = "*"

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("partition start must be non-negative")
        if self.end_s <= self.start_s:
            raise ValueError("partition end must be after its start")
        if not self.pattern:
            raise ValueError("partition pattern must be non-empty")

    def matches(self, endpoint: str) -> bool:
        if self.pattern == "*":
            return True
        if self.pattern.endswith("*"):
            return endpoint.startswith(self.pattern[:-1])
        return endpoint == self.pattern

    def active(self, now: float) -> bool:
        return self.start_s <= now < self.end_s

    def cuts(self, src: str, dst: str, now: float) -> bool:
        """Whether this window severs the ``src`` → ``dst`` link at ``now``."""
        return self.active(now) and (self.matches(src) or self.matches(dst))


def parse_partition(spec: str) -> PartitionSpec:
    """Parse a CLI partition spec ``START:END:PATTERN``.

    ``PATTERN`` may itself contain colons (endpoint names such as
    ``startd:node0``), so only the first two fields are split off:
    ``"120:240:startd:*"`` partitions every startd from 120 s to 240 s.
    """
    parts = spec.split(":", 2)
    if len(parts) != 3:
        raise ValueError(
            f"partition spec {spec!r} is not START:END:PATTERN"
        )
    try:
        start, end = float(parts[0]), float(parts[1])
    except ValueError:
        raise ValueError(
            f"partition spec {spec!r} has non-numeric start/end"
        ) from None
    return PartitionSpec(start_s=start, end_s=end, pattern=parts[2])


@dataclass(frozen=True)
class NetProfile:
    """Frozen fabric configuration (rides in experiment cache keys).

    Delay model: each transmission attempt takes
    ``delay_base_s + U(0, delay_jitter_s)`` one-way; independent draws
    per attempt mean later sends can overtake earlier ones (reordering),
    which the receiver's sequence-number buffer straightens out.

    Transport: every message is retransmitted on a seeded exponential
    backoff (``rto_initial_s`` doubling by ``rto_backoff`` up to
    ``rto_max_s``) until the sender sees an acknowledgement — HTCondor's
    "keep trying until the daemon answers" behaviour.

    Leases: a running claim is renewed every ``renew_interval_s``; the
    startd kills the job when no renewal lands for ``lease_duration_s``
    past the last renewal's *send* time, and the schedd declares a claim
    lost after an unacknowledged ``lease_duration_s`` plus a drain wait
    (see :mod:`repro.condor.claims` for why that ordering is safe).
    """

    delay_base_s: float = 0.05
    delay_jitter_s: float = 0.05
    loss: float = 0.0
    dup: float = 0.0
    partitions: tuple[PartitionSpec, ...] = field(default_factory=tuple)
    rto_initial_s: float = 1.0
    rto_backoff: float = 2.0
    rto_max_s: float = 30.0
    lease_duration_s: float = 30.0
    renew_interval_s: float = 10.0
    match_timeout_s: float = 45.0
    update_interval_s: float = 5.0
    heartbeat_timeout_s: float = 20.0
    #: Fraction of retry backoff randomized under the fabric (satellite:
    #: desynchronize retry storms when many claims die together).
    retry_jitter: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        if not 0.0 <= self.dup < 1.0:
            raise ValueError("dup must be in [0, 1)")
        if self.delay_base_s < 0 or self.delay_jitter_s < 0:
            raise ValueError("delays must be non-negative")
        if self.rto_initial_s <= 0 or self.rto_max_s <= 0:
            raise ValueError("retransmit timeouts must be positive")
        if self.rto_backoff < 1.0:
            raise ValueError("rto_backoff must be >= 1")
        if self.lease_duration_s <= 0:
            raise ValueError("lease_duration_s must be positive")
        if not 0 < self.renew_interval_s < self.lease_duration_s:
            raise ValueError(
                "renew_interval_s must be positive and below lease_duration_s"
            )
        # A match-timeout at or below the lease duration would let a
        # revert-and-rematch overlap an orphaned claim's run window: the
        # orphan's lease expires at claim-activation send time + lease
        # duration, and the schedd only re-offers the job match_timeout_s
        # after it processed the match (same instant it sent the
        # activation). Strict inequality keeps kill-before-rematch.
        if self.match_timeout_s <= self.lease_duration_s:
            raise ValueError(
                "match_timeout_s must exceed lease_duration_s "
                "(orphaned claims must expire before the job is re-offered)"
            )
        if self.update_interval_s <= 0:
            raise ValueError("update_interval_s must be positive")
        if self.heartbeat_timeout_s <= self.update_interval_s:
            raise ValueError(
                "heartbeat_timeout_s must exceed update_interval_s"
            )
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError("retry_jitter must be in [0, 1]")

    @classmethod
    def chaos(
        cls,
        loss: float,
        delay_base_s: float = 0.05,
        delay_jitter_s: float = 0.1,
        dup: float | None = None,
        partitions: tuple[PartitionSpec, ...] = (),
    ) -> "NetProfile":
        """A standard chaos profile at a given loss rate.

        Duplication defaults to half the loss rate (lossy links tend to
        duplicate too — retransmit races at the real transport layer).
        """
        return cls(
            delay_base_s=delay_base_s,
            delay_jitter_s=delay_jitter_s,
            loss=loss,
            dup=loss / 2.0 if dup is None else dup,
            partitions=tuple(partitions),
        )
