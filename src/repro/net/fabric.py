"""The message fabric: seeded, deterministic unreliable daemon links.

Every condor daemon pair (schedd↔negotiator, schedd↔startd,
startd↔collector, negotiator↔collector) routes through one fabric. A
message is a ``(src, dst, kind, payload)`` tuple; each directed link
assigns consecutive sequence numbers at send time, and the fabric
provides:

* **Delay**: each transmission attempt draws an independent one-way
  latency (base + uniform jitter), so later attempts can overtake
  earlier ones — natural reordering.
* **Loss / duplication**: per-attempt seeded coin flips.
* **Scripted partitions**: windows during which matching endpoints are
  unreachable (drops at send time; retransmission rides it out).
* **At-least-once delivery**: a per-message retransmit process resends
  on a seeded exponential backoff until an acknowledgement arrives.
  Acks travel through the same lossy weather.
* **Idempotent, in-order dispatch**: the receiver side of each link
  drops duplicate sequence numbers (re-acking them — the ack may have
  been the lost half) and buffers ahead-of-sequence arrivals until the
  gap fills, so handlers observe each message exactly once, in send
  order. FIFO per link is what lets the claim protocol reason about
  "release follows renew" without per-message state.

Determinism: one ``random.Random(seed)`` drives every draw, consumed in
kernel event order — which the simulation kernel makes deterministic —
so a fixed seed replays byte-identically. No wall clock, no builtin
``hash``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import random

from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..sim import Environment
from .profile import NetProfile

#: Well-known endpoint names (startds use :func:`startd_endpoint`).
SCHEDD = "schedd"
NEGOTIATOR = "negotiator"
COLLECTOR = "collector"


def startd_endpoint(node: str) -> str:
    """The fabric endpoint name of one node's startd."""
    return f"startd:{node}"


@dataclass
class Message:
    """One fabric message (identity = ``(src, dst, seq)``)."""

    src: str
    dst: str
    kind: str
    payload: dict
    seq: int
    send_time: float


@dataclass
class FabricStats:
    """Counters for one fabric's lifetime (one simulation cell)."""

    messages_sent: int = 0
    attempts: int = 0
    delivered: int = 0
    retransmits: int = 0
    losses: int = 0
    duplicates_sent: int = 0
    duplicates_dropped: int = 0
    partition_drops: int = 0
    down_drops: int = 0
    acks_lost: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "messages_sent": self.messages_sent,
            "attempts": self.attempts,
            "delivered": self.delivered,
            "retransmits": self.retransmits,
            "losses": self.losses,
            "duplicates_sent": self.duplicates_sent,
            "duplicates_dropped": self.duplicates_dropped,
            "partition_drops": self.partition_drops,
            "down_drops": self.down_drops,
            "acks_lost": self.acks_lost,
        }


class _Link:
    """Directed-link state: sender sequence counter + receiver window."""

    __slots__ = ("tx_seq", "rx_next", "rx_buffer")

    def __init__(self) -> None:
        self.tx_seq = 0
        self.rx_next = 0
        self.rx_buffer: dict[int, Message] = {}


class _Outstanding:
    """Sender-side delivery state for one message."""

    __slots__ = ("acked", "on_delivered")

    def __init__(self, on_delivered: Optional[Callable[[Message], None]]) -> None:
        self.acked = False
        self.on_delivered = on_delivered


class MessageFabric:
    """Routes daemon messages through seeded network weather."""

    def __init__(self, env: Environment, profile: NetProfile, seed: int) -> None:
        self.env = env
        self.profile = profile
        self.rng = random.Random(seed)
        self.stats = FabricStats()
        self._handlers: dict[tuple[str, str], Callable[[Message], None]] = {}
        self._links: dict[tuple[str, str], _Link] = {}
        self._down: set[str] = set()
        # Partition windows already announced to the tracer (by index),
        # so each window emits one open instant, not one per drop.
        self._announced: set[int] = set()

    # -- wiring -----------------------------------------------------------

    def register(
        self, endpoint: str, kind: str, handler: Callable[[Message], None]
    ) -> None:
        """Install the handler for ``kind`` messages arriving at ``endpoint``."""
        key = (endpoint, kind)
        if key in self._handlers:
            raise ValueError(f"handler for {kind!r} at {endpoint!r} already set")
        self._handlers[key] = handler

    def set_down(self, endpoint: str) -> None:
        """Take an endpoint offline: it neither sends nor receives.

        In-flight retransmit loops keep running; delivery resumes once
        the endpoint comes back (daemon restart keeps the TCP analogy
        simple: the transport state survives).
        """
        self._down.add(endpoint)

    def set_up(self, endpoint: str) -> None:
        self._down.discard(endpoint)

    def is_down(self, endpoint: str) -> bool:
        return endpoint in self._down

    # -- sending ----------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: dict,
        on_delivered: Optional[Callable[[Message], None]] = None,
    ) -> Message:
        """Queue a message for at-least-once delivery; returns it.

        ``on_delivered`` fires once, when the first acknowledgement
        reaches the sender (i.e. the sender *knows* the message landed —
        delivery itself may have happened earlier).
        """
        link = self._link(src, dst)
        message = Message(
            src=src,
            dst=dst,
            kind=kind,
            payload=payload,
            seq=link.tx_seq,
            send_time=self.env.now,
        )
        link.tx_seq += 1
        self.stats.messages_sent += 1
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.counter("net.messages").inc()
        out = _Outstanding(on_delivered)
        self.env.process(
            self._retransmit_loop(message, out),
            name=f"net:{kind}:{src}->{dst}#{message.seq}",
        )
        return message

    # -- internals --------------------------------------------------------

    def _link(self, src: str, dst: str) -> _Link:
        link = self._links.get((src, dst))
        if link is None:
            link = self._links[(src, dst)] = _Link()
        return link

    def _partitioned(self, src: str, dst: str, now: float) -> bool:
        for i, window in enumerate(self.profile.partitions):
            if window.cuts(src, dst, now):
                if i not in self._announced:
                    self._announced.add(i)
                    tracer = _trace.ACTIVE
                    if tracer is not None:
                        tracer.complete(
                            "partition",
                            "net",
                            window.start_s,
                            window.end_s,
                            tid=_trace.NET_TID,
                            pattern=window.pattern,
                        )
                    registry = _metrics.ACTIVE
                    if registry is not None:
                        registry.counter("net.partition_windows").inc()
                return True
        return False

    def _retransmit_loop(self, message: Message, out: _Outstanding):
        """Transmit, then resend on seeded exponential backoff until acked."""
        rto = self.profile.rto_initial_s
        attempt = 0
        while not out.acked:
            attempt += 1
            self._transmit(message, out, attempt)
            # Seeded jitter on the backoff so simultaneous losses don't
            # retransmit in lockstep (the same storm-avoidance argument
            # as RetryPolicy jitter, at the transport layer).
            yield self.env.timeout(rto * (0.5 + self.rng.random()))
            rto = min(rto * self.profile.rto_backoff, self.profile.rto_max_s)

    def _transmit(self, message: Message, out: _Outstanding, attempt: int) -> None:
        profile = self.profile
        rng = self.rng
        # Fixed draw order per attempt (delay, loss, dup) keeps the
        # stream alignment independent of partition/down state.
        delay = profile.delay_base_s + rng.random() * profile.delay_jitter_s
        lost = rng.random() < profile.loss
        duplicated = rng.random() < profile.dup
        self.stats.attempts += 1
        if attempt > 1:
            self.stats.retransmits += 1
            registry = _metrics.ACTIVE
            if registry is not None:
                registry.counter("net.retransmits").inc()
        now = self.env.now
        if message.src in self._down or message.dst in self._down:
            self.stats.down_drops += 1
            return
        if self._partitioned(message.src, message.dst, now):
            self.stats.partition_drops += 1
            return
        if lost:
            self.stats.losses += 1
            return
        self._schedule(delay, lambda: self._deliver(message, out))
        if duplicated:
            self.stats.duplicates_sent += 1
            dup_delay = profile.delay_base_s + rng.random() * profile.delay_jitter_s
            self._schedule(dup_delay, lambda: self._deliver(message, out))

    def _schedule(self, delay: float, action: Callable[[], None]) -> None:
        # A bare timeout with a callback appended — one heap event per
        # flight, no generator process.
        timeout = self.env.timeout(delay)
        timeout.callbacks.append(lambda _event: action())

    def _deliver(self, message: Message, out: _Outstanding) -> None:
        if message.dst in self._down:
            # Receiver offline: the copy evaporates, no ack.
            self.stats.down_drops += 1
            return
        link = self._link(message.src, message.dst)
        if message.seq < link.rx_next or message.seq in link.rx_buffer:
            self.stats.duplicates_dropped += 1
            registry = _metrics.ACTIVE
            if registry is not None:
                registry.counter("net.duplicates_dropped").inc()
        else:
            link.rx_buffer[message.seq] = message
            while link.rx_next in link.rx_buffer:
                ready = link.rx_buffer.pop(link.rx_next)
                link.rx_next += 1
                self.stats.delivered += 1
                self._dispatch(ready)
        # Every received copy is acknowledged — the earlier ack may have
        # been the lost half of the round trip.
        self._send_ack(message, out)

    def _dispatch(self, message: Message) -> None:
        handler = self._handlers.get((message.dst, message.kind))
        if handler is None:
            raise KeyError(
                f"no handler for {message.kind!r} at {message.dst!r}"
            )
        handler(message)

    def _send_ack(self, message: Message, out: _Outstanding) -> None:
        profile = self.profile
        rng = self.rng
        delay = profile.delay_base_s + rng.random() * profile.delay_jitter_s
        lost = rng.random() < profile.loss
        if message.dst in self._down or message.src in self._down:
            self.stats.down_drops += 1
            return
        if self._partitioned(message.dst, message.src, self.env.now):
            self.stats.partition_drops += 1
            return
        if lost:
            self.stats.acks_lost += 1
            return
        self._schedule(delay, lambda: self._ack_arrived(message, out))

    def _ack_arrived(self, message: Message, out: _Outstanding) -> None:
        if out.acked:
            return
        out.acked = True
        if out.on_delivered is not None:
            out.on_delivered(message)

    def __repr__(self) -> str:
        return (
            f"<MessageFabric sent={self.stats.messages_sent} "
            f"delivered={self.stats.delivered} "
            f"retransmits={self.stats.retransmits}>"
        )
