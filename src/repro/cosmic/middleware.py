"""COSMIC — node-level middleware enabling safe coprocessor sharing.

One :class:`Cosmic` instance manages one Xeon Phi card and provides the
three behaviours the paper relies on (§IV-D2):

1. **Job admission by declared memory.** A job's COI process is created
   only when the sum of admitted declarations fits the card; otherwise
   the job queues (FIFO) at the node. This is what makes *random*
   cluster-level placement (the paper's MCC configuration) safe.
2. **Offload thread gating.** Each offload burst must obtain its threads
   from a hardware-thread pool before executing, so concurrent offloads
   never oversubscribe the 240 hardware threads.
3. **Memory-limit containers.** Jobs that exceed their own declaration
   are killed (see :mod:`repro.cosmic.container`).

Affinitization (behaviour 3 in the paper's list) is reflected in the
device's contention model — gated offloads run at full speed on disjoint
core sets — and is additionally tracked explicitly through a
:class:`~repro.cosmic.affinity.CoreSetAllocator` for observability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..obs import metrics as _metrics
from ..phi.device import XeonPhi
from ..sim import Container, ContainerGet, Environment
from .affinity import CoreSetAllocator
from .container import DeclaredMemoryEnforcer


@dataclass
class CosmicStats:
    """Counters exposed for experiments and tests."""

    jobs_admitted: int = 0
    jobs_released: int = 0
    offloads_gated: int = 0
    peak_concurrent_jobs: int = 0
    peak_gated_threads: int = 0


class Cosmic:
    """Sharing middleware for one coprocessor card."""

    def __init__(
        self,
        env: Environment,
        device: XeonPhi,
        enforcer: Optional[DeclaredMemoryEnforcer] = None,
    ) -> None:
        self.env = env
        self.device = device
        spec = device.spec
        threads = spec.hardware_threads
        memory = spec.usable_memory_mb
        # Pools start full; admission draws them down.
        self._thread_pool = Container(env, capacity=threads, init=threads)
        self._memory_pool = Container(env, capacity=memory, init=memory)
        self.enforcer = enforcer if enforcer is not None else DeclaredMemoryEnforcer()
        self.affinity = CoreSetAllocator(spec.cores, spec.threads_per_core)
        self.stats = CosmicStats()
        self._resident_jobs = 0

    # -- job admission (declared memory) -------------------------------------

    @property
    def free_declared_memory_mb(self) -> float:
        """Declared-memory headroom still available on this card."""
        return self._memory_pool.level

    @property
    def resident_jobs(self) -> int:
        """Jobs currently admitted to the card."""
        return self._resident_jobs

    def admit_job(self, declared_memory_mb: float) -> ContainerGet:
        """Reserve declared memory; the event triggers once it fits.

        Declarations larger than the card are clamped to the card: such a
        job can only ever run alone, which is the exclusive-allocation
        behaviour the paper's baseline gives every job.
        """
        amount = min(declared_memory_mb, self._memory_pool.capacity)
        event = self._memory_pool.get(amount)
        event.callbacks.append(lambda _e: self._on_admit())
        return event

    def _on_admit(self) -> None:
        self._resident_jobs += 1
        self.stats.jobs_admitted += 1
        self.stats.peak_concurrent_jobs = max(
            self.stats.peak_concurrent_jobs, self._resident_jobs
        )
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.counter("cosmic.jobs_admitted").inc()
            self._record_occupancy(registry)

    def release_job(self, declared_memory_mb: float) -> None:
        """Return a completed (or killed) job's declared memory."""
        amount = min(declared_memory_mb, self._memory_pool.capacity)
        self._memory_pool.put(amount)
        self._resident_jobs -= 1
        self.stats.jobs_released += 1
        registry = _metrics.ACTIVE
        if registry is not None:
            self._record_occupancy(registry)

    def _record_occupancy(self, registry) -> None:
        """Sample the card's sharing level into the metrics gauges."""
        now = self.env.now
        name = self.device.name
        registry.gauge(f"cosmic.{name}.resident_jobs").record(
            now, self._resident_jobs
        )
        registry.gauge(f"cosmic.{name}.reserved_mb").record(
            now, self._memory_pool.capacity - self._memory_pool.level
        )

    # -- offload gating (hardware threads) ------------------------------------

    def _clamp_threads(self, threads: int) -> int:
        # Offloads demanding more than the hardware run with the whole
        # card ("will not be allowed to execute" concurrently, §IV-D2).
        return min(threads, int(self._thread_pool.capacity))

    def acquire(self, threads: int) -> ContainerGet:
        """OffloadGate: obtain ``threads`` hardware threads (FIFO)."""
        if threads <= 0:
            raise ValueError("threads must be positive")
        amount = self._clamp_threads(threads)
        event = self._thread_pool.get(amount)
        event.callbacks.append(lambda _e: self._on_gate(amount))
        return event

    def _on_gate(self, amount: int) -> None:
        self.stats.offloads_gated += 1
        gated = int(self._thread_pool.capacity - self._thread_pool.level)
        self.stats.peak_gated_threads = max(self.stats.peak_gated_threads, gated)
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.counter("cosmic.offloads_gated").inc()
            registry.gauge(f"cosmic.{self.device.name}.gated_threads").record(
                self.env.now, gated
            )

    def release(self, threads: int) -> None:
        """OffloadGate: return previously acquired threads."""
        if threads <= 0:
            raise ValueError("threads must be positive")
        self._thread_pool.put(self._clamp_threads(threads))
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.gauge(f"cosmic.{self.device.name}.gated_threads").record(
                self.env.now,
                int(self._thread_pool.capacity - self._thread_pool.level),
            )

    @property
    def free_threads(self) -> int:
        """Hardware threads not currently granted to an offload."""
        return int(self._thread_pool.level)

    def __repr__(self) -> str:
        return (
            f"<Cosmic on {self.device.name}: jobs={self._resident_jobs} "
            f"free_mem={self.free_declared_memory_mb:.0f}MB "
            f"free_threads={self.free_threads}>"
        )
