"""COSMIC: node-level Xeon Phi sharing middleware (reimplementation of [6])."""

from .affinity import AffinityError, CoreSetAllocator
from .container import DeclaredMemoryEnforcer
from .middleware import Cosmic, CosmicStats

__all__ = [
    "AffinityError",
    "CoreSetAllocator",
    "Cosmic",
    "CosmicStats",
    "DeclaredMemoryEnforcer",
]
