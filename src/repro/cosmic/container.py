"""Memory-limit enforcement via (simulated) Linux containers.

COSMIC runs each job's device process inside a container whose memory
limit is the job's *declared* maximum. The knapsack guarantees that the
sum of declarations fits the card, but it "cannot compensate for a user's
mistakes such as underestimating the memory of a job" (§IV-D2) — the
container kills such jobs before they can endanger their co-residents.
"""

from __future__ import annotations

from ..mpss.runtime import MemoryLimitExceeded
from ..obs import metrics as _metrics
from ..workloads.profiles import JobProfile


class DeclaredMemoryEnforcer:
    """Kills jobs whose resident memory exceeds their declaration.

    Parameters
    ----------
    tolerance:
        Fractional slack before killing (containers usually allow a small
        page-accounting fuzz). 0.0 = strict.
    """

    def __init__(self, tolerance: float = 0.0) -> None:
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.tolerance = tolerance
        self.kills: list[str] = []
        self._killed: set[str] = set()

    def check(self, profile: JobProfile, resident_mb: float) -> None:
        limit = profile.declared_memory_mb * (1.0 + self.tolerance)
        if resident_mb > limit:
            # A job can trip the limit at several offload phases before
            # its kill unwinds (and again on a retried run): record each
            # job once so ``kills`` counts jobs, not limit checks.
            if profile.job_id not in self._killed:
                self._killed.add(profile.job_id)
                self.kills.append(profile.job_id)
                registry = _metrics.ACTIVE
                if registry is not None:
                    registry.counter("container.memory_limit_kills").inc()
            raise MemoryLimitExceeded(
                profile.job_id, resident_mb, profile.declared_memory_mb
            )
