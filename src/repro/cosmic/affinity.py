"""Thread-to-core affinitization, COSMIC-style.

COSMIC pins each concurrent offload to its own set of physical cores so
that within-budget offloads never time-share a core (§IV-D2: two 120-
thread jobs each get 30 dedicated cores, together saturating the card).
The allocator below reproduces that: first-fit over a free-core pool,
disjointness guaranteed by construction.
"""

from __future__ import annotations

from typing import Hashable


class AffinityError(Exception):
    """Raised when a disjoint core set cannot be provided."""


class CoreSetAllocator:
    """First-fit allocator of disjoint core sets on one card."""

    def __init__(self, cores: int = 60, threads_per_core: int = 4) -> None:
        if cores <= 0 or threads_per_core <= 0:
            raise ValueError("cores and threads_per_core must be positive")
        self.cores = cores
        self.threads_per_core = threads_per_core
        self._free: list[int] = list(range(cores))
        self._assigned: dict[Hashable, tuple[int, ...]] = {}

    @property
    def free_cores(self) -> int:
        return len(self._free)

    def assignment_of(self, owner: Hashable) -> tuple[int, ...]:
        """The core ids currently pinned to ``owner`` (empty if none)."""
        return self._assigned.get(owner, ())

    def cores_needed(self, threads: int) -> int:
        if threads <= 0:
            raise ValueError("threads must be positive")
        return -(-threads // self.threads_per_core)

    def assign(self, owner: Hashable, threads: int) -> tuple[int, ...]:
        """Pin ``owner``'s next offload to a disjoint set of cores.

        Raises
        ------
        AffinityError
            If the owner already holds an assignment or the card lacks
            enough free cores (the caller should have gated on threads).
        """
        if owner in self._assigned:
            raise AffinityError(f"{owner!r} already holds a core set")
        needed = self.cores_needed(threads)
        if needed > len(self._free):
            raise AffinityError(
                f"need {needed} cores for {owner!r}, only {len(self._free)} free"
            )
        taken = tuple(self._free[:needed])
        del self._free[:needed]
        self._assigned[owner] = taken
        return taken

    def release(self, owner: Hashable) -> None:
        """Return ``owner``'s cores to the free pool."""
        taken = self._assigned.pop(owner, ())
        self._free.extend(taken)
        self._free.sort()

    def verify_disjoint(self) -> bool:
        """Invariant check: no core is pinned to two owners."""
        seen: set[int] = set()
        for cores in self._assigned.values():
            for core in cores:
                if core in seen:
                    return False
                seen.add(core)
        return True
