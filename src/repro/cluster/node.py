"""A compute server: host slots, one or more Xeon Phi cards, middleware.

The node is the execution half of the Condor integration: the startd
claims a host slot and calls :meth:`ComputeNode.execute`, which routes the
job to a coprocessor under one of three regimes mirroring the paper's
configurations (§V):

* ``"exclusive"`` — MC: the job owns a whole card for its lifetime
  (device lock); raw MPSS runtime, no gating needed because nothing
  shares.
* ``"cosmic"`` — MCC / MCCK: COSMIC admits the job by declared memory,
  gates each offload's threads, and enforces the declared memory limit.
* ``"unsafe"`` — raw MPSS sharing with no protection: the motivation
  experiments' oversubscription regime (crashes and slowdowns).
"""

from __future__ import annotations

from typing import Optional

from ..condor.ads import DeviceSnapshot
from ..cosmic import Cosmic, DeclaredMemoryEnforcer
from ..mpss import OffloadRuntime, SCIFModel
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..phi import (
    AffinitizedContention,
    CALIBRATED_SHARING_PENALTY,
    ContentionModel,
    UnmanagedContention,
    XeonPhi,
    XeonPhiSpec,
    PAPER_SPEC,
)
from ..sim import Environment, Resource
from ..workloads.profiles import JobProfile

MODES = ("exclusive", "cosmic", "unsafe")


class ComputeNode:
    """One server with ``num_devices`` coprocessors.

    Parameters
    ----------
    env, name:
        Simulation environment and node name (used in slot ads).
    num_devices:
        Cards per server (the paper's cluster has 1).
    spec:
        Per-card hardware description.
    mode:
        ``"exclusive"`` / ``"cosmic"`` / ``"unsafe"`` (see module docs).
    contention:
        Override the per-card contention model. Defaults to affinitized
        execution for managed modes and unmanaged interference for
        ``"unsafe"``.
    scif:
        Host<->device transfer model shared by all cards.
    memory_tolerance:
        Slack fraction for COSMIC's container enforcement.
    coi_base_mb:
        Device memory resident as soon as a job's COI process exists.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        num_devices: int = 1,
        spec: XeonPhiSpec = PAPER_SPEC,
        mode: str = "cosmic",
        contention: Optional[ContentionModel] = None,
        scif: Optional[SCIFModel] = None,
        memory_tolerance: float = 0.0,
        coi_base_mb: float = 0.0,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        self.env = env
        self.name = name
        self.mode = mode
        self.spec = spec

        if contention is None:
            contention = (
                UnmanagedContention()
                if mode == "unsafe"
                else AffinitizedContention(
                    sharing_penalty=CALIBRATED_SHARING_PENALTY
                )
            )

        self.num_devices = num_devices
        self._contention = contention
        self._scif = scif
        self._memory_tolerance = memory_tolerance
        self._coi_base_mb = coi_base_mb
        self._running: list[int] = [0] * num_devices
        # The device stack (cards, middleware, runtimes, locks) is built
        # on first use: a 1000-node pool where most nodes never receive
        # a job only ever pays for the nodes that do. Snapshots for
        # pristine nodes are synthesized from the spec (see
        # device_states). With a metrics registry active the stack is
        # built eagerly, so per-device telemetry series are adopted at
        # construction time exactly as before.
        self._devices: Optional[list[XeonPhi]] = None
        self._cosmics: Optional[list[Optional[Cosmic]]] = None
        self._runtimes: Optional[list[OffloadRuntime]] = None
        self._device_locks: Optional[list[Resource]] = None
        if _metrics.ACTIVE is not None:
            self._materialize()

    def _materialize(self) -> None:
        if self._devices is not None:
            return
        env, name, mode, spec = self.env, self.name, self.mode, self.spec
        self._devices = [
            XeonPhi(
                env, spec=spec, contention=self._contention,
                name=f"{name}/mic{i}",
            )
            for i in range(self.num_devices)
        ]
        self._cosmics = []
        self._runtimes = []
        self._device_locks = []
        for device in self._devices:
            if mode == "cosmic":
                cosmic = Cosmic(
                    env,
                    device,
                    enforcer=DeclaredMemoryEnforcer(
                        tolerance=self._memory_tolerance
                    ),
                )
                runtime = OffloadRuntime(
                    env,
                    device,
                    scif=self._scif,
                    gate=cosmic,
                    enforcer=cosmic.enforcer,
                    coi_base_mb=self._coi_base_mb,
                )
            else:
                cosmic = None
                runtime = OffloadRuntime(
                    env, device, scif=self._scif,
                    coi_base_mb=self._coi_base_mb,
                )
            self._cosmics.append(cosmic)
            self._runtimes.append(runtime)
            self._device_locks.append(Resource(env, capacity=1))

    @property
    def materialized(self) -> bool:
        """Whether the device stack has been built (nodes start pristine)."""
        return self._devices is not None

    @property
    def devices(self) -> list[XeonPhi]:
        self._materialize()
        return self._devices

    @property
    def cosmics(self) -> list[Optional[Cosmic]]:
        self._materialize()
        return self._cosmics

    @property
    def runtimes(self) -> list[OffloadRuntime]:
        self._materialize()
        return self._runtimes

    @property
    def _locks(self) -> list[Resource]:
        self._materialize()
        return self._device_locks

    # -- failure surface -------------------------------------------------------

    def fail_device(self, index: int):
        """Take one card down; returns the failure cause for reuse.

        In-flight offloads on the card are interrupted with the cause;
        the startd layer additionally interrupts jobs matched to the
        card that are *between* offloads (host phases, transfers, gate
        or admission queues).
        """
        if not 0 <= index < len(self.devices):
            raise ValueError(f"no device {index} on {self.name}")
        return self.devices[index].fail()

    def restore_device(self, index: int) -> None:
        """Bring one card back after a reset or node reboot."""
        if not 0 <= index < len(self.devices):
            raise ValueError(f"no device {index} on {self.name}")
        self.devices[index].restore()

    # -- NodeExecutor interface ------------------------------------------------

    def device_states(self) -> list[DeviceSnapshot]:
        if self._devices is None:
            # Pristine node: no job ever landed here, so every card is
            # healthy, empty, and at full capacity — synthesized from the
            # spec, exactly what a freshly built stack would report.
            spec = self.spec
            cosmic_free = (
                spec.usable_memory_mb
                if self.mode == "cosmic"
                else float(spec.usable_memory_mb)
            )
            return [
                DeviceSnapshot(
                    index=index,
                    memory_mb=float(spec.usable_memory_mb),
                    free_declared_mb=cosmic_free,
                    resident_jobs=0,
                    hardware_threads=spec.hardware_threads,
                    claimed_exclusive=False,
                    failed=False,
                )
                for index in range(self.num_devices)
            ]
        states = []
        for index, device in enumerate(self.devices):
            cosmic = self.cosmics[index]
            if cosmic is not None:
                free_mb = cosmic.free_declared_memory_mb
                resident = cosmic.resident_jobs
            else:
                resident = self._running[index]
                free_mb = (
                    0.0 if resident else float(device.spec.usable_memory_mb)
                )
            states.append(
                DeviceSnapshot(
                    index=index,
                    memory_mb=float(device.spec.usable_memory_mb),
                    free_declared_mb=free_mb,
                    resident_jobs=resident,
                    hardware_threads=device.spec.hardware_threads,
                    claimed_exclusive=False,  # overlaid by the startd
                    failed=device.state != "healthy",
                )
            )
        return states

    def device_utilizations(self, horizon: float) -> list[float]:
        """Per-card busy-core fractions over ``[0, horizon]``.

        Pristine nodes report zeros without materializing their stack —
        the end-of-run collection pass must not inflate a mostly-idle
        big cluster's footprint.
        """
        if self._devices is None:
            return [0.0] * self.num_devices
        return [
            device.telemetry.core_utilization(device.spec.cores, 0.0, horizon)
            for device in self._devices
        ]

    @property
    def oom_kills(self) -> int:
        """Total OOM kills across this node's cards (0 while pristine)."""
        if self._devices is None:
            return 0
        return sum(device.telemetry.oom_kills for device in self._devices)

    def execute(
        self,
        profile: JobProfile,
        device_index: Optional[int] = None,
        exclusive: bool = False,
    ):
        """Run one job on this node; ``yield from`` inside a process."""
        index = self._pick_device(device_index, profile)
        if exclusive or self.mode == "exclusive":
            result = yield from self._execute_exclusive(profile, index)
        elif self.mode == "cosmic":
            result = yield from self._execute_cosmic(profile, index)
        else:
            result = yield from self._execute_unsafe(profile, index)
        return result

    # -- placement within the node ----------------------------------------------

    def _pick_device(self, device_index: Optional[int], profile: JobProfile) -> int:
        if device_index is not None:
            if not 0 <= device_index < len(self.devices):
                raise ValueError(f"no device {device_index} on {self.name}")
            return device_index
        healthy = [
            i for i, d in enumerate(self.devices) if d.state == "healthy"
        ]
        if not healthy:
            # Every card is down: route to device 0, whose DeviceFailed
            # surfaces as an infrastructure failure the schedd retries.
            return 0
        if self.mode == "cosmic":
            # Most free declared memory first (sharing-friendly).
            frees = [
                (self.cosmics[i].free_declared_memory_mb, -i)
                for i in healthy
                if self.cosmics[i] is not None
            ]
            return -max(frees)[1]
        # Exclusive / unsafe: least-loaded device.
        return min(healthy, key=lambda i: (self._running[i], i))

    # -- execution regimes --------------------------------------------------------

    def _execute_exclusive(self, profile: JobProfile, index: int):
        lock = self._locks[index]
        with lock.request() as claim:
            yield claim
            self._running[index] += 1
            try:
                result = yield from self.runtimes[index].execute(profile)
            finally:
                self._running[index] -= 1
        return result

    def _execute_cosmic(self, profile: JobProfile, index: int):
        cosmic = self.cosmics[index]
        assert cosmic is not None
        declared = profile.declared_memory_mb
        admit = cosmic.admit_job(declared)
        tracer = _trace.ACTIVE
        admit_start = self.env.now
        span = None
        if tracer is not None:
            parent = tracer.get(("run", profile.job_id))
            span = tracer.begin(
                "admission",
                "cosmic",
                self.env.now,
                tid=parent.tid if parent is not None else 0,
                parent=parent,
                device=self.devices[index].name,
                declared_mb=declared,
            )
        try:
            yield admit
        except BaseException:
            # A fault interrupt landed while we queued for admission:
            # withdraw an ungranted reservation, or return a granted one
            # the interrupt beat us to (its grant already deducted the
            # memory pool).
            if span is not None:
                tracer.end(span, self.env.now, interrupted=True)
            if admit.triggered:
                cosmic.release_job(declared)
            else:
                admit.cancel()
            raise
        if span is not None:
            tracer.end(span, self.env.now)
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.histogram("cosmic.admission_wait_s").observe(
                self.env.now - admit_start
            )
        self._running[index] += 1
        try:
            result = yield from self.runtimes[index].execute(profile)
        finally:
            self._running[index] -= 1
            cosmic.release_job(declared)
        return result

    def _execute_unsafe(self, profile: JobProfile, index: int):
        self._running[index] += 1
        try:
            result = yield from self.runtimes[index].execute(profile)
        finally:
            self._running[index] -= 1
        return result

    def __repr__(self) -> str:
        return (
            f"<ComputeNode {self.name} mode={self.mode} "
            f"devices={self.num_devices} running={sum(self._running)}>"
        )
