"""Cluster assembly and end-to-end simulation of MC / MCC / MCCK."""

from .node import ComputeNode, MODES
from .validate import (
    ValidationReport,
    Violation,
    validate_devices,
    validate_exclusive,
    validate_fabric,
    validate_pool,
)
from .simulation import (
    CONFIGURATIONS,
    ClusterConfig,
    SimulationResult,
    needs_recovery,
    run_best_fit,
    run_configuration,
    run_mc,
    run_mcc,
    run_mcck,
)

__all__ = [
    "CONFIGURATIONS",
    "ClusterConfig",
    "ComputeNode",
    "MODES",
    "SimulationResult",
    "ValidationReport",
    "Violation",
    "needs_recovery",
    "run_best_fit",
    "run_configuration",
    "run_mc",
    "run_mcc",
    "run_mcck",
    "validate_devices",
    "validate_exclusive",
    "validate_fabric",
    "validate_pool",
]
