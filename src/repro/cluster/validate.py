"""Post-run invariant validation.

Walks the telemetry a finished simulation leaves behind and checks the
safety properties the whole design rests on (§II-C / §IV-D2):

* physical device memory was never oversubscribed under managed modes;
* hardware threads were never oversubscribed while COSMIC gated offloads;
* exclusive mode truly ran one job's offloads at a time;
* every submitted job reached a terminal state.

Used by tests, and exposed publicly so downstream experiments can assert
their own runs were safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..condor.pool import CondorPool
from ..phi.device import XeonPhi


@dataclass
class Violation:
    """One broken invariant."""

    kind: str
    where: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.where}: {self.detail}"


@dataclass
class ValidationReport:
    """All violations found (empty = the run was safe)."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, kind: str, where: str, detail: str) -> None:
        self.violations.append(Violation(kind, where, detail))

    def raise_if_failed(self) -> None:
        if not self.ok:
            summary = "\n".join(str(v) for v in self.violations)
            raise AssertionError(f"invariant violations:\n{summary}")

    def __str__(self) -> str:
        if self.ok:
            return "all invariants hold"
        return "\n".join(str(v) for v in self.violations)


def validate_devices(
    devices: Sequence[XeonPhi],
    expect_gated: bool = True,
    report: ValidationReport | None = None,
) -> ValidationReport:
    """Check device telemetry for memory / thread oversubscription."""
    report = report or ValidationReport()
    for device in devices:
        capacity = device.spec.usable_memory_mb
        peak_memory = max(device.telemetry.resident_memory_mb.values, default=0.0)
        if peak_memory > capacity + 1e-9:
            report.add(
                "memory-oversubscription",
                device.name,
                f"peak resident {peak_memory:.0f} MB > {capacity} MB",
            )
        if expect_gated:
            budget = device.spec.hardware_threads
            # busy_threads telemetry is clamped at the budget, so check
            # the offload log: gated devices never co-run offloads whose
            # demands sum past the budget.
            overlap = _max_overlapping_threads(device)
            if overlap > budget:
                report.add(
                    "thread-oversubscription",
                    device.name,
                    f"concurrent offload demand reached {overlap} threads",
                )
        if device.telemetry.oom_kills:
            report.add(
                "oom-kill",
                device.name,
                f"{device.telemetry.oom_kills} process(es) OOM-killed",
            )
    return report


def _max_overlapping_threads(device: XeonPhi) -> int:
    """Sweep the offload log for the peak concurrent thread demand."""
    events: list[tuple[float, int, int]] = []
    for record in device.offload_log:
        # Order ends before starts at equal times (half-open intervals).
        events.append((record.start, 1, record.threads))
        events.append((record.end, 0, -record.threads))
    events.sort()
    current = peak = 0
    for _time, _order, delta in events:
        current += delta
        peak = max(peak, current)
    return peak


def validate_exclusive(devices: Sequence[XeonPhi]) -> ValidationReport:
    """Exclusive mode: at most one job's offloads on a device at a time."""
    report = ValidationReport()
    for device in devices:
        events: list[tuple[float, int, object]] = []
        for record in device.offload_log:
            events.append((record.start, 1, record.owner))
            events.append((record.end, 0, record.owner))
        events.sort(key=lambda e: (e[0], e[1]))
        active: set = set()
        for _time, kind, owner in events:
            if kind == 1:
                active.add(owner)
                if len(active) > 1:
                    report.add(
                        "exclusivity",
                        device.name,
                        f"jobs {sorted(map(str, active))} overlapped",
                    )
            else:
                active.discard(owner)
    return report


def validate_fabric(
    pool: CondorPool, report: ValidationReport | None = None
) -> ValidationReport:
    """Fabric-mode ledgers: claims and leases must reconcile post-run.

    Every claim the schedd opened must be closed (completed, failed, or
    declared lost), every lease the startds granted must be closed
    (released, reported done, or expired), and the fabric's delivery
    accounting must be internally consistent. A no-op on fabric-free
    pools.
    """
    report = report or ValidationReport()
    if pool.fabric is None:
        return report
    if pool.claims is not None and pool.claims.open_claims():
        report.add(
            "claims",
            "schedd",
            f"{pool.claims.open_claims()} claim(s) still open after drain",
        )
    for name, agent in pool.agents.items():
        if agent.open_leases():
            report.add(
                "leases",
                name,
                f"{agent.open_leases()} lease(s) still open after drain",
            )
    stats = pool.fabric.stats
    if stats.delivered > stats.attempts:
        report.add(
            "fabric",
            "fabric",
            f"delivered {stats.delivered} > attempts {stats.attempts}",
        )
    return report


def validate_pool(pool: CondorPool, expect_gated: bool = True) -> ValidationReport:
    """Full-pool check: devices + queue accounting (+ fabric ledgers)."""
    report = ValidationReport()
    devices = [
        device for startd in pool.startds for device in startd.executor.devices
    ]
    validate_devices(devices, expect_gated=expect_gated, report=report)
    if pool.schedd.unfinished_jobs:
        report.add(
            "queue",
            "schedd",
            f"{pool.schedd.unfinished_jobs} job(s) never reached a terminal state",
        )
    for startd in pool.startds:
        if startd.free_slots != startd.slots:
            report.add(
                "slots",
                startd.name,
                f"{startd.slots - startd.free_slots} slot(s) still claimed",
            )
    validate_fabric(pool, report=report)
    return report
