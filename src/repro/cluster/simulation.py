"""End-to-end cluster simulations of the paper's three configurations.

This is the experiment driver: build a cluster, submit a job set under
one of the software stacks the evaluation compares (§V), run the
simulation to completion, and collect the metrics the paper reports.

* **MC** — MPSS + Condor: exclusive coprocessor allocation (baseline).
* **MCC** — + COSMIC: random cluster-level placement, safe node sharing.
* **MCCK** — + the knapsack cluster scheduler (the proposed system).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..condor import (
    COMPLETED,
    FAILED,
    CondorPool,
    ExclusivePlacement,
    PinnedPlacement,
    PlacementPolicy,
    RandomPlacement,
)
from ..core import DevicePacker, KnapsackClusterScheduler
from ..faults import FaultInjector, FaultProfile, FaultSchedule
from ..mpss import JobRunResult, SCIFModel
from ..net.profile import NetProfile
from ..phi import PAPER_SPEC, XeonPhiSpec
from ..sim import Environment
from ..workloads.profiles import JobProfile
from .node import ComputeNode

CONFIGURATIONS = ("MC", "MCC", "MCCK")


@dataclass(frozen=True)
class ClusterConfig:
    """Shape and timing of the simulated cluster.

    Defaults follow the paper's platform: 8 nodes, 1 Phi each (8 GB),
    2x8-core hosts (16 Condor slots).
    """

    nodes: int = 8
    devices_per_node: int = 1
    spec: XeonPhiSpec = PAPER_SPEC
    slots_per_node: int = 16
    cycle_interval: float = 5.0
    dispatch_latency: float = 1.0
    seed: int = 1234
    memory_tolerance: float = 0.0
    coi_base_mb: float = 0.0
    #: condor_reschedule fidelity knob: completions trigger an extra
    #: negotiation cycle instead of waiting for the periodic timer.
    reschedule_on_completion: bool = False

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError("nodes must be positive")
        if self.devices_per_node <= 0:
            raise ValueError("devices_per_node must be positive")

    def resized(self, nodes: int) -> "ClusterConfig":
        """The same configuration at a different cluster size."""
        from dataclasses import replace

        return replace(self, nodes=nodes)


@dataclass
class SimulationResult:
    """Everything the experiments read off one run."""

    configuration: str
    cluster_size: int
    job_count: int
    makespan: float
    per_device_utilization: list[float]
    job_results: list[JobRunResult]
    oom_kills: int
    memory_limit_kills: int
    negotiation_cycles: int
    packing_decisions: int = 0
    #: Jobs that exhausted their retries on infrastructure failures.
    infra_failed_jobs: int = 0
    #: Failed runs sent back through the backoff/requeue path.
    requeues: int = 0
    #: Jobs that completed after at least one failed attempt.
    retried_completed: int = 0
    #: Fault events actually applied by the injector (0 without faults).
    faults_injected: int = 0
    #: Fabric traffic (all zero when the run had no message fabric).
    net_messages: int = 0
    net_retransmits: int = 0
    net_duplicates_dropped: int = 0
    #: Startd-side lease expiries (jobs killed for lost renewals).
    lease_expiries: int = 0
    #: Schedd-side claims declared lost after the renewal drain.
    claims_lost: int = 0
    #: Claim activations the startds turned down.
    claims_rejected: int = 0
    #: Matches the schedd gave up on before the activation round-tripped.
    match_timeouts: int = 0
    #: Daemon crash–recovery ledger (all zero without daemon crashes).
    daemon_crashes: int = 0
    schedd_recoveries: int = 0
    wal_records: int = 0
    wal_replayed: int = 0
    jobs_readopted: int = 0

    @property
    def mean_core_utilization(self) -> float:
        """The paper's §III metric: average busy-core fraction."""
        if not self.per_device_utilization:
            return 0.0
        return sum(self.per_device_utilization) / len(self.per_device_utilization)

    @property
    def completed_jobs(self) -> int:
        return sum(1 for r in self.job_results if r.completed)

    @property
    def failed_jobs(self) -> int:
        return len(self.job_results) - self.completed_jobs


def needs_recovery(faults: Optional[FaultProfile]) -> bool:
    """Whether a fault profile requires the crash–recovery machinery.

    Only profiles that actually inject daemon crashes get a WAL and a
    supervisor; everything else keeps the exact pre-recovery pool so
    outputs stay byte-identical.
    """
    return faults is not None and faults.has_daemon_crashes


def _build(
    jobs: Sequence[JobProfile],
    config: ClusterConfig,
    mode: str,
    policy: PlacementPolicy,
    faults: Optional[FaultProfile] = None,
    net: Optional[NetProfile] = None,
    net_seed: int = 0,
) -> tuple[Environment, CondorPool, list[ComputeNode]]:
    env = Environment()
    nodes = [
        ComputeNode(
            env,
            name=f"node{i}",
            num_devices=config.devices_per_node,
            spec=config.spec,
            mode=mode,
            memory_tolerance=config.memory_tolerance,
            coi_base_mb=config.coi_base_mb,
        )
        for i in range(config.nodes)
    ]
    # Heartbeat staleness only matters under faults; a fault-free pool
    # keeps the collector's default (always-fresh) behaviour so outputs
    # stay byte-identical with the pre-fault subsystem. Under a message
    # fabric the profile's own heartbeat_timeout_s wins (machine-updates
    # over the network are the liveness signal).
    heartbeat_timeout = None
    if net is None and faults is not None and not faults.is_null:
        heartbeat_timeout = 3.0 * faults.heartbeat_interval_s
    pool = CondorPool(
        env,
        nodes,
        policy,
        slots_per_node=config.slots_per_node,
        cycle_interval=config.cycle_interval,
        dispatch_latency=config.dispatch_latency,
        reschedule_on_completion=config.reschedule_on_completion,
        heartbeat_timeout=heartbeat_timeout,
        net=net,
        net_seed=net_seed,
        recovery=needs_recovery(faults),
    )
    _validate_jobs(jobs, config)
    pool.submit(list(jobs))
    return env, pool, nodes


def _attach_faults(
    env: Environment,
    pool: CondorPool,
    nodes: list[ComputeNode],
    faults: Optional[FaultProfile],
    fault_seed: int,
    scheduler: Optional[KnapsackClusterScheduler] = None,
) -> Optional[FaultInjector]:
    """Wire a fault injector into a built cluster; None when fault-free.

    A null/absent profile attaches nothing at all — zero extra events —
    so fault-free runs are indistinguishable from runs predating the
    faults subsystem.
    """
    if faults is None or faults.is_null:
        return None
    schedule = FaultSchedule.generate(faults, fault_seed)
    injector = FaultInjector(env, schedule, pool, nodes)
    if scheduler is not None:
        injector.device_failed_listeners.append(scheduler.on_device_failed)
        injector.device_restored_listeners.append(scheduler.on_device_restored)
    injector.start()
    return injector


def _validate_jobs(jobs: Sequence[JobProfile], config: ClusterConfig) -> None:
    if not jobs:
        raise ValueError("empty job set")
    spec = config.spec
    for job in jobs:
        job.validate_fits(spec.usable_memory_mb, spec.hardware_threads)


def _collect(
    configuration: str,
    config: ClusterConfig,
    pool: CondorPool,
    nodes: list[ComputeNode],
    makespan: float,
    packing_decisions: int = 0,
    injector: Optional[FaultInjector] = None,
) -> SimulationResult:
    horizon = makespan if makespan > 0 else 1.0
    # Per-node accessors short-circuit for pristine (never-used) nodes,
    # so collecting from a mostly-idle big cluster stays cheap.
    utilizations = [
        utilization
        for node in nodes
        for utilization in node.device_utilizations(horizon)
    ]
    records = [
        record
        for record in pool.schedd.all_records()
        if record.result is not None
    ]
    results = [record.result for record in records]
    memory_limit_kills = sum(1 for r in results if r.status == "memory-limit")
    oom_kills = sum(node.oom_kills for node in nodes)
    retried_completed = sum(
        1 for record in records
        if record.status == COMPLETED and record.attempts > 0
    )
    infra_failed = sum(1 for record in records if record.status == FAILED)
    net_messages = net_retransmits = net_dup_dropped = 0
    lease_expiries = claims_lost = claims_rejected = match_timeouts = 0
    if pool.fabric is not None:
        stats = pool.fabric.stats
        net_messages = stats.messages_sent
        net_retransmits = stats.retransmits
        net_dup_dropped = stats.duplicates_dropped
        lease_expiries = pool.lease_expiries()
        claims_rejected = pool.claims_rejected()
        if pool.claims is not None:
            claims_lost = pool.claims.claims_lost
            match_timeouts = pool.claims.match_timeouts
    daemon_crashes = schedd_recoveries = wal_records = 0
    wal_replayed = jobs_readopted = 0
    if pool.supervisor is not None:
        daemon_crashes = pool.supervisor.crashes
        schedd_recoveries = pool.supervisor.recoveries
        wal_replayed = pool.supervisor.records_replayed
        jobs_readopted = pool.supervisor.jobs_readopted
    if pool.schedd.wal is not None:
        wal_records = pool.schedd.wal.appended
    return SimulationResult(
        configuration=configuration,
        cluster_size=config.nodes,
        job_count=len(results),
        makespan=makespan,
        per_device_utilization=utilizations,
        job_results=results,
        oom_kills=oom_kills,
        memory_limit_kills=memory_limit_kills,
        negotiation_cycles=pool.negotiator.cycles_run,
        packing_decisions=packing_decisions,
        infra_failed_jobs=infra_failed,
        requeues=pool.schedd.requeues,
        retried_completed=retried_completed,
        faults_injected=injector.applied if injector is not None else 0,
        net_messages=net_messages,
        net_retransmits=net_retransmits,
        net_duplicates_dropped=net_dup_dropped,
        lease_expiries=lease_expiries,
        claims_lost=claims_lost,
        claims_rejected=claims_rejected,
        match_timeouts=match_timeouts,
        daemon_crashes=daemon_crashes,
        schedd_recoveries=schedd_recoveries,
        wal_records=wal_records,
        wal_replayed=wal_replayed,
        jobs_readopted=jobs_readopted,
    )


def run_mc(
    jobs: Sequence[JobProfile],
    config: ClusterConfig = ClusterConfig(),
    faults: Optional[FaultProfile] = None,
    fault_seed: int = 0,
    net: Optional[NetProfile] = None,
    net_seed: int = 0,
) -> SimulationResult:
    """Baseline: exclusive coprocessor allocation (MPSS + Condor)."""
    env, pool, nodes = _build(
        jobs, config, mode="exclusive", policy=ExclusivePlacement(),
        faults=faults, net=net, net_seed=net_seed,
    )
    injector = _attach_faults(env, pool, nodes, faults, fault_seed)
    makespan = pool.run_to_completion()
    return _collect("MC", config, pool, nodes, makespan, injector=injector)


def run_mcc(
    jobs: Sequence[JobProfile],
    config: ClusterConfig = ClusterConfig(),
    memory_aware: bool = False,
    faults: Optional[FaultProfile] = None,
    fault_seed: int = 0,
    net: Optional[NetProfile] = None,
    net_seed: int = 0,
) -> SimulationResult:
    """MPSS + Condor + COSMIC: random placement, safe node-level sharing.

    With the default ``memory_aware=False``, placement is the paper's
    "packed arbitrarily": any node with a free host slot; COSMIC queues
    jobs at the node until their declaration fits the card.
    """
    rng = random.Random(config.seed)
    env, pool, nodes = _build(
        jobs, config, mode="cosmic",
        policy=RandomPlacement(rng, memory_aware=memory_aware),
        faults=faults, net=net, net_seed=net_seed,
    )
    injector = _attach_faults(env, pool, nodes, faults, fault_seed)
    makespan = pool.run_to_completion()
    return _collect("MCC", config, pool, nodes, makespan, injector=injector)


def run_best_fit(
    jobs: Sequence[JobProfile],
    config: ClusterConfig = ClusterConfig(),
    faults: Optional[FaultProfile] = None,
    fault_seed: int = 0,
    net: Optional[NetProfile] = None,
    net_seed: int = 0,
) -> SimulationResult:
    """Extra baseline (not in the paper): best-fit placement over COSMIC.

    Sits between MCC (random) and MCCK (knapsack): memory-aware greedy
    placement with no look-ahead over the pending set. Used by the
    placement-policy ablation.
    """
    from ..condor.negotiator import BestFitPlacement

    env, pool, nodes = _build(
        jobs, config, mode="cosmic", policy=BestFitPlacement(), faults=faults,
        net=net, net_seed=net_seed,
    )
    injector = _attach_faults(env, pool, nodes, faults, fault_seed)
    makespan = pool.run_to_completion()
    return _collect("BESTFIT", config, pool, nodes, makespan, injector=injector)


def run_mcck(
    jobs: Sequence[JobProfile],
    config: ClusterConfig = ClusterConfig(),
    packer: Optional[DevicePacker] = None,
    respect_host_slots: bool = True,
    faults: Optional[FaultProfile] = None,
    fault_seed: int = 0,
    net: Optional[NetProfile] = None,
    net_seed: int = 0,
) -> SimulationResult:
    """The proposed system: knapsack cluster scheduler over COSMIC."""
    env, pool, nodes = _build(
        jobs, config, mode="cosmic", policy=PinnedPlacement(), faults=faults,
        net=net, net_seed=net_seed,
    )
    if packer is None:
        # The paper's packing rule: a set whose declared threads exceed
        # the hardware budget has zero knapsack value (hard cap).
        packer = DevicePacker(thread_capacity=config.spec.hardware_threads)
    scheduler = KnapsackClusterScheduler(
        pool, packer=packer, respect_host_slots=respect_host_slots
    )
    scheduler.attach()
    injector = _attach_faults(
        env, pool, nodes, faults, fault_seed, scheduler=scheduler
    )
    makespan = pool.run_to_completion()
    return _collect(
        "MCCK", config, pool, nodes, makespan,
        packing_decisions=len(scheduler.decisions),
        injector=injector,
    )


def run_configuration(
    configuration: str,
    jobs: Sequence[JobProfile],
    config: ClusterConfig = ClusterConfig(),
    faults: Optional[FaultProfile] = None,
    fault_seed: int = 0,
    net: Optional[NetProfile] = None,
    net_seed: int = 0,
    **kwargs,
) -> SimulationResult:
    """Dispatch by configuration name ("MC" / "MCC" / "MCCK")."""
    if configuration == "MC":
        return run_mc(
            jobs, config, faults=faults, fault_seed=fault_seed,
            net=net, net_seed=net_seed,
        )
    if configuration == "MCC":
        return run_mcc(
            jobs, config, faults=faults, fault_seed=fault_seed,
            net=net, net_seed=net_seed,
        )
    if configuration == "MCCK":
        return run_mcck(
            jobs, config, faults=faults, fault_seed=fault_seed,
            net=net, net_seed=net_seed, **kwargs,
        )
    raise ValueError(
        f"unknown configuration {configuration!r}; choose from {CONFIGURATIONS}"
    )
