"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic generator-based process model: a process is
a Python generator that yields :class:`Event` objects; the environment
resumes the generator when the yielded event is *processed*.

Events go through three states:

* **untriggered** — created, not yet scheduled;
* **triggered** — given a value (or an exception) and placed on the event
  queue;
* **processed** — popped from the queue; all callbacks have run.

All ordering is deterministic: events scheduled at the same simulated time
are processed in (priority, insertion-order) order.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .core import Environment
    from .process import Process

#: Event priority for urgent events (interrupts, resource bookkeeping).
URGENT = 0
#: Default event priority.
NORMAL = 1

#: Sentinel for "no value has been set on this event yet".
PENDING = object()


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt ``cause`` (an arbitrary object supplied by the
    interrupter) is available as :attr:`cause`.
    """

    @property
    def cause(self) -> Any:
        """The reason passed to :meth:`Process.interrupt`."""
        return self.args[0]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class StopSimulation(Exception):
    """Internal signal used by ``Environment.run(until=event)``."""

    @classmethod
    def callback(cls, event: "Event") -> None:
        """Event callback that stops the simulation with the event value."""
        if event._ok:
            raise cls(event._value)
        raise event._value  # type: ignore[misc]


class Event:
    """A single occurrence that processes may wait for.

    Parameters
    ----------
    env:
        The environment the event lives in.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks run when the event is processed. ``None`` after
        #: processing (appending then is an error).
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) queued."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError(f"{self!r} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, when it failed)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not yet been triggered")
        return self._value

    @property
    def defused(self) -> bool:
        """True when a failure has been handled by some waiter."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    # -- composition -----------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} ({state}) at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Timeouts are the kernel's dominant event, so Event.__init__ and
        # Environment.schedule are inlined here: the callback list comes
        # from the environment's recycle pool (the run loop returns
        # emptied lists) and the heap entry is pushed directly. Must stay
        # exactly equivalent to schedule(self, NORMAL, delay).
        self.env = env
        pool = env._cb_pool
        self.callbacks = pool.pop() if pool else []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        eid = env._eid + 1
        env._eid = eid
        heappush(env._queue, (env._now + delay, NORMAL, eid, self))
        if env._profiler is not None:
            env._profiler.count_scheduled("Timeout")

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r} at {id(self):#x}>"


class ConditionValue:
    """Ordered mapping of events to values for triggered conditions."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def todict(self) -> dict[Event, Any]:
        """Return a plain dict of event -> value."""
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a boolean combination of other events (``&`` / ``|``)."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        # Check for already-processed events first (their callbacks are gone).
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        # Immediately trigger the condition when it has no sub-events.
        if self._evaluate(self._events, self._count) and self._value is PENDING:
            self.succeed(ConditionValue())

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None:
                # Processed (not merely triggered): Timeouts are born
                # triggered, but only count once they have actually fired.
                value.events.append(event)

    def _build_value(self) -> ConditionValue:
        value = ConditionValue()
        self._populate_value(value)
        return value

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._build_value())

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """True when *all* sub-events have triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """True when *any* sub-event has triggered (or there are none)."""
        return count > 0 or not events


class AllOf(Condition):
    """Condition that triggers once every event in ``events`` has."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers as soon as one event in ``events`` has."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)


class Initialize(Event):
    """Kick-starts a new :class:`Process` (internal)."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        assert self.callbacks is not None
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Interruption(Event):
    """Immediately throws an :class:`Interrupt` into a process (internal)."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if process is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        assert self.callbacks is not None
        self.callbacks.append(self._interrupt)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: Event) -> None:
        process = self.process
        if process.triggered:
            return  # Process terminated before the interrupt fired.
        # Detach the process from whatever it was waiting for, then resume
        # it with the Interrupt exception.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        process._resume(self)
