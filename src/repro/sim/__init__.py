"""A small deterministic discrete-event simulation kernel.

This package is the substrate on which every other simulated component
(Xeon Phi devices, the MPSS offload runtime, COSMIC, the Condor pool) runs.
It follows the familiar generator-based process model::

    from repro.sim import Environment

    def clock(env, period):
        while True:
            yield env.timeout(period)
            print("tick", env.now)

    env = Environment()
    env.process(clock(env, 1.0))
    env.run(until=3.5)
"""

from . import profile
from .core import EmptySchedule, Environment
from .events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)
from .process import Process
from .resources import (
    Container,
    ContainerGet,
    ContainerPut,
    PriorityResource,
    Request,
    Resource,
    Store,
    StoreGet,
    StorePut,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "ContainerGet",
    "ContainerPut",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "PriorityResource",
    "Request",
    "profile",
    "Resource",
    "SimulationError",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
]
