"""Shared-resource primitives: Resource, PriorityResource, Container, Store.

These follow the classic request/release event protocol: ``request()``
(or ``put``/``get``) returns an event that triggers once the operation has
been granted; the requesting process simply yields it.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Optional

from .events import Event, NORMAL, URGENT

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment
    from .process import Process


class _BaseRequest(Event):
    """Common machinery for queued resource operations."""

    __slots__ = ("resource", "proc")

    def __init__(self, resource: "_BaseResource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.proc: Optional["Process"] = resource.env.active_process

    def cancel(self) -> None:
        """Withdraw an ungranted request from the wait queue."""
        if not self.triggered:
            self.resource._remove_waiter(self)

    def __enter__(self) -> "_BaseRequest":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        raise NotImplementedError


class _BaseResource:
    """Shared plumbing: a wait queue drained whenever capacity frees up."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._waiters: list[tuple[Any, int, _BaseRequest]] = []
        self._wseq = 0

    def _push_waiter(self, key: Any, request: _BaseRequest) -> None:
        self._wseq += 1
        heapq.heappush(self._waiters, (key, self._wseq, request))

    def _remove_waiter(self, request: _BaseRequest) -> None:
        for i, (_, _, req) in enumerate(self._waiters):
            if req is request:
                del self._waiters[i]
                heapq.heapify(self._waiters)
                return

    def _try_grant(self, request: _BaseRequest) -> bool:
        raise NotImplementedError

    def _drain(self) -> None:
        """Grant as many queued requests as current capacity allows."""
        while self._waiters:
            _, _, request = self._waiters[0]
            if not self._try_grant(request):
                break
            heapq.heappop(self._waiters)


class Request(_BaseRequest):
    """A pending or granted claim on one unit of a :class:`Resource`."""

    __slots__ = ()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self.triggered:
            self.resource.release(self)
        else:
            self.cancel()


class Resource(_BaseResource):
    """A resource with ``capacity`` identical units, granted FIFO.

    Usage::

        with resource.request() as req:
            yield req
            ... critical section ...
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        super().__init__(env)
        self.capacity = capacity
        self.users: list[Request] = []

    @property
    def count(self) -> int:
        """Number of units currently claimed."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of ungranted requests waiting."""
        return len(self._waiters)

    def request(self, priority: int = 0) -> Request:
        """Claim one unit; the returned event triggers when granted."""
        req = Request(self)
        if len(self.users) < self.capacity and not self._waiters:
            self.users.append(req)
            req.succeed(priority=URGENT)
        else:
            self._push_waiter((priority,), req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted unit."""
        try:
            self.users.remove(request)
        except ValueError:
            return  # Releasing an ungranted/foreign request is a no-op.
        self._drain()

    def _try_grant(self, request: _BaseRequest) -> bool:
        if len(self.users) >= self.capacity:
            return False
        assert isinstance(request, Request)
        self.users.append(request)
        request.succeed(priority=URGENT)
        return True


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are served by (priority, FIFO)."""

    def request(self, priority: int = 0) -> Request:
        req = Request(self)
        if len(self.users) < self.capacity and not self._waiters:
            self.users.append(req)
            req.succeed(priority=URGENT)
        else:
            self._push_waiter((priority,), req)
        return req


class ContainerPut(_BaseRequest):
    """Pending deposit of ``amount`` into a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        self.amount = amount
        super().__init__(container)

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if not self.triggered:
            self.cancel()


class ContainerGet(_BaseRequest):
    """Pending withdrawal of ``amount`` from a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        self.amount = amount
        super().__init__(container)

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if not self.triggered:
            self.cancel()


class Container(_BaseResource):
    """A homogeneous bulk resource (e.g. megabytes of device memory).

    ``put(x)`` blocks while the container would exceed ``capacity``;
    ``get(x)`` blocks while fewer than ``x`` units are available.
    """

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie in [0, capacity]")
        super().__init__(env)
        self.capacity = capacity
        self._level = float(init)
        # Separate queues: puts and gets do not compete with each other.
        self._put_waiters: list[tuple[int, ContainerPut]] = []
        self._get_waiters: list[tuple[int, ContainerGet]] = []

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Deposit ``amount``; triggers once it fits."""
        event = ContainerPut(self, amount)
        if not self._put_waiters and self._level + amount <= self.capacity:
            self._level += amount
            event.succeed(priority=URGENT)
            self._drain_gets()
        else:
            self._wseq += 1
            heapq.heappush(self._put_waiters, (self._wseq, event))  # type: ignore[misc]
        return event

    def get(self, amount: float) -> ContainerGet:
        """Withdraw ``amount``; triggers once available."""
        event = ContainerGet(self, amount)
        if not self._get_waiters and self._level >= amount:
            self._level -= amount
            event.succeed(priority=URGENT)
            self._drain_puts()
        else:
            self._wseq += 1
            heapq.heappush(self._get_waiters, (self._wseq, event))  # type: ignore[misc]
        return event

    def _remove_waiter(self, request: _BaseRequest) -> None:
        for queue in (self._put_waiters, self._get_waiters):
            for i, (_, req) in enumerate(queue):
                if req is request:
                    del queue[i]
                    heapq.heapify(queue)
                    return

    def _drain_puts(self) -> None:
        while self._put_waiters:
            _, event = self._put_waiters[0]
            if self._level + event.amount > self.capacity:
                break
            heapq.heappop(self._put_waiters)
            self._level += event.amount
            event.succeed(priority=URGENT)

    def _drain_gets(self) -> None:
        while self._get_waiters:
            _, event = self._get_waiters[0]
            if self._level < event.amount:
                break
            heapq.heappop(self._get_waiters)
            self._level -= event.amount
            event.succeed(priority=URGENT)


class StorePut(_BaseRequest):
    """Pending insertion of ``item`` into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        self.item = item
        super().__init__(store)

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if not self.triggered:
            self.cancel()


class StoreGet(_BaseRequest):
    """Pending retrieval of an item from a :class:`Store`."""

    __slots__ = ("filter",)

    def __init__(
        self, store: "Store", filter: Callable[[Any], bool] = lambda item: True
    ) -> None:
        self.filter = filter
        super().__init__(store)

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if not self.triggered:
            self.cancel()


class Store(_BaseResource):
    """A FIFO store of arbitrary items with optional capacity.

    ``get`` accepts a filter predicate, making this double as simpy's
    FilterStore; unfiltered gets are plain FIFO.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        super().__init__(env)
        self.capacity = capacity
        self.items: list[Any] = []
        self._put_waiters: list[tuple[int, StorePut]] = []
        self._get_waiters: list[tuple[int, StoreGet]] = []

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; triggers once there is room."""
        event = StorePut(self, item)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed(priority=URGENT)
            self._drain_gets()
        else:
            self._wseq += 1
            heapq.heappush(self._put_waiters, (self._wseq, event))  # type: ignore[misc]
        return event

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> StoreGet:
        """Retrieve the first item matching ``filter``; may block."""
        event = StoreGet(self, filter)
        self._wseq += 1
        heapq.heappush(self._get_waiters, (self._wseq, event))  # type: ignore[misc]
        self._drain_gets()
        return event

    def _remove_waiter(self, request: _BaseRequest) -> None:
        for queue in (self._put_waiters, self._get_waiters):
            for i, (_, req) in enumerate(queue):
                if req is request:
                    del queue[i]
                    heapq.heapify(queue)
                    return

    def _drain_gets(self) -> None:
        # Serve waiting getters in FIFO order; a getter whose filter matches
        # nothing stays queued without blocking later getters.
        waiters = self._get_waiters
        items = self.items
        while True:
            # Fast path: serve the earliest waiter straight off the heap.
            # The common unfiltered-FIFO case never leaves this loop, so
            # it skips the sorted() walk and linear remove + re-heapify.
            while waiters and items:
                _, event = waiters[0]
                idx = -1
                for i, item in enumerate(items):
                    if event.filter(item):
                        idx = i
                        break
                if idx < 0:
                    break
                item = items[idx]
                del items[idx]
                heapq.heappop(waiters)
                event.succeed(item, priority=URGENT)
                self._drain_puts()
            # Slow path: the head waiter matches nothing, but a later
            # waiter may still be servable without unblocking the head.
            made_progress = False
            for entry in sorted(waiters):
                _, event = entry
                for i, item in enumerate(items):
                    if event.filter(item):
                        del items[i]
                        waiters.remove(entry)
                        heapq.heapify(waiters)
                        event.succeed(item, priority=URGENT)
                        self._drain_puts()
                        made_progress = True
                        break
                if made_progress:
                    break
            if not made_progress:
                return

    def _drain_puts(self) -> None:
        while self._put_waiters and len(self.items) < self.capacity:
            _, event = heapq.heappop(self._put_waiters)
            self.items.append(event.item)
            event.succeed(priority=URGENT)
