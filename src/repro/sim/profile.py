"""Built-in kernel profiler: per-subsystem counters + wall breakdown.

The profiler is deliberately pull-based and allocation-free on the hot
path: the kernel keeps a reference to the active profiler (picked up
from :data:`ACTIVE` when an :class:`~repro.sim.core.Environment` is
constructed) and bumps plain dict counters only when one is installed.
A run without a profiler pays a single ``is not None`` check per event.

Usage::

    from repro.sim import profile

    prof = profile.activate()      # future Environments are instrumented
    try:
        ... build env, run simulation ...
    finally:
        profile.deactivate()
    print(prof.render())

The CLI exposes this as ``--profile`` (see ``repro.experiments``), which
forces in-process sequential execution so the counters cover the run.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

#: The profiler new environments attach to (``None`` = profiling off).
ACTIVE: Optional["SimProfiler"] = None


class SimProfiler:
    """Counters for one (or more) instrumented simulation runs.

    Attributes
    ----------
    events_scheduled / events_fired:
        Per event-kind counts (``Timeout``, ``Process``, ``Request``, …).
        *Scheduled* counts heap pushes; *fired* counts processed events.
    wall_by_kind:
        Wall-clock seconds spent running the callbacks of each event
        kind — the closest thing to "time per subsystem" the kernel can
        observe without tracing.
    process_switches:
        Generator resumptions (``Process._resume`` invocations).
    heap_peak:
        Largest event-queue length observed before a pop.
    telemetry_records:
        ``StepSeries.record`` calls across all series.
    negotiation_cycles / match_probes / pin_routed / full_scans:
        Matchmaking: cycles run, machines probed with symmetric ClassAd
        matchmaking, and how examined jobs were routed — through the
        collector's O(1) name index versus a scan of every machine.
    compile_hits / compile_misses / compile_evictions:
        ClassAd closure-compiler cache traffic (see
        :mod:`repro.condor.compile`); evictions count LRU drops across
        the closure and plan caches.
    repack_passes / devices_repacked:
        Knapsack scheduler: completion-triggered repack passes run, and
        dirty devices repacked across them.
    solver_calls / packing_cache_hits:
        Knapsack solves actually run versus packings served from the
        packer's (capacity, candidate-set) cache.
    index_jobs_examined / index_jobs_skipped / index_buckets_peak:
        Pending-index bucket traffic: jobs streamed from fitting weight
        buckets, jobs in heavier buckets never touched, and the largest
        bucket count observed.
    """

    __slots__ = (
        "events_scheduled",
        "events_fired",
        "wall_by_kind",
        "process_switches",
        "heap_peak",
        "telemetry_records",
        "negotiation_cycles",
        "match_probes",
        "pin_routed",
        "full_scans",
        "compile_hits",
        "compile_misses",
        "compile_evictions",
        "repack_passes",
        "devices_repacked",
        "solver_calls",
        "packing_cache_hits",
        "index_jobs_examined",
        "index_jobs_skipped",
        "index_buckets_peak",
        "_started",
        "wall_total",
    )

    def __init__(self) -> None:
        self.events_scheduled: dict[str, int] = {}
        self.events_fired: dict[str, int] = {}
        self.wall_by_kind: dict[str, float] = {}
        self.process_switches = 0
        self.heap_peak = 0
        self.telemetry_records = 0
        self.negotiation_cycles = 0
        self.match_probes = 0
        self.pin_routed = 0
        self.full_scans = 0
        self.compile_hits = 0
        self.compile_misses = 0
        self.compile_evictions = 0
        self.repack_passes = 0
        self.devices_repacked = 0
        self.solver_calls = 0
        self.packing_cache_hits = 0
        self.index_jobs_examined = 0
        self.index_jobs_skipped = 0
        self.index_buckets_peak = 0
        self._started: Optional[float] = None
        self.wall_total = 0.0

    # -- hot-path hooks (called by the kernel) ----------------------------

    def count_scheduled(self, kind: str) -> None:
        counts = self.events_scheduled
        counts[kind] = counts.get(kind, 0) + 1

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Open a wall-clock window (nested calls keep the first start)."""
        if self._started is None:
            self._started = perf_counter()

    def stop(self) -> None:
        """Close the wall-clock window, accumulating into ``wall_total``."""
        if self._started is not None:
            self.wall_total += perf_counter() - self._started
            self._started = None

    # -- derived ----------------------------------------------------------

    @property
    def total_fired(self) -> int:
        return sum(self.events_fired.values())

    @property
    def total_scheduled(self) -> int:
        return sum(self.events_scheduled.values())

    def events_per_second(self) -> float:
        """Fired events per wall second (0 when no window was recorded)."""
        if self.wall_total <= 0:
            return 0.0
        return self.total_fired / self.wall_total

    def render(self) -> str:
        """Format the breakdown table shown after a ``--profile`` run."""
        kinds = sorted(
            set(self.events_scheduled) | set(self.events_fired),
            key=lambda k: -self.wall_by_kind.get(k, 0.0),
        )
        callback_wall = sum(self.wall_by_kind.values())
        lines = [
            "sim profiler "
            + "-" * 47,
            f"{'event kind':<16}{'scheduled':>12}{'fired':>12}"
            f"{'wall s':>10}{'wall %':>8}",
        ]
        for kind in kinds:
            wall = self.wall_by_kind.get(kind, 0.0)
            share = 100.0 * wall / callback_wall if callback_wall > 0 else 0.0
            lines.append(
                f"{kind:<16}{self.events_scheduled.get(kind, 0):>12,}"
                f"{self.events_fired.get(kind, 0):>12,}"
                f"{wall:>10.3f}{share:>7.1f}%"
            )
        lines.append(
            f"{'total':<16}{self.total_scheduled:>12,}"
            f"{self.total_fired:>12,}{callback_wall:>10.3f}{100.0:>7.1f}%"
        )
        lines.append(f"{'process switches':<24}{self.process_switches:>16,}")
        lines.append(f"{'heap peak':<24}{self.heap_peak:>16,}")
        lines.append(f"{'telemetry records':<24}{self.telemetry_records:>16,}")
        if self.wall_total > 0:
            lines.append(
                f"{'wall clock':<24}{self.wall_total:>15.3f}s"
            )
            lines.append(
                f"{'events/sec':<24}{self.events_per_second():>16,.0f}"
            )
        if self.negotiation_cycles or self.compile_misses:
            per_cycle = (
                self.match_probes / self.negotiation_cycles
                if self.negotiation_cycles
                else 0.0
            )
            lines.append("matchmaking " + "-" * 46)
            lines.append(
                f"{'negotiation cycles':<24}{self.negotiation_cycles:>16,}"
            )
            lines.append(
                f"{'classad evals':<24}{self.match_probes:>16,}"
            )
            lines.append(
                f"{'evals/cycle':<24}{per_cycle:>16,.1f}"
            )
            lines.append(
                f"{'pinned-route matches':<24}{self.pin_routed:>16,}"
            )
            lines.append(
                f"{'full-scan matches':<24}{self.full_scans:>16,}"
            )
            lines.append(
                f"{'compile cache hits':<24}{self.compile_hits:>16,}"
            )
            lines.append(
                f"{'compile cache misses':<24}{self.compile_misses:>16,}"
            )
            lines.append(
                f"{'compile cache evictions':<24}{self.compile_evictions:>16,}"
            )
        if self.repack_passes or self.solver_calls or self.packing_cache_hits:
            examined = self.index_jobs_examined
            skipped = self.index_jobs_skipped
            total = examined + skipped
            skip_share = 100.0 * skipped / total if total else 0.0
            lines.append("scheduler " + "-" * 48)
            lines.append(
                f"{'repack passes':<24}{self.repack_passes:>16,}"
            )
            lines.append(
                f"{'devices repacked':<24}{self.devices_repacked:>16,}"
            )
            lines.append(
                f"{'knapsack solver calls':<24}{self.solver_calls:>16,}"
            )
            lines.append(
                f"{'packing cache hits':<24}{self.packing_cache_hits:>16,}"
            )
            lines.append(
                f"{'index jobs examined':<24}{examined:>16,}"
            )
            lines.append(
                f"{'index jobs skipped':<24}{skipped:>16,}"
                f"  ({skip_share:.1f}%)"
            )
            lines.append(
                f"{'index buckets peak':<24}{self.index_buckets_peak:>16,}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<SimProfiler fired={self.total_fired} "
            f"switches={self.process_switches} heap_peak={self.heap_peak}>"
        )


def activate() -> SimProfiler:
    """Install a fresh profiler; environments built afterwards attach."""
    global ACTIVE
    ACTIVE = SimProfiler()
    return ACTIVE


def deactivate() -> Optional[SimProfiler]:
    """Uninstall the active profiler and return it (``None`` if none)."""
    global ACTIVE
    prof, ACTIVE = ACTIVE, None
    return prof
