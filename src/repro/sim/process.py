"""Process objects: generators driven by the simulation environment."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import Event, Initialize, Interruption, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """Wraps a generator and steps it through the events it yields.

    A ``Process`` is itself an :class:`Event` that triggers when the
    generator terminates: it succeeds with the generator's return value,
    or fails with the exception that escaped the generator.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits for (None when not
        #: started, terminated, or about to be resumed).
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process as soon as possible."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_proc = self
        if env._profiler is not None:
            env._profiler.process_switches += 1
        # Events reaching _resume are always triggered, so the raw slots
        # are read directly (the ok/value properties re-check that).
        generator = self._generator

        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # The waited-for event failed: re-raise inside the
                    # generator so it may handle (and thereby defuse) it.
                    event._defused = True
                    exc = event._value
                    assert isinstance(exc, BaseException)
                    next_event = generator.throw(exc)
            except StopIteration as stop:
                self._target = None
                env._active_proc = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self._target = None
                env._active_proc = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                self._target = None
                env._active_proc = None
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded a non-event: "
                        f"{next_event!r}"
                    )
                )
                return

            callbacks = next_event.callbacks
            if callbacks is None:
                # The event already happened; loop and resume immediately.
                event = next_event
                continue

            self._target = next_event
            callbacks.append(self._resume)
            break

        env._active_proc = None

    def __repr__(self) -> str:
        state = "terminated" if self.triggered else "alive"
        return f"<Process {self.name!r} ({state}) at {id(self):#x}>"
