"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Optional, Union

from . import profile as _profile
from .events import (
    NORMAL,
    PENDING,
    AllOf,
    AnyOf,
    Event,
    SimulationError,
    StopSimulation,
    Timeout,
)
from .process import Process, ProcessGenerator

#: Upper bound on the recycled callback-list pool (see ``_cb_pool``).
_POOL_LIMIT = 256


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A discrete-event simulation environment.

    Events scheduled for the same time are processed in (priority,
    insertion-order) order, which makes every simulation fully
    deterministic for a given seed.

    Parameters
    ----------
    initial_time:
        Simulated time at which the clock starts (default ``0.0``).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_proc: Optional[Process] = None
        # Recycled (emptied) callback lists: the timeout→resume pattern
        # allocates one single-element list per event, which dominated
        # kernel allocation; the run loop returns lists here and
        # ``Timeout.__init__`` reuses them.
        self._cb_pool: list[list] = []
        # Instrumentation is opt-in per environment, captured at
        # construction from the module-global active profiler so
        # experiment code needs no plumbing.
        self._profiler = _profile.ACTIVE

    # -- introspection ---------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    @property
    def profiler(self) -> Optional[_profile.SimProfiler]:
        """The profiler this environment reports to (usually ``None``)."""
        return self._profiler

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: Optional[str] = None
    ) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Event that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling and stepping ------------------------------------------

    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Queue ``event`` to be processed after ``delay``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._eid += 1
        heappush(self._queue, (self._now + delay, priority, self._eid, event))
        if self._profiler is not None:
            self._profiler.count_scheduled(type(event).__name__)

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            When the event queue is empty.
        """
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure: surface it to the caller of run().
            exc = event._value
            assert isinstance(exc, BaseException)
            raise exc

        del callbacks[:]
        if len(self._cb_pool) < _POOL_LIMIT:
            self._cb_pool.append(callbacks)

    def _loop(self) -> None:
        """The hot run loop: :meth:`step` inlined with hoisted lookups.

        Semantically identical to ``while True: self.step()`` — the
        inlining only removes per-event method-call and attribute-lookup
        overhead (the queue/pool bindings are loop-invariant).
        """
        queue = self._queue
        pool = self._cb_pool
        pop = heappop
        while True:
            try:
                item = pop(queue)
            except IndexError:
                raise EmptySchedule() from None
            self._now = item[0]
            event = item[3]

            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)

            if not event._ok and not event._defused:
                exc = event._value
                assert isinstance(exc, BaseException)
                raise exc

            del callbacks[:]
            if len(pool) < _POOL_LIMIT:
                pool.append(callbacks)

    def _loop_profiled(self) -> None:
        """:meth:`_loop` with per-kind counters and wall attribution."""
        prof = self._profiler
        assert prof is not None
        queue = self._queue
        pool = self._cb_pool
        pop = heappop
        timer = perf_counter
        fired = prof.events_fired
        wall = prof.wall_by_kind
        while True:
            qlen = len(queue)
            if qlen > prof.heap_peak:
                prof.heap_peak = qlen
            try:
                item = pop(queue)
            except IndexError:
                raise EmptySchedule() from None
            self._now = item[0]
            event = item[3]
            kind = type(event).__name__
            fired[kind] = fired.get(kind, 0) + 1

            callbacks = event.callbacks
            event.callbacks = None
            begin = timer()
            try:
                for callback in callbacks:
                    callback(event)
            finally:
                wall[kind] = wall.get(kind, 0.0) + (timer() - begin)

            if not event._ok and not event._defused:
                exc = event._value
                assert isinstance(exc, BaseException)
                raise exc

            del callbacks[:]
            if len(pool) < _POOL_LIMIT:
                pool.append(callbacks)

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain; a number — run until
            the clock reaches that time; an :class:`Event` — run until the
            event triggers (its value is returned).
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at < self._now:
                raise ValueError(f"until={at} must not lie in the past (now={self._now})")
            if at == self._now:
                # Target time already reached (simpy semantics): no-op.
                return None
            until = Event(self)
            until._ok = True
            until._value = None
            self.schedule(until, priority=NORMAL, delay=at - self._now)

        if isinstance(until, Event):
            if until.callbacks is None:
                # Already processed: nothing to run.
                return until._value
            until.callbacks.append(StopSimulation.callback)

        prof = self._profiler
        if prof is not None:
            prof.start()
        try:
            if prof is not None:
                self._loop_profiled()
            else:
                self._loop()
        except StopSimulation as stop:
            return stop.args[0]
        except EmptySchedule:
            if isinstance(until, Event) and until._value is PENDING:
                raise SimulationError(
                    "no more events: the 'until' event was never triggered"
                ) from None
        finally:
            if prof is not None:
                prof.stop()
        return None

    def __repr__(self) -> str:
        return f"<Environment t={self._now} queued={len(self._queue)}>"
