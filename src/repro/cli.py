"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments table2          # one artifact
    python -m repro.experiments all             # everything
    python -m repro.experiments table2 --jobs 200
    repro-experiments fig8                      # installed script

Job counts default to quick sizes; pass ``--full`` for the paper-scale
runs recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from .experiments import EXPERIMENTS

#: Paper-scale job counts per experiment (used with --full).
_FULL_JOBS = {
    "motivation": 1000,
    "table2": 1000,
    "table3": 400,
    "fig7": 400,
    "fig8": 400,
    "fig9": 400,
    "fig10": None,  # scales with cluster size by construction
    "ablation-value": 400,
    "ablation-knapsack": 400,
    "ablation-cycle": 400,
    "ablation-placement": 400,
    "ext-capacity": 400,
    "ext-multidevice": 400,
    "ext-oversubscription": None,
    "ext-replication": 400,
}

#: Quick job counts (default).
_QUICK_JOBS = {
    "motivation": 250,
    "table2": 250,
    "table3": 120,
    "fig7": 400,  # input-only, cheap
    "fig8": 120,
    "fig9": 120,
    "fig10": None,
    "ablation-value": 120,
    "ablation-knapsack": 120,
    "ablation-cycle": 120,
    "ablation-placement": 120,
    "ext-capacity": 120,
    "ext-multidevice": 120,
    "ext-oversubscription": None,
    "ext-replication": 60,
}


def _run_one(name: str, jobs: Optional[int], seed: int) -> str:
    module = EXPERIMENTS[name]
    kwargs = {}
    if jobs is not None:
        if name == "fig10":
            kwargs["jobs_per_node"] = max(1, jobs // 8)
        elif name == "motivation":
            kwargs["real_jobs"] = jobs
            kwargs["synthetic_jobs"] = max(8, int(jobs * 0.4))
        else:
            kwargs["jobs"] = jobs
    kwargs["seed"] = seed
    result = module.run(**kwargs)
    return module.render(result)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the simulator.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS.keys(), "all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="override the job count"
    )
    parser.add_argument(
        "--full", action="store_true", help="paper-scale job counts (slower)"
    )
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    table = _FULL_JOBS if args.full else _QUICK_JOBS
    for name in names:
        jobs = args.jobs if args.jobs is not None else table[name]
        started = time.perf_counter()
        output = _run_one(name, jobs, args.seed)
        elapsed = time.perf_counter() - started
        print(output)
        print(f"[{name}: {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
