"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments table2            # one artifact
    python -m repro.experiments all               # everything
    python -m repro.experiments all --jobs 4      # 4 worker processes
    python -m repro.experiments table2 --job-count 200
    repro-experiments fig8                        # installed script

Every experiment declares its trial grid as independent simulation
cells; the CLI collects the grids of all requested experiments into one
pool, fans cache misses out over ``--jobs`` worker processes, and merges
the results deterministically — parallel output is byte-identical to
``--jobs 1``. Finished cells land in a content-addressed cache (keyed by
cell parameters plus a fingerprint of ``src/repro``), so re-running
after an unrelated edit is near-instant; ``--no-cache`` /
``--clear-cache`` opt out.

Job counts default to quick sizes; pass ``--full`` for the paper-scale
runs recorded in EXPERIMENTS.md, or set ``REPRO_SCALE=0.25`` for a
smoke pass (the scale is part of the cache key).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from .experiments import EXPERIMENTS
from .experiments.cache import ResultCache
from .experiments.common import bench_scale, save_result, scaled
from .experiments.runner import CellOutcome, SimTask, TaskRunner

#: Paper-scale job counts per experiment (used with --full).
_FULL_JOBS = {
    "motivation": 1000,
    "table2": 1000,
    "table3": 400,
    "fig7": 400,
    "fig8": 400,
    "fig9": 400,
    "fig10": None,  # scales with cluster size by construction
    "ablation-value": 400,
    "ablation-knapsack": 400,
    "ablation-cycle": 400,
    "ablation-placement": 400,
    "ext-capacity": 400,
    "ext-crash": 200,
    "ext-faults": 200,
    "ext-multidevice": 400,
    "ext-netchaos": 200,
    "ext-oversubscription": None,
    "ext-replication": 400,
    "ext-scale": 400,
}

#: Quick job counts (default).
_QUICK_JOBS = {
    "motivation": 250,
    "table2": 250,
    "table3": 120,
    "fig7": 400,  # input-only, cheap
    "fig8": 120,
    "fig9": 120,
    "fig10": None,
    "ablation-value": 120,
    "ablation-knapsack": 120,
    "ablation-cycle": 120,
    "ablation-placement": 120,
    "ext-capacity": 120,
    "ext-crash": 60,
    "ext-faults": 60,
    "ext-multidevice": 120,
    "ext-netchaos": 60,
    "ext-oversubscription": None,
    "ext-replication": 60,
    "ext-scale": 64,
}

#: Experiments excluded from ``all``: ext-scale's rendered output
#: includes host wall-clock and RSS, which would break the guarantee
#: that ``all`` output is byte-identical across runs and worker counts.
_NOT_IN_ALL = frozenset({"ext-scale"})

#: Which experiments consume each experiment-specific flag. A flag
#: passed with a selection that includes no consumer is an error (the
#: run would silently ignore it); a selection that merely includes
#: non-consumers too (e.g. ``all``) gets a warning.
_FLAG_CONSUMERS = {
    "--fault-rate": {"ext-faults"},
    "--net-loss": {"ext-netchaos"},
    "--net-delay": {"ext-netchaos"},
    "--net-partition": {"ext-netchaos"},
    "--daemon-crash-rate": {"ext-crash"},
    "--crash": {"ext-crash"},
}

#: fig10's per-node pressure at scale 1.0 (see the module).
_FIG10_JOBS_PER_NODE = 200

#: How many per-cell timing lines to print before switching to the
#: slowest-only view.
_MAX_CELL_LINES = 12


def _experiment_kwargs(
    name: str,
    jobs: Optional[int],
    seed: int,
    scale: float,
    fault_rates: Optional[Sequence[float]] = None,
    net_losses: Optional[Sequence[float]] = None,
    net_delay: Optional[float] = None,
    net_partitions: Sequence = (),
    crash_rates: Optional[Sequence[float]] = None,
    crashes: Sequence = (),
) -> dict:
    """Keyword arguments for one experiment's task grid.

    ``jobs`` is the explicit ``--job-count`` override; otherwise the
    quick/full table entry scaled by ``REPRO_SCALE``. ``fault_rates``
    (from ``--fault-rate``) only applies to ext-faults; the ``--net-*``
    knobs only to ext-netchaos; ``--daemon-crash-rate`` / ``--crash``
    only to ext-crash (see ``_FLAG_CONSUMERS``).
    """
    kwargs: dict = {"seed": seed}
    if name == "ext-faults" and fault_rates:
        kwargs["rates"] = tuple(fault_rates)
    if name == "ext-crash":
        if crash_rates:
            kwargs["rates"] = tuple(crash_rates)
        if crashes:
            kwargs["crashes"] = tuple(crashes)
    if name == "ext-netchaos":
        if net_losses:
            kwargs["losses"] = tuple(net_losses)
        if net_partitions:
            kwargs["partitions"] = tuple(net_partitions)
        if net_delay is not None:
            kwargs["delay_s"] = net_delay
    if name == "ext-oversubscription":
        return kwargs  # exact experiment: no job count to scale
    if jobs is not None:
        if name == "fig10":
            kwargs["jobs_per_node"] = max(1, jobs // 8)
        elif name == "motivation":
            kwargs["real_jobs"] = jobs
            kwargs["synthetic_jobs"] = max(8, int(jobs * 0.4))
        else:
            kwargs["jobs"] = jobs
    elif name == "fig10" and scale != 1.0:
        kwargs["jobs_per_node"] = max(2, round(_FIG10_JOBS_PER_NODE * scale))
    return kwargs


def _grid_for(name: str, kwargs: dict) -> list[SimTask]:
    """An experiment's cell grid; whole-run task for grid-less modules."""
    module = EXPERIMENTS[name]
    if hasattr(module, "tasks"):
        return module.tasks(**kwargs)
    return [SimTask.make(name, f"run:{name}", label="run", **kwargs)]


def _merge(name: str, kwargs: dict, outcomes: Sequence[CellOutcome]):
    module = EXPERIMENTS[name]
    if hasattr(module, "merge"):
        return module.merge([o.value for o in outcomes], **kwargs)
    return outcomes[0].value


def _cell_lines(name: str, outcomes: Sequence[CellOutcome]) -> list[str]:
    """Per-cell timing lines: every cell, or the slowest for big grids."""

    def line(outcome: CellOutcome) -> str:
        timing = "cached" if outcome.cached else f"{outcome.seconds:.2f}s"
        return f"[  {name}/{outcome.task.label}: {timing}]"

    if len(outcomes) <= _MAX_CELL_LINES:
        return [line(o) for o in outcomes]
    slowest = sorted(outcomes, key=lambda o: o.seconds, reverse=True)
    shown = slowest[:_MAX_CELL_LINES - 2]
    cached = sum(1 for o in outcomes if o.cached)
    return [
        f"[  {name}: slowest {len(shown)} of {len(outcomes)} cells "
        f"({cached} cached):]",
        *[line(o) for o in shown],
    ]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the simulator.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS.keys(), "all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes for the trial fan-out (default: all cores)",
    )
    parser.add_argument(
        "--job-count", type=int, default=None,
        help="override the simulated job count per experiment",
    )
    parser.add_argument(
        "--full", action="store_true", help="paper-scale job counts (slower)"
    )
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument(
        "--fault-rate", type=float, action="append", default=None,
        dest="fault_rates", metavar="RATE",
        help="ext-faults: fault events per 1000 simulated seconds; repeat "
        "for a sweep (default: 0 0.5 1 2 4). The fault schedule seed is "
        "derived from --seed.",
    )
    parser.add_argument(
        "--net-loss", type=float, action="append", default=None,
        dest="net_losses", metavar="P",
        help="ext-netchaos: per-message loss probability in [0, 1); repeat "
        "for a sweep (default: 0 0.02 0.05 0.1). 0 runs without a fabric. "
        "The fabric seed is derived from --seed.",
    )
    parser.add_argument(
        "--net-delay", type=float, default=None, metavar="SECONDS",
        help="ext-netchaos: base one-way message delay for fabric cells "
        "(default: 0.05)",
    )
    parser.add_argument(
        "--net-partition", action="append", default=None,
        dest="net_partitions", metavar="START:END:PATTERN",
        help="ext-netchaos: scripted partition window cutting endpoints "
        "matching PATTERN ('schedd', 'startd:*', '*') off the network "
        "between START and END seconds; repeatable",
    )
    parser.add_argument(
        "--daemon-crash-rate", type=float, action="append", default=None,
        dest="crash_rates", metavar="RATE",
        help="ext-crash: daemon crashes per 1000 simulated seconds; repeat "
        "for a sweep (default: 0 0.5 1 2). The crash schedule seed is "
        "derived from --seed.",
    )
    parser.add_argument(
        "--crash", action="append", default=None,
        dest="crashes", metavar="T:DAEMON",
        help="ext-crash: scripted crash of DAEMON (schedd, negotiator, or "
        "collector) at T simulated seconds, added to every rate column "
        "(including rate 0); repeatable",
    )
    parser.add_argument(
        "--audit", action="store_true",
        help="run the runtime invariant auditor over every cell: each "
        "submitted job gets exactly one terminal outcome, no slot is "
        "double-claimed, no job runs on two nodes, device memory never "
        "goes negative, and claim/lease ledgers reconcile at cell end "
        "(violations raise; implies --jobs 1 and --no-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell; do not read or write the result cache",
    )
    parser.add_argument(
        "--clear-cache", action="store_true",
        help="delete the result cache before running",
    )
    parser.add_argument(
        "--save", action="store_true",
        help="also write each rendered artifact under benchmarks/results/ "
        "(honors REPRO_RESULTS_DIR)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="instrument the simulation kernel and print a per-event-kind "
        "breakdown after the run (implies --jobs 1 and --no-cache so the "
        "counters cover every cell in-process)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome trace_event JSON of the run to PATH — open it "
        "in chrome://tracing or https://ui.perfetto.dev (implies --jobs 1 "
        "and --no-cache; deterministic for a fixed seed)",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write a plain-text metrics summary (counters, gauges, "
        "histograms) of the run to PATH (implies --jobs 1 and --no-cache)",
    )
    args = parser.parse_args(argv)

    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.fault_rates and any(rate < 0 for rate in args.fault_rates):
        parser.error("--fault-rate must be non-negative")
    if args.net_losses and any(
        not 0.0 <= loss < 1.0 for loss in args.net_losses
    ):
        parser.error("--net-loss must be in [0, 1)")
    if args.net_delay is not None and args.net_delay < 0:
        parser.error("--net-delay must be non-negative")
    if args.crash_rates and any(rate < 0 for rate in args.crash_rates):
        parser.error("--daemon-crash-rate must be non-negative")
    crashes = ()
    if args.crashes:
        from .faults import parse_crash

        try:
            crashes = tuple(parse_crash(spec) for spec in args.crashes)
        except ValueError as exc:
            parser.error(f"--crash: {exc}")
    partitions = ()
    if args.net_partitions:
        from .net import parse_partition

        try:
            partitions = tuple(
                parse_partition(spec) for spec in args.net_partitions
            )
        except ValueError as exc:
            parser.error(f"--net-partition: {exc}")

    requested = (
        set(EXPERIMENTS) - _NOT_IN_ALL
        if args.experiment == "all"
        else {args.experiment}
    )
    passed_flags = {
        "--fault-rate": bool(args.fault_rates),
        "--net-loss": bool(args.net_losses),
        "--net-delay": args.net_delay is not None,
        "--net-partition": bool(args.net_partitions),
        "--daemon-crash-rate": bool(args.crash_rates),
        "--crash": bool(args.crashes),
    }
    for flag, on in passed_flags.items():
        if not on:
            continue
        consumers = _FLAG_CONSUMERS[flag]
        if not requested & consumers:
            parser.error(
                f"{flag} only applies to {'/'.join(sorted(consumers))}, "
                f"which the requested selection does not include"
            )
        if requested - consumers:
            print(
                f"[warning: {flag} only affects "
                f"{'/'.join(sorted(consumers))}; the other requested "
                f"experiments ignore it]",
                file=sys.stderr,
            )

    observing = [
        flag
        for flag, on in (
            ("--profile", args.profile),
            ("--trace", args.trace is not None),
            ("--metrics", args.metrics is not None),
            ("--audit", args.audit),
        )
        if on
    ]
    if observing:
        # Worker processes would each observe privately and cache hits
        # would skip simulation entirely; neither yields usable output —
        # so an explicit request for parallelism is a contradiction, not
        # something to silently override.
        if args.jobs is not None and args.jobs > 1:
            parser.error(
                f"{'/'.join(observing)} runs every cell in-process; "
                f"--jobs {args.jobs} conflicts (omit --jobs or pass --jobs 1)"
            )
        args.jobs = 1
        args.no_cache = True

    cache: Optional[ResultCache] = None
    if args.clear_cache:
        ResultCache().clear()
    if not args.no_cache:
        cache = ResultCache()
    runner = TaskRunner(workers=args.jobs, cache=cache)

    names = (
        [n for n in EXPERIMENTS if n not in _NOT_IN_ALL]
        if args.experiment == "all"
        else [args.experiment]
    )
    table = _FULL_JOBS if args.full else _QUICK_JOBS
    scale = bench_scale(default=1.0)

    plans = []
    for name in names:
        base = args.job_count
        if base is None and table[name] is not None:
            base = scaled(table[name], scale) if scale != 1.0 else table[name]
        kwargs = _experiment_kwargs(
            name, base, args.seed, scale,
            fault_rates=args.fault_rates,
            net_losses=args.net_losses,
            net_delay=args.net_delay,
            net_partitions=partitions,
            crash_rates=args.crash_rates,
            crashes=crashes,
        )
        plans.append((name, kwargs, _grid_for(name, kwargs)))

    profiler = None
    if args.profile:
        from .sim import profile as sim_profile

        profiler = sim_profile.activate()
    tracer = None
    registry = None
    if args.trace is not None:
        from .obs import trace as obs_trace

        tracer = obs_trace.activate()
    if args.metrics is not None:
        from .obs import metrics as obs_metrics

        registry = obs_metrics.activate()
    auditor = None
    if args.audit:
        from .obs import audit as obs_audit

        auditor = obs_audit.activate()

    started = time.perf_counter()
    try:
        outcomes = runner.map_tasks(
            [task for _, _, grid in plans for task in grid]
        )
    finally:
        if profiler is not None:
            from .sim import profile as sim_profile

            sim_profile.deactivate()
        if tracer is not None:
            from .obs import trace as obs_trace

            obs_trace.deactivate()
        if registry is not None:
            from .obs import metrics as obs_metrics

            obs_metrics.deactivate()
        if auditor is not None:
            from .obs import audit as obs_audit

            obs_audit.deactivate()
    wall = time.perf_counter() - started

    offset = 0
    for name, kwargs, grid in plans:
        cell_outcomes = outcomes[offset:offset + len(grid)]
        offset += len(grid)
        text = EXPERIMENTS[name].render(_merge(name, kwargs, cell_outcomes))
        print(text)
        if args.save:
            save_result(name, text)
        computed = sum(1 for o in cell_outcomes if not o.cached)
        cell_seconds = sum(o.seconds for o in cell_outcomes)
        print(
            f"[{name}: {cell_seconds:.1f}s cell-time, {len(grid)} cells "
            f"({computed} computed, {len(grid) - computed} cached)]"
        )
        for line in _cell_lines(name, cell_outcomes):
            print(line)
        print()

    print(
        f"[total: {wall:.1f}s wall, {len(outcomes)} cells "
        f"({runner.computed} computed, {runner.served_from_cache} cached), "
        f"{runner.workers} worker(s)]"
    )
    if profiler is not None:
        print()
        print(profiler.render())
    if tracer is not None:
        from .obs.export import chrome_trace

        with open(args.trace, "w") as fh:
            fh.write(chrome_trace(tracer))
        counts = tracer.span_counts()
        print(
            f"[trace: {sum(counts.values())} spans across "
            f"{len(tracer.cells)} cell(s) -> {args.trace}]"
        )
    if registry is not None:
        from .obs.export import render_summary

        with open(args.metrics, "w") as fh:
            fh.write(render_summary(tracer, registry) + "\n")
        print(f"[metrics: {len(registry.cells)} cell(s) -> {args.metrics}]")
    if auditor is not None:
        print(auditor.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
