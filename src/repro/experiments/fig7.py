"""E4 — Fig. 7: the synthetic job sets' resource distributions (inputs).

Regenerates the four 400-job synthetic sets and reports the histogram of
resource levels each produces — uniform spread, mid-heavy bell, and the
two one-sigma-shifted skews the paper draws.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics import ascii_bar_chart
from ..workloads import DISTRIBUTIONS, generate_synthetic_jobs, resource_histogram
from .common import DEFAULT_SEED


@dataclass
class Fig7Result:
    job_count: int
    histograms: dict[str, np.ndarray]
    mean_declared_mb: dict[str, float]
    mean_declared_threads: dict[str, float]


def run(jobs: int = 400, seed: int = DEFAULT_SEED, bins: int = 10) -> Fig7Result:
    histograms: dict[str, np.ndarray] = {}
    mean_mb: dict[str, float] = {}
    mean_threads: dict[str, float] = {}
    for distribution in DISTRIBUTIONS:
        job_set = generate_synthetic_jobs(jobs, distribution, seed=seed)
        counts, _edges = resource_histogram(job_set, bins=bins)
        histograms[distribution] = counts
        mean_mb[distribution] = float(
            np.mean([j.declared_memory_mb for j in job_set])
        )
        mean_threads[distribution] = float(
            np.mean([j.declared_threads for j in job_set])
        )
    return Fig7Result(
        job_count=jobs,
        histograms=histograms,
        mean_declared_mb=mean_mb,
        mean_declared_threads=mean_threads,
    )


def render(result: Fig7Result) -> str:
    blocks = [
        f"Fig. 7: resource distributions of the synthetic job sets "
        f"({result.job_count} jobs each)"
    ]
    for name, counts in result.histograms.items():
        labels = [
            f"{i / len(counts):.1f}-{(i + 1) / len(counts):.1f}"
            for i in range(len(counts))
        ]
        blocks.append(
            ascii_bar_chart(
                labels,
                [float(c) for c in counts],
                width=40,
                title=(
                    f"\n[{name}] mean declared: "
                    f"{result.mean_declared_mb[name]:.0f} MB / "
                    f"{result.mean_declared_threads[name]:.0f} threads"
                ),
            )
        )
    return "\n".join(blocks)
