"""A2 — ablation: the knapsack's hard thread cap.

The paper makes a packing worthless when its total declared threads
exceed the 240 hardware threads. COSMIC already prevents *runtime* thread
oversubscription by gating offloads, so the cap is a cluster-level policy
choice, not a safety requirement. This ablation compares:

* ``cap`` — the paper's rule (memory x thread DP);
* ``no-cap`` — memory-only packing; threads only shape the value;
* ``no-cap/no-slots`` — additionally ignore the host-slot bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import ClusterConfig, run_mcck
from ..core import DevicePacker
from ..metrics import format_table
from .common import DEFAULT_SEED, PAPER_CLUSTER, make_workload
from .runner import SimTask, TaskRunner, execute

_WORKLOADS = ("table1", "normal")

#: variant name -> (thread_capacity, respect_host_slots); the packer is
#: rebuilt in the worker so tasks carry primitives only.
_VARIANTS = {
    "cap-240 (paper)": (240, True),
    "no-cap": (None, True),
    "no-cap/no-slots": (None, False),
}


def _workload_spec(workload: str, jobs: int, seed: int) -> tuple:
    if workload == "table1":
        return ("table1", jobs, seed)
    return ("synthetic", jobs, workload, seed)


@dataclass
class KnapsackAblationResult:
    job_count: int
    makespans: dict[str, dict[str, float]]  # variant -> workload -> seconds


def tasks(
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> list[SimTask]:
    return [
        SimTask.make(
            "ablation-knapsack", "ablation-knapsack.cell",
            label=f"{variant}/{workload}",
            variant=variant,
            config=config,
            workload=_workload_spec(workload, jobs, seed),
        )
        for variant in _VARIANTS
        for workload in _WORKLOADS
    ]


def compute(task: SimTask) -> float:
    p = task.kwargs()
    thread_capacity, respect_host_slots = _VARIANTS[p["variant"]]
    job_set = make_workload(p["workload"])
    return run_mcck(
        job_set,
        p["config"],
        packer=DevicePacker(thread_capacity=thread_capacity),
        respect_host_slots=respect_host_slots,
    ).makespan


def merge(
    values: list,
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> KnapsackAblationResult:
    cursor = iter(values)
    makespans = {
        variant: {workload: next(cursor) for workload in _WORKLOADS}
        for variant in _VARIANTS
    }
    return KnapsackAblationResult(job_count=jobs, makespans=makespans)


def run(
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    runner: Optional[TaskRunner] = None,
) -> KnapsackAblationResult:
    grid = tasks(jobs=jobs, config=config, seed=seed)
    values = execute(grid, runner)
    return merge(values, jobs=jobs, config=config, seed=seed)


def render(result: KnapsackAblationResult) -> str:
    rows = [
        [name, f"{by_wl['table1']:.0f}", f"{by_wl['normal']:.0f}"]
        for name, by_wl in result.makespans.items()
    ]
    return format_table(
        ["knapsack variant", "Table-I mix (s)", "normal synthetic (s)"],
        rows,
        title=(
            f"A2: MCCK makespan by knapsack constraint variant "
            f"({result.job_count} jobs, 8 nodes)"
        ),
    )
