"""A2 — ablation: the knapsack's hard thread cap.

The paper makes a packing worthless when its total declared threads
exceed the 240 hardware threads. COSMIC already prevents *runtime* thread
oversubscription by gating offloads, so the cap is a cluster-level policy
choice, not a safety requirement. This ablation compares:

* ``cap`` — the paper's rule (memory x thread DP);
* ``no-cap`` — memory-only packing; threads only shape the value;
* ``no-cap/no-slots`` — additionally ignore the host-slot bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import ClusterConfig, run_mcck
from ..core import DevicePacker
from ..metrics import format_table
from ..workloads import generate_synthetic_jobs, generate_table1_jobs
from .common import DEFAULT_SEED, PAPER_CLUSTER


@dataclass
class KnapsackAblationResult:
    job_count: int
    makespans: dict[str, dict[str, float]]  # variant -> workload -> seconds


def run(
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> KnapsackAblationResult:
    workloads = {
        "table1": generate_table1_jobs(jobs, seed=seed),
        "normal": generate_synthetic_jobs(jobs, "normal", seed=seed),
    }
    variants = {
        "cap-240 (paper)": dict(
            packer=DevicePacker(thread_capacity=240), respect_host_slots=True
        ),
        "no-cap": dict(packer=DevicePacker(), respect_host_slots=True),
        "no-cap/no-slots": dict(packer=DevicePacker(), respect_host_slots=False),
    }
    makespans: dict[str, dict[str, float]] = {}
    for name, kwargs in variants.items():
        makespans[name] = {
            workload: run_mcck(job_set, config, **kwargs).makespan
            for workload, job_set in workloads.items()
        }
    return KnapsackAblationResult(job_count=jobs, makespans=makespans)


def render(result: KnapsackAblationResult) -> str:
    rows = [
        [name, f"{by_wl['table1']:.0f}", f"{by_wl['normal']:.0f}"]
        for name, by_wl in result.makespans.items()
    ]
    return format_table(
        ["knapsack variant", "Table-I mix (s)", "normal synthetic (s)"],
        rows,
        title=(
            f"A2: MCCK makespan by knapsack constraint variant "
            f"({result.job_count} jobs, 8 nodes)"
        ),
    )
