"""X4 — extension: seed-replication study with confidence intervals.

The paper reports single-run numbers. This extension reruns the Table-II
comparison over several workload seeds and reports mean ± 95% CI for
each configuration's makespan and reduction, separating real effects
from workload-draw noise (and quantifying how (in)significant the
MCC↔MCCK gap is in this simulator — see EXPERIMENTS.md deviation 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import ClusterConfig, run_configuration
from ..metrics import Replicated, compare, format_table, replicate
from ..workloads import generate_table1_jobs
from .common import PAPER_CLUSTER

DEFAULT_SEEDS = (42, 43, 44, 45, 46)


@dataclass
class ReplicationResult:
    job_count: int
    seeds: tuple[int, ...]
    makespans: dict[str, Replicated]

    def reduction(self, configuration: str) -> Replicated:
        """Per-seed percentage reduction vs the same seed's MC run."""
        mc = self.makespans["MC"].values
        other = self.makespans[configuration].values
        return Replicated(
            tuple(100.0 * (1.0 - o / m) for o, m in zip(other, mc))
        )

    @property
    def mcc_vs_mcck_t(self) -> float:
        """Welch t statistic for the MCC-MCCK makespan gap."""
        return compare(self.makespans["MCC"], self.makespans["MCCK"])


def run(
    jobs: int = 400,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = 0,  # unused; kept for CLI uniformity
) -> ReplicationResult:
    makespans: dict[str, Replicated] = {}
    for configuration in ("MC", "MCC", "MCCK"):
        makespans[configuration] = replicate(
            lambda s, c=configuration: run_configuration(
                c, generate_table1_jobs(jobs, seed=s), config
            ).makespan,
            seeds=seeds,
        )
    return ReplicationResult(job_count=jobs, seeds=seeds, makespans=makespans)


def render(result: ReplicationResult) -> str:
    rows = []
    for configuration, rep in result.makespans.items():
        lo, hi = rep.ci95
        if configuration == "MC":
            reduction = "-"
        else:
            red = result.reduction(configuration)
            reduction = f"{red.mean:.1f}% ± {red.ci95[1] - red.mean:.1f}"
        rows.append(
            [
                configuration,
                f"{rep.mean:.0f}",
                f"[{lo:.0f}, {hi:.0f}]",
                f"{rep.std:.0f}",
                reduction,
            ]
        )
    table = format_table(
        ["config", "mean makespan (s)", "95% CI", "std", "reduction vs MC"],
        rows,
        title=(
            f"X4: Table-II replication over seeds {list(result.seeds)} "
            f"({result.job_count} jobs per seed)"
        ),
    )
    return table + (
        f"\nMCC vs MCCK Welch t = {result.mcc_vs_mcck_t:.2f} "
        "(|t| < ~2: the gap is within workload noise)"
    )
