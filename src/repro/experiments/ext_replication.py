"""X4 — extension: seed-replication study with confidence intervals.

The paper reports single-run numbers. This extension reruns the Table-II
comparison over several workload seeds and reports mean ± 95% CI for
each configuration's makespan and reduction, separating real effects
from workload-draw noise (and quantifying how (in)significant the
MCC↔MCCK gap is in this simulator — see EXPERIMENTS.md deviation 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import ClusterConfig
from ..metrics import Replicated, compare, format_table
from .common import PAPER_CLUSTER
from .runner import SimTask, TaskRunner, execute, sim_task

DEFAULT_SEEDS = (42, 43, 44, 45, 46)

_CONFIGURATIONS = ("MC", "MCC", "MCCK")


@dataclass
class ReplicationResult:
    job_count: int
    seeds: tuple[int, ...]
    makespans: dict[str, Replicated]

    def reduction(self, configuration: str) -> Replicated:
        """Per-seed percentage reduction vs the same seed's MC run."""
        mc = self.makespans["MC"].values
        other = self.makespans[configuration].values
        return Replicated(
            tuple(100.0 * (1.0 - o / m) for o, m in zip(other, mc))
        )

    @property
    def mcc_vs_mcck_t(self) -> float:
        """Welch t statistic for the MCC-MCCK makespan gap."""
        return compare(self.makespans["MCC"], self.makespans["MCCK"])


def tasks(
    jobs: int = 400,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = 0,  # unused; kept for CLI uniformity
) -> list[SimTask]:
    return [
        sim_task(
            "ext-replication", configuration, config,
            ("table1", jobs, workload_seed),
            label=f"{configuration}/seed{workload_seed}",
        )
        for configuration in _CONFIGURATIONS
        for workload_seed in seeds
    ]


def merge(
    values: list,
    jobs: int = 400,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = 0,
) -> ReplicationResult:
    cursor = iter(values)
    makespans = {
        configuration: Replicated(
            tuple(next(cursor)["makespan"] for _ in seeds)
        )
        for configuration in _CONFIGURATIONS
    }
    return ReplicationResult(job_count=jobs, seeds=seeds, makespans=makespans)


def run(
    jobs: int = 400,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = 0,  # unused; kept for CLI uniformity
    runner: Optional[TaskRunner] = None,
) -> ReplicationResult:
    grid = tasks(jobs=jobs, seeds=seeds, config=config, seed=seed)
    values = execute(grid, runner)
    return merge(values, jobs=jobs, seeds=seeds, config=config, seed=seed)


def render(result: ReplicationResult) -> str:
    rows = []
    for configuration, rep in result.makespans.items():
        lo, hi = rep.ci95
        if configuration == "MC":
            reduction = "-"
        else:
            red = result.reduction(configuration)
            reduction = f"{red.mean:.1f}% ± {red.ci95[1] - red.mean:.1f}"
        rows.append(
            [
                configuration,
                f"{rep.mean:.0f}",
                f"[{lo:.0f}, {hi:.0f}]",
                f"{rep.std:.0f}",
                reduction,
            ]
        )
    table = format_table(
        ["config", "mean makespan (s)", "95% CI", "std", "reduction vs MC"],
        rows,
        title=(
            f"X4: Table-II replication over seeds {list(result.seeds)} "
            f"({result.job_count} jobs per seed)"
        ),
    )
    return table + (
        f"\nMCC vs MCCK Welch t = {result.mcc_vs_mcck_t:.2f} "
        "(|t| < ~2: the gap is within workload noise)"
    )
