"""X5 — extension: goodput under injected coprocessor/node failures.

The paper evaluates MC / MCC / MCCK on a healthy cluster. Real Phi
deployments lost cards and nodes routinely (micras resets, PCIe drops),
and a scheduler that packs many jobs per card concentrates the blast
radius of every card it loses. This extension drives the same Table-I
workload through a seeded fault schedule at increasing failure rates and
asks whether the knapsack's sharing gain survives chaos:

* **goodput** — jobs completed per simulated hour (retries make raw
  makespan misleading once jobs can fail terminally);
* **makespan** — queue-drain time including downtime and backoffs;
* the recovery ledger — requeues, retried-then-completed jobs, and jobs
  that exhausted their retries.

Fault schedules are generated from ``derive_fault_seed(seed)``, so the
whole experiment is as deterministic as the fault-free ones: same seed
and rates, byte-identical tables (asserted in
``tests/test_experiments_faults.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import ClusterConfig
from ..faults import FaultProfile, derive_fault_seed
from ..metrics import format_table
from .common import DEFAULT_SEED, PAPER_CLUSTER
from .runner import SimTask, TaskRunner, execute

#: Fault events per 1000 simulated seconds (0 = the paper's baseline).
DEFAULT_RATES = (0.0, 0.5, 1.0, 2.0, 4.0)

_CONFIGURATIONS = ("MC", "MCC", "MCCK")


@dataclass
class FaultsResult:
    job_count: int
    rates: tuple[float, ...]
    #: configuration -> per-rate cell dicts (aligned with ``rates``).
    cells: dict[str, list[dict]]

    def goodput(self, configuration: str) -> list[float]:
        """Completed jobs per simulated hour, per rate."""
        out = []
        for cell in self.cells[configuration]:
            makespan = cell["makespan"]
            out.append(
                3600.0 * cell["completed"] / makespan if makespan > 0 else 0.0
            )
        return out


def _profile(rate: float) -> Optional[FaultProfile]:
    return FaultProfile.chaos(rate) if rate > 0 else None


def tasks(
    jobs: int = 200,
    rates: tuple[float, ...] = DEFAULT_RATES,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> list[SimTask]:
    workload = ("table1", jobs, seed)
    fault_seed = derive_fault_seed(seed)
    grid: list[SimTask] = []
    for rate in rates:
        for configuration in _CONFIGURATIONS:
            grid.append(
                SimTask.make(
                    "ext-faults",
                    "sim-faults",
                    label=f"{configuration}@{rate:g}/ks",
                    configuration=configuration,
                    config=config,
                    workload=workload,
                    faults=_profile(rate),
                    fault_seed=fault_seed,
                )
            )
    return grid


def merge(
    values: list,
    jobs: int = 200,
    rates: tuple[float, ...] = DEFAULT_RATES,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> FaultsResult:
    cursor = iter(values)
    cells: dict[str, list[dict]] = {c: [] for c in _CONFIGURATIONS}
    for _rate in rates:
        for configuration in _CONFIGURATIONS:
            cells[configuration].append(next(cursor))
    return FaultsResult(job_count=jobs, rates=rates, cells=cells)


def run(
    jobs: int = 200,
    rates: tuple[float, ...] = DEFAULT_RATES,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    runner: Optional[TaskRunner] = None,
) -> FaultsResult:
    grid = tasks(jobs=jobs, rates=rates, config=config, seed=seed)
    values = execute(grid, runner)
    return merge(values, jobs=jobs, rates=rates, config=config, seed=seed)


def render(result: FaultsResult) -> str:
    headers = [
        "rate/ks", "config", "goodput/h", "makespan",
        "completed", "failed", "requeues", "retried-ok", "injected",
    ]
    rows = []
    for i, rate in enumerate(result.rates):
        for configuration in _CONFIGURATIONS:
            cell = result.cells[configuration][i]
            rows.append(
                [
                    f"{rate:g}",
                    configuration,
                    f"{result.goodput(configuration)[i]:.0f}",
                    f"{cell['makespan']:.0f}",
                    cell["completed"],
                    cell["failed"],
                    cell["requeues"],
                    cell["retried"],
                    cell["faults_injected"],
                ]
            )
    table = format_table(
        headers,
        rows,
        title=(
            f"X5: goodput and recovery under injected failures "
            f"({result.job_count} Table-I jobs, {PAPER_CLUSTER.nodes} nodes)"
        ),
    )
    return table + (
        "\nRate 0 reproduces the fault-free tables exactly. As the rate"
        "\ngrows, the sharing stacks lose more work per card failure but"
        "\nrecover displaced jobs through requeue/backoff; 'failed' counts"
        "\njobs whose retries were exhausted."
    )
