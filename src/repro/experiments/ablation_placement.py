"""A4 — ablation: cluster-level placement policy spectrum.

Positions the paper's two sharing configurations on a spectrum of
cluster-level intelligence, all over identical COSMIC nodes:

* random (the paper's MCC, memory-unaware "packed arbitrarily");
* random memory-aware (Condor deducts advertised free device memory);
* best-fit (greedy memory-aware, no look-ahead);
* knapsack (the paper's MCCK: look-ahead over the whole pending set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import (
    ClusterConfig,
    run_best_fit,
    run_mcc,
    run_mc,
    run_mcck,
)
from ..metrics import format_table, percent_reduction
from .common import DEFAULT_SEED, PAPER_CLUSTER, make_workload
from .runner import SimTask, TaskRunner, execute

#: policy name -> runner; rebuilt in the worker from the policy name.
_POLICIES = {
    "MC": lambda job_set, config: run_mc(job_set, config),
    "random (MCC)": lambda job_set, config: run_mcc(job_set, config),
    "random memory-aware": lambda job_set, config: run_mcc(
        job_set, config, memory_aware=True
    ),
    "best-fit": lambda job_set, config: run_best_fit(job_set, config),
    "knapsack (MCCK)": lambda job_set, config: run_mcck(job_set, config),
}


@dataclass
class PlacementAblationResult:
    job_count: int
    makespans: dict[str, float]

    def reduction(self, name: str) -> float:
        return percent_reduction(self.makespans["MC"], self.makespans[name])


def tasks(
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> list[SimTask]:
    return [
        SimTask.make(
            "ablation-placement", "ablation-placement.cell",
            label=policy,
            policy=policy,
            config=config,
            workload=("table1", jobs, seed),
        )
        for policy in _POLICIES
    ]


def compute(task: SimTask) -> float:
    p = task.kwargs()
    job_set = make_workload(p["workload"])
    return _POLICIES[p["policy"]](job_set, p["config"]).makespan


def merge(
    values: list,
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> PlacementAblationResult:
    makespans = dict(zip(_POLICIES, values))
    return PlacementAblationResult(job_count=jobs, makespans=makespans)


def run(
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    runner: Optional[TaskRunner] = None,
) -> PlacementAblationResult:
    grid = tasks(jobs=jobs, config=config, seed=seed)
    values = execute(grid, runner)
    return merge(values, jobs=jobs, config=config, seed=seed)


def render(result: PlacementAblationResult) -> str:
    rows = []
    for name, makespan in result.makespans.items():
        reduction = "-" if name == "MC" else f"-{result.reduction(name):.0f}%"
        rows.append([name, f"{makespan:.0f}", reduction])
    return format_table(
        ["placement policy", "makespan (s)", "vs MC"],
        rows,
        title=(
            f"A4: makespan by cluster-level placement policy "
            f"({result.job_count} Table-I jobs, 8 nodes, COSMIC everywhere)"
        ),
    )
