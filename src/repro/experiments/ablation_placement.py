"""A4 — ablation: cluster-level placement policy spectrum.

Positions the paper's two sharing configurations on a spectrum of
cluster-level intelligence, all over identical COSMIC nodes:

* random (the paper's MCC, memory-unaware "packed arbitrarily");
* random memory-aware (Condor deducts advertised free device memory);
* best-fit (greedy memory-aware, no look-ahead);
* knapsack (the paper's MCCK: look-ahead over the whole pending set).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import (
    ClusterConfig,
    run_best_fit,
    run_mcc,
    run_mc,
    run_mcck,
)
from ..metrics import format_table, percent_reduction
from ..workloads import generate_table1_jobs
from .common import DEFAULT_SEED, PAPER_CLUSTER


@dataclass
class PlacementAblationResult:
    job_count: int
    makespans: dict[str, float]

    def reduction(self, name: str) -> float:
        return percent_reduction(self.makespans["MC"], self.makespans[name])


def run(
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> PlacementAblationResult:
    job_set = generate_table1_jobs(jobs, seed=seed)
    makespans = {
        "MC": run_mc(job_set, config).makespan,
        "random (MCC)": run_mcc(job_set, config).makespan,
        "random memory-aware": run_mcc(job_set, config, memory_aware=True).makespan,
        "best-fit": run_best_fit(job_set, config).makespan,
        "knapsack (MCCK)": run_mcck(job_set, config).makespan,
    }
    return PlacementAblationResult(job_count=jobs, makespans=makespans)


def render(result: PlacementAblationResult) -> str:
    rows = []
    for name, makespan in result.makespans.items():
        reduction = "-" if name == "MC" else f"-{result.reduction(name):.0f}%"
        rows.append([name, f"{makespan:.0f}", reduction])
    return format_table(
        ["placement policy", "makespan (s)", "vs MC"],
        rows,
        title=(
            f"A4: makespan by cluster-level placement policy "
            f"({result.job_count} Table-I jobs, 8 nodes, COSMIC everywhere)"
        ),
    )
