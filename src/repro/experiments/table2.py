"""E2/E3 — Table II: makespan and footprint on the real workload mix.

1000 Table-I job instances on the 8-node cluster:

* makespan under MC, MCC and MCCK (paper: 3568 / 2611 / 2183 seconds,
  i.e. 27% and 39% reductions);
* footprint: the smallest cluster whose MCC / MCCK makespan matches the
  8-node MC baseline (paper: 6 and 5 nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import ClusterConfig, run_mc, run_mcc, run_mcck
from ..metrics import FootprintResult, find_footprint, format_table, percent_reduction
from ..workloads import generate_table1_jobs
from .common import DEFAULT_SEED, PAPER_CLUSTER


@dataclass
class Table2Result:
    job_count: int
    makespans: dict[str, float]  # configuration -> seconds
    footprints: dict[str, FootprintResult]
    mc_utilization: float

    def reduction(self, configuration: str) -> float:
        return percent_reduction(self.makespans["MC"], self.makespans[configuration])


def run(
    jobs: int = 1000,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    footprint: bool = True,
) -> Table2Result:
    job_set = generate_table1_jobs(jobs, seed=seed)
    mc = run_mc(job_set, config)
    mcc = run_mcc(job_set, config)
    mcck = run_mcck(job_set, config)
    makespans = {"MC": mc.makespan, "MCC": mcc.makespan, "MCCK": mcck.makespan}

    footprints: dict[str, FootprintResult] = {}
    if footprint:
        target = mc.makespan
        footprints["MCC"] = find_footprint(
            lambda n: run_mcc(job_set, config.resized(n)).makespan,
            target, max_size=config.nodes,
        )
        footprints["MCCK"] = find_footprint(
            lambda n: run_mcck(job_set, config.resized(n)).makespan,
            target, max_size=config.nodes,
        )
    return Table2Result(
        job_count=jobs,
        makespans=makespans,
        footprints=footprints,
        mc_utilization=mc.mean_core_utilization,
    )


_PAPER = {
    "MC": ("3568", "-", "-", "-"),
    "MCC": ("2611", "27%", "6", "25%"),
    "MCCK": ("2183", "39%", "5", "37.5%"),
}


def render(result: Table2Result) -> str:
    rows = []
    for configuration in ("MC", "MCC", "MCCK"):
        makespan = result.makespans[configuration]
        reduction = (
            "-" if configuration == "MC" else f"{result.reduction(configuration):.0f}%"
        )
        fp: Optional[FootprintResult] = result.footprints.get(configuration)
        if fp is None:
            size, fp_red = "-", "-"
        elif fp.cluster_size is None:
            size, fp_red = ">8", "-"
        else:
            size = str(fp.cluster_size)
            fp_red = f"{100 * (1 - fp.cluster_size / 8):.1f}%"
        paper = _PAPER[configuration]
        rows.append(
            [
                configuration,
                f"{makespan:.0f}",
                reduction,
                size,
                fp_red,
                f"(paper: {paper[0]} / {paper[1]} / {paper[2]})",
            ]
        )
    return format_table(
        [
            "config",
            "makespan (s)",
            "reduction vs MC",
            "footprint (nodes)",
            "footprint reduction",
            "paper reference",
        ],
        rows,
        title=(
            f"Table II: makespan & footprint, {result.job_count} Table-I jobs, "
            f"8-node cluster (MC utilization {100 * result.mc_utilization:.0f}%)"
        ),
    )
