"""E2/E3 — Table II: makespan and footprint on the real workload mix.

1000 Table-I job instances on the 8-node cluster:

* makespan under MC, MCC and MCCK (paper: 3568 / 2611 / 2183 seconds,
  i.e. 27% and 39% reductions);
* footprint: the smallest cluster whose MCC / MCCK makespan matches the
  8-node MC baseline (paper: 6 and 5 nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import ClusterConfig
from ..metrics import FootprintResult, footprint_from_curve, format_table, percent_reduction
from .common import DEFAULT_SEED, PAPER_CLUSTER
from .runner import SimTask, TaskRunner, execute, sim_task

_CONFIGURATIONS = ("MC", "MCC", "MCCK")
_FOOTPRINT_CONFIGS = ("MCC", "MCCK")


@dataclass
class Table2Result:
    job_count: int
    makespans: dict[str, float]  # configuration -> seconds
    footprints: dict[str, FootprintResult]
    mc_utilization: float

    def reduction(self, configuration: str) -> float:
        return percent_reduction(self.makespans["MC"], self.makespans[configuration])


def tasks(
    jobs: int = 1000,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    footprint: bool = True,
) -> list[SimTask]:
    """The cell grid: three full-size runs, then the footprint sweeps.

    The sequential harness bisected the footprint with an early-exit
    scan; here every cluster size is an independent cell so the whole
    sweep parallelises, and ``merge`` reads the footprint off the
    finished makespan-vs-size curve.
    """
    workload = ("table1", jobs, seed)
    grid = [
        sim_task("table2", c, config, workload) for c in _CONFIGURATIONS
    ]
    if footprint:
        for c in _FOOTPRINT_CONFIGS:
            for size in range(1, config.nodes + 1):
                grid.append(
                    sim_task("table2", c, config.resized(size), workload)
                )
    return grid


def merge(
    values: list,
    jobs: int = 1000,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    footprint: bool = True,
) -> Table2Result:
    head = values[: len(_CONFIGURATIONS)]
    makespans = {
        c: v["makespan"] for c, v in zip(_CONFIGURATIONS, head)
    }
    footprints: dict[str, FootprintResult] = {}
    if footprint:
        target = makespans["MC"]
        sweep = values[len(_CONFIGURATIONS):]
        for index, c in enumerate(_FOOTPRINT_CONFIGS):
            chunk = sweep[index * config.nodes:(index + 1) * config.nodes]
            curve = {
                size: v["makespan"]
                for size, v in zip(range(1, config.nodes + 1), chunk)
            }
            footprints[c] = footprint_from_curve(target, curve)
    return Table2Result(
        job_count=jobs,
        makespans=makespans,
        footprints=footprints,
        mc_utilization=head[0]["utilization"],
    )


def run(
    jobs: int = 1000,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    footprint: bool = True,
    runner: Optional[TaskRunner] = None,
) -> Table2Result:
    grid = tasks(jobs=jobs, config=config, seed=seed, footprint=footprint)
    values = execute(grid, runner)
    return merge(values, jobs=jobs, config=config, seed=seed, footprint=footprint)


_PAPER = {
    "MC": ("3568", "-", "-", "-"),
    "MCC": ("2611", "27%", "6", "25%"),
    "MCCK": ("2183", "39%", "5", "37.5%"),
}


def render(result: Table2Result) -> str:
    rows = []
    for configuration in ("MC", "MCC", "MCCK"):
        makespan = result.makespans[configuration]
        reduction = (
            "-" if configuration == "MC" else f"{result.reduction(configuration):.0f}%"
        )
        fp: Optional[FootprintResult] = result.footprints.get(configuration)
        if fp is None:
            size, fp_red = "-", "-"
        elif fp.cluster_size is None:
            size, fp_red = ">8", "-"
        else:
            size = str(fp.cluster_size)
            fp_red = f"{100 * (1 - fp.cluster_size / 8):.1f}%"
        paper = _PAPER[configuration]
        rows.append(
            [
                configuration,
                f"{makespan:.0f}",
                reduction,
                size,
                fp_red,
                f"(paper: {paper[0]} / {paper[1]} / {paper[2]})",
            ]
        )
    return format_table(
        [
            "config",
            "makespan (s)",
            "reduction vs MC",
            "footprint (nodes)",
            "footprint reduction",
            "paper reference",
        ],
        rows,
        title=(
            f"Table II: makespan & footprint, {result.job_count} Table-I jobs, "
            f"8-node cluster (MC utilization {100 * result.mc_utilization:.0f}%)"
        ),
    )
