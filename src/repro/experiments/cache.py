"""Content-addressed on-disk cache for simulation cells.

Every :class:`~repro.experiments.runner.SimTask` describes one
simulation cell by value (cell kind + primitive parameters), so its
result can be addressed by content: the SHA-256 of the canonicalised
task plus a *source fingerprint* of ``src/repro``. Re-running the
harness after an unrelated edit outside ``src/repro`` (docs, tests,
benchmarks) hits the cache and is near-instant; any edit to the
simulator source changes the fingerprint and invalidates everything —
cheap insurance against stale physics.

The resolved ``REPRO_SCALE`` / ``REPRO_FULL`` setting is folded into
the fingerprint as well: job counts derived from the scale already
appear in the task parameters, but the scale knob itself is part of
the experiment identity and keeping it in the key makes the
invalidation rule easy to state (see EXPERIMENTS.md).

Entries are one pickle file per key, written atomically (temp file +
``os.replace``), so a crashed or concurrent run never leaves a
half-written entry in place; a corrupted or truncated entry is treated
as a miss, deleted, and recomputed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Any, Optional, Tuple

from .common import bench_scale

#: Environment override for the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR``, else the XDG cache directory."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-experiments"


def canonical(value: Any) -> Any:
    """Reduce a task parameter to a JSON-serialisable canonical form.

    Dataclasses (``ClusterConfig``, ``XeonPhiSpec``, ...) are flattened
    to their qualified name plus sorted field values, containers are
    recursed, floats keep full ``repr`` precision, and anything exotic
    falls back to ``repr`` so two tasks only share a key when their
    parameters are observably identical.
    """
    if value is None or isinstance(value, (str, int, bool)):
        return value
    if isinstance(value, float):
        return {"__float__": repr(value)}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, dict):
        return {
            "__dict__": sorted(
                (str(k), canonical(v)) for k, v in value.items()
            )
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = sorted(
            (f.name, canonical(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
        return {"__dataclass__": type(value).__qualname__, "fields": fields}
    return {"__repr__": repr(value)}


@lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """SHA-256 over every ``*.py`` under ``src/repro`` plus the scale.

    Any change to the simulator source yields a new fingerprint and
    therefore a cold cache; nothing outside the package affects it.
    """
    root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    digest.update(f"scale={bench_scale():g}".encode())
    return digest.hexdigest()


def task_key(task: Any, fingerprint: str) -> str:
    """Content address of one task under one source fingerprint."""
    payload = json.dumps(
        [task.kind, canonical(task.params), fingerprint],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """On-disk pickle store addressed by :func:`task_key`.

    The cache is best-effort: I/O failures on read are misses, failures
    on write are ignored (the computed value is still returned to the
    caller), so a read-only or full disk degrades to "no cache" rather
    than failing the run.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.fingerprint = (
            fingerprint if fingerprint is not None else source_fingerprint()
        )
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def key_for(self, task: Any) -> str:
        return task_key(task, self.fingerprint)

    def get(self, task: Any) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit; ``(False, None)`` otherwise.

        A corrupted or truncated entry (unpicklable bytes) is deleted
        and reported as a miss so the cell is recomputed and rewritten.
        """
        path = self._path(self.key_for(task))
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:
            # Truncated write, foreign bytes, unpicklable garbage:
            # drop the entry and recompute.
            path.unlink(missing_ok=True)
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, task: Any, value: Any) -> None:
        """Atomically persist one cell value (best-effort)."""
        path = self._path(self.key_for(task))
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except (OSError, pickle.PicklingError):
            pass

    def clear(self) -> None:
        """Delete the whole cache directory."""
        shutil.rmtree(self.root, ignore_errors=True)
