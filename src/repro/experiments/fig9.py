"""E6 — Fig. 9: effect of cluster size, per resource distribution.

Makespan of the fixed 400-job synthetic sets on clusters of increasing
size. Expected shape (paper): at very small clusters the job pressure is
so high that any sharing (even random) wins and MCCK ~ MCC; as the
cluster grows, cluster-level decisions matter more and MCCK's margin over
MCC widens, while all sharing gains shrink relative to MC.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import ClusterConfig, run_configuration
from ..metrics import format_series
from ..workloads import DISTRIBUTIONS, generate_synthetic_jobs
from .common import DEFAULT_SEED, PAPER_CLUSTER

#: The cluster sizes Fig. 9's x-axis spans.
DEFAULT_SIZES = (2, 3, 4, 5, 6, 8)


@dataclass
class Fig9Result:
    job_count: int
    sizes: tuple[int, ...]
    #: makespans[distribution][configuration] -> list aligned with sizes
    makespans: dict[str, dict[str, list[float]]]


def run(
    jobs: int = 400,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = DISTRIBUTIONS,
) -> Fig9Result:
    makespans: dict[str, dict[str, list[float]]] = {}
    for distribution in distributions:
        job_set = generate_synthetic_jobs(jobs, distribution, seed=seed)
        series: dict[str, list[float]] = {"MC": [], "MCC": [], "MCCK": []}
        for size in sizes:
            sized = config.resized(size)
            for configuration in series:
                series[configuration].append(
                    run_configuration(configuration, job_set, sized).makespan
                )
        makespans[distribution] = series
    return Fig9Result(job_count=jobs, sizes=sizes, makespans=makespans)


def render(result: Fig9Result) -> str:
    blocks = [
        f"Fig. 9: makespan vs cluster size ({result.job_count} synthetic jobs)"
    ]
    for distribution, series in result.makespans.items():
        blocks.append(
            format_series(
                "nodes",
                list(result.sizes),
                series,
                title=f"\n[{distribution}]",
            )
        )
    return "\n".join(blocks)
