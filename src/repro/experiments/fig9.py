"""E6 — Fig. 9: effect of cluster size, per resource distribution.

Makespan of the fixed 400-job synthetic sets on clusters of increasing
size. Expected shape (paper): at very small clusters the job pressure is
so high that any sharing (even random) wins and MCCK ~ MCC; as the
cluster grows, cluster-level decisions matter more and MCCK's margin over
MCC widens, while all sharing gains shrink relative to MC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import ClusterConfig
from ..metrics import format_series
from ..workloads import DISTRIBUTIONS
from .common import DEFAULT_SEED, PAPER_CLUSTER
from .runner import SimTask, TaskRunner, execute, sim_task

#: The cluster sizes Fig. 9's x-axis spans.
DEFAULT_SIZES = (2, 3, 4, 5, 6, 8)

_CONFIGURATIONS = ("MC", "MCC", "MCCK")


@dataclass
class Fig9Result:
    job_count: int
    sizes: tuple[int, ...]
    #: makespans[distribution][configuration] -> list aligned with sizes
    makespans: dict[str, dict[str, list[float]]]


def tasks(
    jobs: int = 400,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = DISTRIBUTIONS,
) -> list[SimTask]:
    return [
        sim_task(
            "fig9", configuration, config.resized(size),
            ("synthetic", jobs, distribution, seed),
            label=f"{distribution}/{configuration}@n{size}",
        )
        for distribution in distributions
        for size in sizes
        for configuration in _CONFIGURATIONS
    ]


def merge(
    values: list,
    jobs: int = 400,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = DISTRIBUTIONS,
) -> Fig9Result:
    cursor = iter(values)
    makespans: dict[str, dict[str, list[float]]] = {}
    for distribution in distributions:
        series: dict[str, list[float]] = {c: [] for c in _CONFIGURATIONS}
        for _size in sizes:
            for configuration in _CONFIGURATIONS:
                series[configuration].append(next(cursor)["makespan"])
        makespans[distribution] = series
    return Fig9Result(job_count=jobs, sizes=sizes, makespans=makespans)


def run(
    jobs: int = 400,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = DISTRIBUTIONS,
    runner: Optional[TaskRunner] = None,
) -> Fig9Result:
    grid = tasks(
        jobs=jobs, sizes=sizes, config=config, seed=seed,
        distributions=distributions,
    )
    values = execute(grid, runner)
    return merge(
        values, jobs=jobs, sizes=sizes, config=config, seed=seed,
        distributions=distributions,
    )


def render(result: Fig9Result) -> str:
    blocks = [
        f"Fig. 9: makespan vs cluster size ({result.job_count} synthetic jobs)"
    ]
    for distribution, series in result.makespans.items():
        blocks.append(
            format_series(
                "nodes",
                list(result.sizes),
                series,
                title=f"\n[{distribution}]",
            )
        )
    return "\n".join(blocks)
