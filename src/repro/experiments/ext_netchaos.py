"""X6 — extension: goodput under an unreliable daemon network.

The paper's pools assume daemons reach each other instantly and
reliably. Real Condor pools do not: matches, claim activations, and
machine-ad updates cross a network that delays, drops, duplicates, and
occasionally partitions. This extension routes every daemon pair through
the seeded :class:`~repro.net.fabric.MessageFabric` at increasing loss
rates and asks what the sharing stacks pay for robustness:

* **goodput** — jobs completed per simulated hour;
* **makespan** — queue-drain including retransmit and lease-recovery
  latency;
* the transport ledger — retransmits, duplicates dropped, lease
  expiries, claims lost, match timeouts.

The loss-0 column runs with no fabric at all (``net=None``), so it
reproduces the paper's baseline tables byte-for-byte; fabric cells use
``NetProfile.chaos(loss)`` with the net seed derived from the experiment
seed (:func:`~repro.net.profile.derive_net_seed`), making the whole grid
as deterministic as the fault-free experiments. The fabric profile is a
frozen dataclass inside the task parameters, so it participates in the
result-cache key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import ClusterConfig
from ..metrics import format_table
from ..net import NetProfile, PartitionSpec, derive_net_seed
from .common import DEFAULT_SEED, PAPER_CLUSTER
from .runner import SimTask, TaskRunner, execute

#: Per-message loss probabilities (0 = the paper's in-process baseline).
DEFAULT_LOSSES = (0.0, 0.02, 0.05, 0.10)

_CONFIGURATIONS = ("MC", "MCC", "MCCK")


@dataclass
class NetChaosResult:
    job_count: int
    losses: tuple[float, ...]
    #: configuration -> per-loss cell dicts (aligned with ``losses``).
    cells: dict[str, list[dict]]

    def goodput(self, configuration: str) -> list[float]:
        """Completed jobs per simulated hour, per loss rate."""
        out = []
        for cell in self.cells[configuration]:
            makespan = cell["makespan"]
            out.append(
                3600.0 * cell["completed"] / makespan if makespan > 0 else 0.0
            )
        return out


def _profile(
    loss: float,
    partitions: tuple[PartitionSpec, ...] = (),
    delay_s: Optional[float] = None,
) -> Optional[NetProfile]:
    """Fabric profile for one loss column; ``None`` keeps the pool direct."""
    if loss <= 0 and not partitions:
        return None
    if delay_s is not None:
        return NetProfile.chaos(loss, delay_base_s=delay_s, partitions=partitions)
    return NetProfile.chaos(loss, partitions=partitions)


def tasks(
    jobs: int = 200,
    losses: tuple[float, ...] = DEFAULT_LOSSES,
    partitions: tuple[PartitionSpec, ...] = (),
    delay_s: Optional[float] = None,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> list[SimTask]:
    workload = ("table1", jobs, seed)
    net_seed = derive_net_seed(seed)
    grid: list[SimTask] = []
    for loss in losses:
        for configuration in _CONFIGURATIONS:
            grid.append(
                SimTask.make(
                    "ext-netchaos",
                    "sim-net",
                    label=f"{configuration}@loss{loss:g}",
                    configuration=configuration,
                    config=config,
                    workload=workload,
                    net=_profile(loss, partitions, delay_s),
                    net_seed=net_seed,
                )
            )
    return grid


def merge(
    values: list,
    jobs: int = 200,
    losses: tuple[float, ...] = DEFAULT_LOSSES,
    partitions: tuple[PartitionSpec, ...] = (),
    delay_s: Optional[float] = None,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> NetChaosResult:
    cursor = iter(values)
    cells: dict[str, list[dict]] = {c: [] for c in _CONFIGURATIONS}
    for _loss in losses:
        for configuration in _CONFIGURATIONS:
            cells[configuration].append(next(cursor))
    return NetChaosResult(job_count=jobs, losses=losses, cells=cells)


def run(
    jobs: int = 200,
    losses: tuple[float, ...] = DEFAULT_LOSSES,
    partitions: tuple[PartitionSpec, ...] = (),
    delay_s: Optional[float] = None,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    runner: Optional[TaskRunner] = None,
) -> NetChaosResult:
    grid = tasks(
        jobs=jobs, losses=losses, partitions=partitions, delay_s=delay_s,
        config=config, seed=seed,
    )
    values = execute(grid, runner)
    return merge(
        values, jobs=jobs, losses=losses, partitions=partitions,
        delay_s=delay_s, config=config, seed=seed,
    )


def render(result: NetChaosResult) -> str:
    headers = [
        "loss", "config", "goodput/h", "makespan", "completed",
        "retrans", "dup-drop", "lease-exp", "claims-lost", "match-to",
    ]
    rows = []
    for i, loss in enumerate(result.losses):
        for configuration in _CONFIGURATIONS:
            cell = result.cells[configuration][i]
            rows.append(
                [
                    f"{loss:g}",
                    configuration,
                    f"{result.goodput(configuration)[i]:.0f}",
                    f"{cell['makespan']:.0f}",
                    cell["completed"],
                    cell["retransmits"],
                    cell["dup_dropped"],
                    cell["lease_expiries"],
                    cell["claims_lost"],
                    cell["match_timeouts"],
                ]
            )
    table = format_table(
        headers,
        rows,
        title=(
            f"X6: goodput under an unreliable daemon network "
            f"({result.job_count} Table-I jobs, {PAPER_CLUSTER.nodes} nodes)"
        ),
    )
    return table + (
        "\nLoss 0 runs the daemons in-process and reproduces the paper's"
        "\ntables exactly. Under loss, every daemon message rides the"
        "\nat-least-once fabric: retransmits recover drops, duplicate"
        "\ndeliveries are deduplicated, and claims whose lease renewals"
        "\nstall are killed on the startd and requeued by the schedd —"
        "\nno job is lost or run twice (asserted by --audit)."
    )
