"""Experiment modules: one per table/figure of the paper, plus ablations.

Run from the command line::

    python -m repro.experiments <name>      # motivation, table2, fig7, ...
    python -m repro.experiments all
    python -m repro.experiments all --jobs 4   # process-pool fan-out

Each module exposes ``run(...)`` returning a structured result and
``render(result)`` producing the paper-style rows. Grid-based modules
additionally expose ``tasks(...)`` (the picklable cell grid) and
``merge(values, ...)`` so :mod:`repro.experiments.runner` can fan the
cells out over worker processes and serve repeats from the
content-addressed cache in :mod:`repro.experiments.cache`.
"""

from . import (
    cache,
    runner,
)
from . import (
    ablation_cycle,
    ablation_knapsack,
    ablation_placement,
    ablation_value,
    common,
    ext_capacity,
    ext_crash,
    ext_faults,
    ext_multidevice,
    ext_netchaos,
    ext_oversubscription,
    ext_replication,
    ext_scale,
    fig7,
    fig8,
    fig9,
    fig10,
    motivation,
    table2,
    table3,
)

#: Registry used by the CLI and the benchmark harness.
EXPERIMENTS = {
    "motivation": motivation,
    "table2": table2,
    "table3": table3,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "ablation-value": ablation_value,
    "ablation-knapsack": ablation_knapsack,
    "ablation-cycle": ablation_cycle,
    "ablation-placement": ablation_placement,
    "ext-capacity": ext_capacity,
    "ext-crash": ext_crash,
    "ext-faults": ext_faults,
    "ext-multidevice": ext_multidevice,
    "ext-netchaos": ext_netchaos,
    "ext-oversubscription": ext_oversubscription,
    "ext-replication": ext_replication,
    "ext-scale": ext_scale,
}

__all__ = [
    "EXPERIMENTS",
    "cache",
    "runner",
    "ablation_cycle",
    "ablation_knapsack",
    "ablation_placement",
    "ablation_value",
    "common",
    "ext_capacity",
    "ext_crash",
    "ext_faults",
    "ext_multidevice",
    "ext_netchaos",
    "ext_oversubscription",
    "ext_replication",
    "ext_scale",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "motivation",
    "table2",
    "table3",
]
