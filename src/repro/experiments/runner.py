"""Parallel experiment runner: task grids over a process pool.

The paper's evaluation decomposes into hundreds of independent
simulation *cells* — one ``run_configuration`` call per (workload x
cluster shape x software stack) point — and every cell owns its own
:class:`~repro.sim.Environment`, so the harness is embarrassingly
parallel. Experiment modules declare their grid as picklable
:class:`SimTask` values (``tasks()``), a pure function reconstructs
each cell from its parameters (``compute_task``), and a deterministic
``merge()`` folds the cell values — in grid order, never completion
order — back into the module's result dataclass. Parallel output is
therefore byte-identical to sequential output (asserted in
``tests/test_runner_determinism.py``).

:class:`TaskRunner` fans cache misses out over a
``ProcessPoolExecutor`` and consults the content-addressed
:class:`~repro.experiments.cache.ResultCache` first, so a warm rerun
touches no simulator code at all.

Cell kinds
----------
``sim``
    The shared workhorse: one ``run_configuration`` call described by
    ``configuration`` (MC / MCC / MCCK), a ``config``
    (:class:`~repro.cluster.ClusterConfig`, already resized/tuned) and
    a ``workload`` spec (see :func:`repro.experiments.common.make_workload`).
    Because the cache key ignores the experiment name, identical cells
    are shared across experiments — fig8's 8-node cells are the same
    entries fig9 computes for its size sweep.
``run:<experiment>``
    A whole-experiment task for modules that are cheap or exact
    (fig7, ext-oversubscription): the worker calls ``module.run``.
``<experiment>.<name>``
    Module-specific cells (the ablations) dispatched to the module's
    ``compute(task)``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Tuple

from ..cluster import run_configuration
from ..obs import audit as _audit
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .cache import ResultCache
from .common import make_workload


def _freeze(value: Any) -> Any:
    """Make a parameter value hashable/stable (dicts and lists ordered)."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class SimTask:
    """One picklable simulation cell.

    ``params`` is a sorted tuple of ``(name, value)`` pairs built from
    primitives and frozen dataclasses only, so a task can be pickled to
    a worker process and content-addressed for the cache. ``label`` is
    display-only and excluded from equality and the cache key.
    """

    experiment: str
    kind: str
    params: Tuple[Tuple[str, Any], ...]
    label: str = field(default="", compare=False)

    @classmethod
    def make(
        cls, experiment: str, kind: str, label: str = "", **params: Any
    ) -> "SimTask":
        frozen = tuple(sorted((k, _freeze(v)) for k, v in params.items()))
        return cls(experiment, kind, frozen, label or kind)

    def kwargs(self) -> dict:
        return dict(self.params)


def sim_task(
    experiment: str,
    configuration: str,
    config: Any,
    workload: Tuple[Any, ...],
    label: str = "",
) -> SimTask:
    """The common cell: one configuration on one workload and cluster."""
    return SimTask.make(
        experiment,
        "sim",
        label=label or f"{configuration}@n{config.nodes}",
        configuration=configuration,
        config=config,
        workload=workload,
    )


def compute_task(task: SimTask) -> Any:
    """Recompute one cell from its parameters (runs in worker processes)."""
    # Each cell's sim clock restarts at zero, so the tracer and the
    # metrics registry partition their output per cell. In parallel mode
    # the workers are separate processes where ACTIVE is None — tracing
    # is a single-process (--jobs 1) feature, like --profile and --audit.
    label = f"{task.experiment}/{task.label}"
    if _trace.ACTIVE is not None:
        _trace.ACTIVE.enter_cell(label)
    if _metrics.ACTIVE is not None:
        _metrics.ACTIVE.enter_cell(label)
    auditor = _audit.ACTIVE
    if auditor is None:
        return _compute_value(task)
    # Scope the auditor's ledgers to this cell; finish_cell runs the
    # end-of-cell reconciliation checks (and raises on a violation).
    auditor.enter_cell(label)
    value = _compute_value(task)
    auditor.finish_cell()
    return value


def _compute_value(task: SimTask) -> Any:
    if task.kind == "sim":
        p = task.kwargs()
        job_set = make_workload(p["workload"])
        result = run_configuration(p["configuration"], job_set, p["config"])
        return {
            "makespan": result.makespan,
            "utilization": result.mean_core_utilization,
        }
    if task.kind == "sim-faults":
        p = task.kwargs()
        job_set = make_workload(p["workload"])
        result = run_configuration(
            p["configuration"],
            job_set,
            p["config"],
            faults=p["faults"],
            fault_seed=p["fault_seed"],
        )
        return {
            "makespan": result.makespan,
            "utilization": result.mean_core_utilization,
            "jobs": result.job_count,
            "completed": result.completed_jobs,
            "killed": result.memory_limit_kills,
            "failed": result.infra_failed_jobs,
            "requeues": result.requeues,
            "retried": result.retried_completed,
            "faults_injected": result.faults_injected,
        }
    if task.kind == "sim-crash":
        p = task.kwargs()
        job_set = make_workload(p["workload"])
        result = run_configuration(
            p["configuration"],
            job_set,
            p["config"],
            faults=p["faults"],
            fault_seed=p["fault_seed"],
            net=p["net"],
            net_seed=p["net_seed"],
        )
        return {
            "makespan": result.makespan,
            "utilization": result.mean_core_utilization,
            "jobs": result.job_count,
            "completed": result.completed_jobs,
            "failed": result.infra_failed_jobs,
            "requeues": result.requeues,
            "retried": result.retried_completed,
            "crashes": result.daemon_crashes,
            "recoveries": result.schedd_recoveries,
            "wal_records": result.wal_records,
            "wal_replayed": result.wal_replayed,
            "readopted": result.jobs_readopted,
        }
    if task.kind == "sim-net":
        p = task.kwargs()
        job_set = make_workload(p["workload"])
        result = run_configuration(
            p["configuration"],
            job_set,
            p["config"],
            net=p["net"],
            net_seed=p["net_seed"],
        )
        return {
            "makespan": result.makespan,
            "utilization": result.mean_core_utilization,
            "jobs": result.job_count,
            "completed": result.completed_jobs,
            "failed": result.infra_failed_jobs,
            "requeues": result.requeues,
            "messages": result.net_messages,
            "retransmits": result.net_retransmits,
            "dup_dropped": result.net_duplicates_dropped,
            "lease_expiries": result.lease_expiries,
            "claims_lost": result.claims_lost,
            "match_timeouts": result.match_timeouts,
        }
    # Imported lazily: the registry imports the experiment modules,
    # which import this module for SimTask/execute.
    from . import EXPERIMENTS

    module = EXPERIMENTS[task.experiment]
    if task.kind == f"run:{task.experiment}":
        return module.run(**task.kwargs())
    return module.compute(task)


def _timed_compute(task: SimTask) -> Tuple[Any, float]:
    started = time.perf_counter()
    value = compute_task(task)
    return value, time.perf_counter() - started


@dataclass
class CellOutcome:
    """One executed (or cache-served) cell, with provenance for the CLI."""

    task: SimTask
    value: Any
    seconds: float
    cached: bool


class TaskRunner:
    """Execute task grids: cache first, then a process pool for misses.

    ``workers <= 1`` computes misses inline (no pool, no pickling
    round-trip), which is also the mode used when an experiment's
    ``run()`` is called directly without a runner.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.cache = cache
        self.outcomes: list[CellOutcome] = []

    def map_tasks(self, tasks: Sequence[SimTask]) -> list[CellOutcome]:
        """Run every task, returning outcomes in task order."""
        outcomes: list[Optional[CellOutcome]] = [None] * len(tasks)
        first_index: dict[SimTask, int] = {}
        duplicates: dict[int, int] = {}
        miss_indices: list[int] = []
        for i, task in enumerate(tasks):
            if self.cache is not None:
                hit, value = self.cache.get(task)
                if hit:
                    outcomes[i] = CellOutcome(task, value, 0.0, True)
                    continue
            # Identical cells within one grid (e.g. fig8's 8-node cells
            # reappear in fig9's size sweep) are computed once and
            # fanned back out.
            if task in first_index:
                duplicates[i] = first_index[task]
                continue
            first_index[task] = i
            miss_indices.append(i)

        if miss_indices:
            missing = [tasks[i] for i in miss_indices]
            if self.workers <= 1 or len(missing) == 1:
                computed = [_timed_compute(task) for task in missing]
            else:
                max_workers = min(self.workers, len(missing))
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    computed = list(
                        pool.map(_timed_compute, missing, chunksize=1)
                    )
            for i, (value, seconds) in zip(miss_indices, computed):
                outcomes[i] = CellOutcome(tasks[i], value, seconds, False)
                if self.cache is not None:
                    self.cache.put(tasks[i], value)

        for i, source in duplicates.items():
            original = outcomes[source]
            assert original is not None
            outcomes[i] = CellOutcome(tasks[i], original.value, 0.0, True)

        final = [outcome for outcome in outcomes if outcome is not None]
        assert len(final) == len(tasks)
        self.outcomes.extend(final)
        return final

    @property
    def computed(self) -> int:
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def served_from_cache(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)


def execute(tasks: Sequence[SimTask], runner: Optional[TaskRunner] = None) -> list[Any]:
    """Cell values for a grid: inline when no runner is supplied."""
    if runner is None:
        return [compute_task(task) for task in tasks]
    return [outcome.value for outcome in runner.map_tasks(tasks)]
