"""E8 — Fig. 10: makespan under constant job pressure.

The paper scales the job count with the cluster (200 jobs per node:
400 jobs at 2 nodes up to 1600 at 8) under the normal distribution, to
show that cluster-level scheduling still pays at high job pressure on
larger clusters: at 8 nodes the paper reports MCCK ~11% better than MCC
and ~40% better than MC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import ClusterConfig
from ..metrics import format_series, percent_reduction
from .common import DEFAULT_SEED, PAPER_CLUSTER
from .runner import SimTask, TaskRunner, execute, sim_task

DEFAULT_SIZES = (2, 4, 6, 8)
JOBS_PER_NODE = 200

_CONFIGURATIONS = ("MC", "MCC", "MCCK")


@dataclass
class Fig10Result:
    sizes: tuple[int, ...]
    job_counts: list[int]
    makespans: dict[str, list[float]]  # configuration -> aligned with sizes

    def final_reduction(self, configuration: str) -> float:
        return percent_reduction(
            self.makespans["MC"][-1], self.makespans[configuration][-1]
        )


def tasks(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    jobs_per_node: int = JOBS_PER_NODE,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distribution: str = "normal",
) -> list[SimTask]:
    return [
        sim_task(
            "fig10", configuration, config.resized(size),
            ("synthetic", jobs_per_node * size, distribution, seed),
            label=f"{configuration}@n{size}x{jobs_per_node}",
        )
        for size in sizes
        for configuration in _CONFIGURATIONS
    ]


def merge(
    values: list,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    jobs_per_node: int = JOBS_PER_NODE,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distribution: str = "normal",
) -> Fig10Result:
    cursor = iter(values)
    makespans: dict[str, list[float]] = {c: [] for c in _CONFIGURATIONS}
    job_counts: list[int] = []
    for size in sizes:
        job_counts.append(jobs_per_node * size)
        for configuration in _CONFIGURATIONS:
            makespans[configuration].append(next(cursor)["makespan"])
    return Fig10Result(sizes=sizes, job_counts=job_counts, makespans=makespans)


def run(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    jobs_per_node: int = JOBS_PER_NODE,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distribution: str = "normal",
    runner: Optional[TaskRunner] = None,
) -> Fig10Result:
    grid = tasks(
        sizes=sizes, jobs_per_node=jobs_per_node, config=config, seed=seed,
        distribution=distribution,
    )
    values = execute(grid, runner)
    return merge(
        values, sizes=sizes, jobs_per_node=jobs_per_node, config=config,
        seed=seed, distribution=distribution,
    )


def render(result: Fig10Result) -> str:
    table = format_series(
        "nodes(jobs)",
        [f"{n}({j})" for n, j in zip(result.sizes, result.job_counts)],
        result.makespans,
        title=(
            "Fig. 10: makespan with constant job pressure "
            f"({JOBS_PER_NODE} jobs/node, normal distribution)"
        ),
    )
    return table + (
        f"\nat the largest size: MCC -{result.final_reduction('MCC'):.0f}%, "
        f"MCCK -{result.final_reduction('MCCK'):.0f}% vs MC "
        "(paper: MCCK -40% vs MC, -11% vs MCC)"
    )
