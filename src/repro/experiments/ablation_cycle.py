"""A3 — ablation: negotiation-cycle interval sensitivity.

The paper attributes MCCK's small degradation on the high-skew
distribution to "having to wait for Condor's scheduling cycle" (§V-B):
every knapsack decision only takes effect at the next negotiation cycle.
This ablation sweeps the cycle interval for MCC and MCCK on the normal
and high-skew sets to quantify that integration overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..cluster import ClusterConfig
from ..metrics import format_series
from .common import DEFAULT_SEED, PAPER_CLUSTER
from .runner import SimTask, TaskRunner, execute, sim_task

DEFAULT_INTERVALS = (2.0, 5.0, 10.0, 20.0, 40.0)

_SERIES = ("MCC", "MCCK", "MCCK+resched")


@dataclass
class CycleAblationResult:
    job_count: int
    intervals: tuple[float, ...]
    #: makespans[distribution][configuration] -> aligned with intervals
    makespans: dict[str, dict[str, list[float]]]


def tasks(
    jobs: int = 400,
    intervals: tuple[float, ...] = DEFAULT_INTERVALS,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = ("normal", "high-skew"),
) -> list[SimTask]:
    grid: list[SimTask] = []
    for distribution in distributions:
        workload = ("synthetic", jobs, distribution, seed)
        for interval in intervals:
            tuned = replace(config, cycle_interval=interval)
            # condor_reschedule: completions trigger extra cycles, which
            # should largely flatten MCCK's sensitivity to the interval.
            resched = replace(tuned, reschedule_on_completion=True)
            for name, configuration, cell_config in (
                ("MCC", "MCC", tuned),
                ("MCCK", "MCCK", tuned),
                ("MCCK+resched", "MCCK", resched),
            ):
                grid.append(
                    sim_task(
                        "ablation-cycle", configuration, cell_config, workload,
                        label=f"{distribution}/{name}@{interval:g}s",
                    )
                )
    return grid


def merge(
    values: list,
    jobs: int = 400,
    intervals: tuple[float, ...] = DEFAULT_INTERVALS,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = ("normal", "high-skew"),
) -> CycleAblationResult:
    cursor = iter(values)
    makespans: dict[str, dict[str, list[float]]] = {}
    for distribution in distributions:
        series: dict[str, list[float]] = {name: [] for name in _SERIES}
        for _interval in intervals:
            for name in _SERIES:
                series[name].append(next(cursor)["makespan"])
        makespans[distribution] = series
    return CycleAblationResult(
        job_count=jobs, intervals=intervals, makespans=makespans
    )


def run(
    jobs: int = 400,
    intervals: tuple[float, ...] = DEFAULT_INTERVALS,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = ("normal", "high-skew"),
    runner: Optional[TaskRunner] = None,
) -> CycleAblationResult:
    grid = tasks(
        jobs=jobs, intervals=intervals, config=config, seed=seed,
        distributions=distributions,
    )
    values = execute(grid, runner)
    return merge(
        values, jobs=jobs, intervals=intervals, config=config, seed=seed,
        distributions=distributions,
    )


def render(result: CycleAblationResult) -> str:
    blocks = [
        f"A3: makespan vs negotiation-cycle interval ({result.job_count} jobs, 8 nodes)"
    ]
    for distribution, series in result.makespans.items():
        blocks.append(
            format_series(
                "cycle (s)",
                [f"{i:g}" for i in result.intervals],
                series,
                title=f"\n[{distribution}]",
            )
        )
    return "\n".join(blocks)
