"""A3 — ablation: negotiation-cycle interval sensitivity.

The paper attributes MCCK's small degradation on the high-skew
distribution to "having to wait for Condor's scheduling cycle" (§V-B):
every knapsack decision only takes effect at the next negotiation cycle.
This ablation sweeps the cycle interval for MCC and MCCK on the normal
and high-skew sets to quantify that integration overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import replace

from ..cluster import ClusterConfig, run_mcc, run_mcck
from ..metrics import format_series
from ..workloads import generate_synthetic_jobs
from .common import DEFAULT_SEED, PAPER_CLUSTER

DEFAULT_INTERVALS = (2.0, 5.0, 10.0, 20.0, 40.0)


@dataclass
class CycleAblationResult:
    job_count: int
    intervals: tuple[float, ...]
    #: makespans[distribution][configuration] -> aligned with intervals
    makespans: dict[str, dict[str, list[float]]]


def run(
    jobs: int = 400,
    intervals: tuple[float, ...] = DEFAULT_INTERVALS,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = ("normal", "high-skew"),
) -> CycleAblationResult:
    makespans: dict[str, dict[str, list[float]]] = {}
    for distribution in distributions:
        job_set = generate_synthetic_jobs(jobs, distribution, seed=seed)
        series: dict[str, list[float]] = {"MCC": [], "MCCK": [],
                                          "MCCK+resched": []}
        for interval in intervals:
            tuned = replace(config, cycle_interval=interval)
            series["MCC"].append(run_mcc(job_set, tuned).makespan)
            series["MCCK"].append(run_mcck(job_set, tuned).makespan)
            # condor_reschedule: completions trigger extra cycles, which
            # should largely flatten MCCK's sensitivity to the interval.
            resched = replace(tuned, reschedule_on_completion=True)
            series["MCCK+resched"].append(run_mcck(job_set, resched).makespan)
        makespans[distribution] = series
    return CycleAblationResult(
        job_count=jobs, intervals=intervals, makespans=makespans
    )


def render(result: CycleAblationResult) -> str:
    blocks = [
        f"A3: makespan vs negotiation-cycle interval ({result.job_count} jobs, 8 nodes)"
    ]
    for distribution, series in result.makespans.items():
        blocks.append(
            format_series(
                "cycle (s)",
                [f"{i:g}" for i in result.intervals],
                series,
                title=f"\n[{distribution}]",
            )
        )
    return "\n".join(blocks)
