"""E1 — §III motivation: coprocessor utilization under exclusive allocation.

The paper's motivating measurement: with Condor dedicating each Xeon Phi
to one job, average core utilization across the cluster is only ~50% for
the real (Table I) mix and 38-63% across synthetic resource
distributions. This experiment reruns that measurement on the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import ClusterConfig
from ..metrics import format_table
from ..workloads import DISTRIBUTIONS
from .common import DEFAULT_SEED, PAPER_CLUSTER
from .runner import SimTask, TaskRunner, execute, sim_task


@dataclass
class MotivationResult:
    """Mean MC core utilization per workload."""

    real_mix_utilization: float
    synthetic_utilization: dict[str, float]
    job_counts: dict[str, int]

    @property
    def synthetic_band(self) -> tuple[float, float]:
        values = self.synthetic_utilization.values()
        return (min(values), max(values))


def tasks(
    real_jobs: int = 1000,
    synthetic_jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> list[SimTask]:
    grid = [
        sim_task(
            "motivation", "MC", config, ("table1", real_jobs, seed),
            label="table1/MC",
        )
    ]
    for distribution in DISTRIBUTIONS:
        grid.append(
            sim_task(
                "motivation", "MC", config,
                ("synthetic", synthetic_jobs, distribution, seed),
                label=f"{distribution}/MC",
            )
        )
    return grid


def merge(
    values: list,
    real_jobs: int = 1000,
    synthetic_jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> MotivationResult:
    counts = {"real": real_jobs}
    synthetic: dict[str, float] = {}
    for distribution, value in zip(DISTRIBUTIONS, values[1:]):
        synthetic[distribution] = value["utilization"]
        counts[distribution] = synthetic_jobs
    return MotivationResult(
        real_mix_utilization=values[0]["utilization"],
        synthetic_utilization=synthetic,
        job_counts=counts,
    )


def run(
    real_jobs: int = 1000,
    synthetic_jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    runner: Optional[TaskRunner] = None,
) -> MotivationResult:
    grid = tasks(
        real_jobs=real_jobs, synthetic_jobs=synthetic_jobs, config=config,
        seed=seed,
    )
    values = execute(grid, runner)
    return merge(
        values, real_jobs=real_jobs, synthetic_jobs=synthetic_jobs,
        config=config, seed=seed,
    )


def render(result: MotivationResult) -> str:
    rows = [
        [
            "Table-I mix",
            result.job_counts["real"],
            f"{100 * result.real_mix_utilization:.1f}%",
            "~50%",
        ]
    ]
    paper_band = {"band": "38%-63%"}
    for name, value in result.synthetic_utilization.items():
        rows.append(
            [name, result.job_counts[name], f"{100 * value:.1f}%", paper_band["band"]]
        )
    lo, hi = result.synthetic_band
    table = format_table(
        ["workload", "jobs", "MC core utilization", "paper"],
        rows,
        title="E1 (motivation, SIII): Xeon Phi core utilization under exclusive allocation",
    )
    return table + f"\nsynthetic band: {100 * lo:.1f}%-{100 * hi:.1f}%"
