"""E1 — §III motivation: coprocessor utilization under exclusive allocation.

The paper's motivating measurement: with Condor dedicating each Xeon Phi
to one job, average core utilization across the cluster is only ~50% for
the real (Table I) mix and 38-63% across synthetic resource
distributions. This experiment reruns that measurement on the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import ClusterConfig, run_mc
from ..metrics import format_table
from ..workloads import DISTRIBUTIONS, generate_synthetic_jobs, generate_table1_jobs
from .common import DEFAULT_SEED, PAPER_CLUSTER


@dataclass
class MotivationResult:
    """Mean MC core utilization per workload."""

    real_mix_utilization: float
    synthetic_utilization: dict[str, float]
    job_counts: dict[str, int]

    @property
    def synthetic_band(self) -> tuple[float, float]:
        values = self.synthetic_utilization.values()
        return (min(values), max(values))


def run(
    real_jobs: int = 1000,
    synthetic_jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> MotivationResult:
    real = run_mc(generate_table1_jobs(real_jobs, seed=seed), config)
    synthetic: dict[str, float] = {}
    counts = {"real": real_jobs}
    for distribution in DISTRIBUTIONS:
        jobs = generate_synthetic_jobs(synthetic_jobs, distribution, seed=seed)
        synthetic[distribution] = run_mc(jobs, config).mean_core_utilization
        counts[distribution] = synthetic_jobs
    return MotivationResult(
        real_mix_utilization=real.mean_core_utilization,
        synthetic_utilization=synthetic,
        job_counts=counts,
    )


def render(result: MotivationResult) -> str:
    rows = [
        [
            "Table-I mix",
            result.job_counts["real"],
            f"{100 * result.real_mix_utilization:.1f}%",
            "~50%",
        ]
    ]
    paper_band = {"band": "38%-63%"}
    for name, value in result.synthetic_utilization.items():
        rows.append(
            [name, result.job_counts[name], f"{100 * value:.1f}%", paper_band["band"]]
        )
    lo, hi = result.synthetic_band
    table = format_table(
        ["workload", "jobs", "MC core utilization", "paper"],
        rows,
        title="E1 (motivation, SIII): Xeon Phi core utilization under exclusive allocation",
    )
    return table + f"\nsynthetic band: {100 * lo:.1f}%-{100 * hi:.1f}%"
