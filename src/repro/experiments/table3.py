"""E7 — Table III: footprint reduction per resource distribution.

For each synthetic distribution: the smallest cluster whose MCC / MCCK
makespan matches the 8-node MC baseline. Paper: MCCK 5 / 5 / 3 / 6 nodes
(uniform / normal / low-skew / high-skew) vs MCC 6 / 6 / 4 / 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import ClusterConfig, run_mc, run_mcc, run_mcck
from ..metrics import FootprintResult, find_footprint, format_table
from ..workloads import DISTRIBUTIONS, generate_synthetic_jobs
from .common import DEFAULT_SEED, PAPER_CLUSTER


@dataclass
class Table3Result:
    job_count: int
    #: footprints[distribution][configuration]
    footprints: dict[str, dict[str, FootprintResult]]
    mc_makespans: dict[str, float]


def run(
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = DISTRIBUTIONS,
) -> Table3Result:
    footprints: dict[str, dict[str, FootprintResult]] = {}
    mc_makespans: dict[str, float] = {}
    for distribution in distributions:
        job_set = generate_synthetic_jobs(jobs, distribution, seed=seed)
        target = run_mc(job_set, config).makespan
        mc_makespans[distribution] = target
        footprints[distribution] = {
            "MCC": find_footprint(
                lambda n: run_mcc(job_set, config.resized(n)).makespan,
                target, max_size=config.nodes,
            ),
            "MCCK": find_footprint(
                lambda n: run_mcck(job_set, config.resized(n)).makespan,
                target, max_size=config.nodes,
            ),
        }
    return Table3Result(
        job_count=jobs, footprints=footprints, mc_makespans=mc_makespans
    )


_PAPER = {
    "uniform": ("6 (25%)", "5 (37.5%)"),
    "normal": ("6 (25%)", "5 (37.5%)"),
    "low-skew": ("4 (50%)", "3 (62.5%)"),
    "high-skew": ("6 (25%)", "6 (25%)"),
}


def _cell(fp: FootprintResult, reference: int) -> str:
    if fp.cluster_size is None:
        return f">{reference}"
    reduction = fp.reduction_vs(reference)
    assert reduction is not None
    return f"{fp.cluster_size} ({100 * reduction:.1f}%)"


def render(result: Table3Result) -> str:
    rows = []
    for distribution, by_config in result.footprints.items():
        paper = _PAPER.get(distribution, ("?", "?"))
        rows.append(
            [
                distribution,
                "8",
                _cell(by_config["MCC"], 8),
                _cell(by_config["MCCK"], 8),
                f"(paper: MCC {paper[0]}, MCCK {paper[1]})",
            ]
        )
    return format_table(
        ["distribution", "MC", "MCC", "MCCK", "paper reference"],
        rows,
        title=(
            f"Table III: footprint (cluster size matching the 8-node MC "
            f"makespan), {result.job_count} jobs"
        ),
    )
