"""E7 — Table III: footprint reduction per resource distribution.

For each synthetic distribution: the smallest cluster whose MCC / MCCK
makespan matches the 8-node MC baseline. Paper: MCCK 5 / 5 / 3 / 6 nodes
(uniform / normal / low-skew / high-skew) vs MCC 6 / 6 / 4 / 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import ClusterConfig
from ..metrics import FootprintResult, footprint_from_curve, format_table
from ..workloads import DISTRIBUTIONS
from .common import DEFAULT_SEED, PAPER_CLUSTER
from .runner import SimTask, TaskRunner, execute, sim_task

_FOOTPRINT_CONFIGS = ("MCC", "MCCK")


@dataclass
class Table3Result:
    job_count: int
    #: footprints[distribution][configuration]
    footprints: dict[str, dict[str, FootprintResult]]
    mc_makespans: dict[str, float]


def tasks(
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = DISTRIBUTIONS,
) -> list[SimTask]:
    """Per distribution: the MC target, then full footprint sweeps."""
    grid: list[SimTask] = []
    for distribution in distributions:
        workload = ("synthetic", jobs, distribution, seed)
        grid.append(
            sim_task(
                "table3", "MC", config, workload,
                label=f"{distribution}/MC@n{config.nodes}",
            )
        )
        for c in _FOOTPRINT_CONFIGS:
            for size in range(1, config.nodes + 1):
                grid.append(
                    sim_task(
                        "table3", c, config.resized(size), workload,
                        label=f"{distribution}/{c}@n{size}",
                    )
                )
    return grid


def merge(
    values: list,
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = DISTRIBUTIONS,
) -> Table3Result:
    footprints: dict[str, dict[str, FootprintResult]] = {}
    mc_makespans: dict[str, float] = {}
    cursor = iter(values)
    for distribution in distributions:
        target = next(cursor)["makespan"]
        mc_makespans[distribution] = target
        footprints[distribution] = {}
        for c in _FOOTPRINT_CONFIGS:
            curve = {
                size: next(cursor)["makespan"]
                for size in range(1, config.nodes + 1)
            }
            footprints[distribution][c] = footprint_from_curve(target, curve)
    return Table3Result(
        job_count=jobs, footprints=footprints, mc_makespans=mc_makespans
    )


def run(
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = DISTRIBUTIONS,
    runner: Optional[TaskRunner] = None,
) -> Table3Result:
    grid = tasks(jobs=jobs, config=config, seed=seed, distributions=distributions)
    values = execute(grid, runner)
    return merge(
        values, jobs=jobs, config=config, seed=seed, distributions=distributions
    )


_PAPER = {
    "uniform": ("6 (25%)", "5 (37.5%)"),
    "normal": ("6 (25%)", "5 (37.5%)"),
    "low-skew": ("4 (50%)", "3 (62.5%)"),
    "high-skew": ("6 (25%)", "6 (25%)"),
}


def _cell(fp: FootprintResult, reference: int) -> str:
    if fp.cluster_size is None:
        return f">{reference}"
    reduction = fp.reduction_vs(reference)
    assert reduction is not None
    return f"{fp.cluster_size} ({100 * reduction:.1f}%)"


def render(result: Table3Result) -> str:
    rows = []
    for distribution, by_config in result.footprints.items():
        paper = _PAPER.get(distribution, ("?", "?"))
        rows.append(
            [
                distribution,
                "8",
                _cell(by_config["MCC"], 8),
                _cell(by_config["MCCK"], 8),
                f"(paper: MCC {paper[0]}, MCCK {paper[1]})",
            ]
        )
    return format_table(
        ["distribution", "MC", "MCC", "MCCK", "paper reference"],
        rows,
        title=(
            f"Table III: footprint (cluster size matching the 8-node MC "
            f"makespan), {result.job_count} jobs"
        ),
    )
