"""E5 — Fig. 8: makespan sensitivity to the job resource distribution.

400 synthetic jobs per distribution on the 8-node cluster, comparing MC,
MCC and MCCK. Expected shape (paper): large improvements for uniform /
normal / low-skew; compressed improvements for high-skew, where MCCK may
degrade slightly against MCC (negotiation-cycle latency) but both still
beat the exclusive baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import ClusterConfig
from ..metrics import format_table, percent_reduction
from ..workloads import DISTRIBUTIONS
from .common import DEFAULT_SEED, PAPER_CLUSTER
from .runner import SimTask, TaskRunner, execute, sim_task

_CONFIGURATIONS = ("MC", "MCC", "MCCK")


@dataclass
class Fig8Result:
    job_count: int
    #: makespans[distribution][configuration] -> seconds
    makespans: dict[str, dict[str, float]]

    def reduction(self, distribution: str, configuration: str) -> float:
        base = self.makespans[distribution]["MC"]
        return percent_reduction(base, self.makespans[distribution][configuration])


def tasks(
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = DISTRIBUTIONS,
) -> list[SimTask]:
    return [
        sim_task(
            "fig8", configuration, config,
            ("synthetic", jobs, distribution, seed),
            label=f"{distribution}/{configuration}",
        )
        for distribution in distributions
        for configuration in _CONFIGURATIONS
    ]


def merge(
    values: list,
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = DISTRIBUTIONS,
) -> Fig8Result:
    cursor = iter(values)
    makespans = {
        distribution: {c: next(cursor)["makespan"] for c in _CONFIGURATIONS}
        for distribution in distributions
    }
    return Fig8Result(job_count=jobs, makespans=makespans)


def run(
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    distributions: tuple[str, ...] = DISTRIBUTIONS,
    runner: Optional[TaskRunner] = None,
) -> Fig8Result:
    grid = tasks(jobs=jobs, config=config, seed=seed, distributions=distributions)
    values = execute(grid, runner)
    return merge(
        values, jobs=jobs, config=config, seed=seed, distributions=distributions
    )


def render(result: Fig8Result) -> str:
    rows = []
    for distribution, by_config in result.makespans.items():
        rows.append(
            [
                distribution,
                f"{by_config['MC']:.0f}",
                f"{by_config['MCC']:.0f} (-{result.reduction(distribution, 'MCC'):.0f}%)",
                f"{by_config['MCCK']:.0f} (-{result.reduction(distribution, 'MCCK'):.0f}%)",
            ]
        )
    return format_table(
        ["distribution", "MC (s)", "MCC (s)", "MCCK (s)"],
        rows,
        title=(
            f"Fig. 8: makespan by resource distribution "
            f"({result.job_count} synthetic jobs, 8 nodes)"
        ),
    )
