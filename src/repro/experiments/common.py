"""Shared infrastructure for the experiment modules.

Every experiment exposes ``run(...) -> <Result>`` and ``render(result)``;
results carry the raw numbers, ``render`` prints the paper-style rows.
``scale`` shrinks job counts for quick benchmark runs (the recorded
numbers in EXPERIMENTS.md use ``scale=1.0``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence, Tuple

from ..cluster import ClusterConfig
from ..workloads.profiles import JobProfile

#: The paper's evaluation platform: 8 nodes, 1 Phi (8 GB) per node.
PAPER_CLUSTER = ClusterConfig(nodes=8, devices_per_node=1)

#: Default RNG seed for job-set generation (reproducibility).
DEFAULT_SEED = 42


def results_dir() -> Path:
    """Where rendered tables land.

    Resolution order: the ``REPRO_RESULTS_DIR`` environment override,
    then ``benchmarks/results/`` in the repository checkout, then
    ``benchmarks/results/`` under the current working directory (for
    installed wheels, where ``parents[3]`` would point into
    site-packages).
    """
    env = os.environ.get("REPRO_RESULTS_DIR")
    if env:
        return Path(env)
    repo = Path(__file__).resolve().parents[3]
    if (repo / "pyproject.toml").exists():
        return repo / "benchmarks" / "results"
    return Path.cwd() / "benchmarks" / "results"


#: Snapshot of :func:`results_dir` at import (kept for backwards
#: compatibility; ``save_result`` re-resolves so env changes win).
RESULTS_DIR = results_dir()


def bench_scale(default: float = 1.0) -> float:
    """Job-count scale for benchmark runs.

    Benchmarks run at paper scale by default (the whole harness takes a
    few minutes sequentially — see :mod:`repro.experiments.runner` for
    the process-pool fan-out; these are the numbers recorded in
    EXPERIMENTS.md). Set ``REPRO_SCALE=0.25`` for a quick smoke pass —
    but beware that very
    low job pressure (few jobs per node) changes the regime: random
    sharing stops paying off, which is itself one of the paper's
    observations (Fig. 9 discussion).
    """
    if os.environ.get("REPRO_FULL"):
        return 1.0
    value = os.environ.get("REPRO_SCALE")
    if value:
        scale = float(value)
        if scale <= 0:
            raise ValueError("REPRO_SCALE must be positive")
        return scale
    return default


def scaled(count: int, scale: float) -> int:
    """Scale a job count, keeping at least a handful of jobs."""
    return max(8, int(round(count * scale)))


def save_result(name: str, text: str) -> Path:
    """Persist a rendered table under :func:`results_dir`."""
    directory = results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def make_workload(spec: Tuple) -> Sequence[JobProfile]:
    """Rebuild a job set from its picklable spec.

    ``("table1", count, seed)`` regenerates the real (Table-I) mix;
    ``("synthetic", count, distribution, seed)`` one of the Fig.-7
    synthetic sets. Task grids carry these specs instead of job lists so
    cells stay tiny on the wire and content-addressable in the cache —
    generation is deterministic and cheap relative to a simulation.
    """
    from ..workloads import generate_synthetic_jobs, generate_table1_jobs

    kind = spec[0]
    if kind == "table1":
        _, count, seed = spec
        return generate_table1_jobs(count, seed=seed)
    if kind == "synthetic":
        _, count, distribution, seed = spec
        return generate_synthetic_jobs(count, distribution, seed=seed)
    raise ValueError(f"unknown workload spec {spec!r}")
