"""Shared infrastructure for the experiment modules.

Every experiment exposes ``run(...) -> <Result>`` and ``render(result)``;
results carry the raw numbers, ``render`` prints the paper-style rows.
``scale`` shrinks job counts for quick benchmark runs (the recorded
numbers in EXPERIMENTS.md use ``scale=1.0``).
"""

from __future__ import annotations

import os
from pathlib import Path

from ..cluster import ClusterConfig

#: The paper's evaluation platform: 8 nodes, 1 Phi (8 GB) per node.
PAPER_CLUSTER = ClusterConfig(nodes=8, devices_per_node=1)

#: Default RNG seed for job-set generation (reproducibility).
DEFAULT_SEED = 42

#: Where benchmark runs drop their rendered tables.
RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def bench_scale(default: float = 1.0) -> float:
    """Job-count scale for benchmark runs.

    Benchmarks run at paper scale by default (the whole harness takes a
    few minutes; these are the numbers recorded in EXPERIMENTS.md). Set
    ``REPRO_SCALE=0.25`` for a quick smoke pass — but beware that very
    low job pressure (few jobs per node) changes the regime: random
    sharing stops paying off, which is itself one of the paper's
    observations (Fig. 9 discussion).
    """
    if os.environ.get("REPRO_FULL"):
        return 1.0
    value = os.environ.get("REPRO_SCALE")
    if value:
        scale = float(value)
        if scale <= 0:
            raise ValueError("REPRO_SCALE must be positive")
        return scale
    return default


def scaled(count: int, scale: float) -> int:
    """Scale a job count, keeping at least a handful of jobs."""
    return max(8, int(round(count * scale)))


def save_result(name: str, text: str) -> Path:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path
