"""X3 — extension: the oversubscription penalty curve behind §II-C.

The paper leans on COSMIC's measurements ([6]): thread oversubscription
costs up to ~800%, memory oversubscription kills processes. This
experiment regenerates those two behaviours from our device model:

* slowdown of concurrent identical offloads vs the oversubscription
  ratio (managed/affinitized vs unmanaged);
* survival rate of co-resident processes vs aggregate memory demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import format_table
from ..mpss import FREE_TRANSFERS, OffloadRuntime
from ..phi import AffinitizedContention, UnmanagedContention, XeonPhi
from ..sim import Environment
from ..workloads import HostPhase, JobProfile, OffloadPhase

DEFAULT_RATIOS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)


@dataclass
class OversubscriptionResult:
    ratios: tuple[float, ...]
    #: per-offload service-time multiplier vs running alone
    slowdowns_unmanaged: list[float]
    slowdowns_managed: list[float]
    memory_demand_mb: tuple[float, ...]
    survival_rate: list[float]


def _thread_slowdown(ratio: float, contention) -> float:
    """Two identical offloads sized so total demand = ratio x 240."""
    env = Environment()
    phi = XeonPhi(env, contention=contention)
    threads = max(4, int(round(ratio * 240 / 2 / 4)) * 4)
    ends = []

    def job(env, owner):
        phi.register_process(owner)
        yield from phi.run_offload(owner, threads, 10.0)
        ends.append(env.now)
        phi.unregister_process(owner)

    env.process(job(env, "a"))
    env.process(job(env, "b"))
    env.run()
    return max(ends) / 10.0


def _survival(total_mb: float, processes: int = 4) -> float:
    """Fraction of co-resident processes surviving a given total demand."""
    env = Environment()
    phi = XeonPhi(env)
    runtime = OffloadRuntime(env, phi, scif=FREE_TRANSFERS)
    per_process = total_mb / processes
    outcomes = []

    def job(env, i):
        profile = JobProfile(
            job_id=f"p{i}",
            app="x3",
            phases=(HostPhase(0.1 * i),
                    OffloadPhase(work=5.0, threads=40, memory_mb=per_process)),
            declared_memory_mb=max(per_process, 1.0),
            declared_threads=40,
        )
        result = yield from runtime.execute(profile)
        outcomes.append(result.completed)

    for i in range(processes):
        env.process(job(env, i))
    env.run()
    return sum(outcomes) / len(outcomes)


def run(
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
    memory_demand_mb: tuple[float, ...] = (4096, 8192, 10240, 12288, 16384),
    seed: int = 0,  # accepted for CLI uniformity; the experiment is exact
) -> OversubscriptionResult:
    return OversubscriptionResult(
        ratios=ratios,
        slowdowns_unmanaged=[
            _thread_slowdown(r, UnmanagedContention()) for r in ratios
        ],
        slowdowns_managed=[
            _thread_slowdown(r, AffinitizedContention()) for r in ratios
        ],
        memory_demand_mb=memory_demand_mb,
        survival_rate=[_survival(mb) for mb in memory_demand_mb],
    )


def render(result: OversubscriptionResult) -> str:
    thread_rows = [
        [
            f"{ratio:.1f}x",
            f"{result.slowdowns_unmanaged[i]:.2f}x",
            f"{result.slowdowns_managed[i]:.2f}x",
        ]
        for i, ratio in enumerate(result.ratios)
    ]
    threads = format_table(
        ["thread demand / 240", "unmanaged slowdown", "affinitized slowdown"],
        thread_rows,
        title="X3a: concurrent-offload slowdown vs thread oversubscription",
    )
    memory_rows = [
        [f"{mb:.0f} MB", f"{100 * result.survival_rate[i]:.0f}%"]
        for i, mb in enumerate(result.memory_demand_mb)
    ]
    memory = format_table(
        ["total resident demand (8192 MB card)", "process survival"],
        memory_rows,
        title="\nX3b: OOM-killer survival vs memory oversubscription",
    )
    return threads + "\n" + memory + (
        "\n(paper/[6] anchors: up to ~8x thread-oversubscription slowdown;"
        "\narbitrary process kills once physical memory is oversubscribed)"
    )
