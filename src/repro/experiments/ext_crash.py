"""X8 — extension: goodput under daemon crash–recovery.

The paper's pools assume the central daemons never die. Real pools
restart their schedds mid-burn: HTCondor survives because the schedd
journals its queue (``job_queue.log``) and reconciles claims against
startd leases on the way back up. This extension injects schedd /
negotiator / collector crashes at increasing rates and asks what the
sharing stacks pay for durability:

* **goodput** — jobs completed per simulated hour;
* **makespan** — queue-drain including downtime and replay;
* the recovery ledger — crashes injected, WAL records replayed, jobs
  re-adopted by claim token vs. routed through retry.

The rate-0 column runs with no faults and no fabric at all
(``faults=None, net=None``), so it reproduces the paper's baseline
tables byte-for-byte. Crash cells ride the default (quiet, reliable)
:class:`~repro.net.profile.NetProfile` — daemon downtime is modelled as
fabric endpoint downtime, so the fabric is required — with seeds derived
from the experiment seed (``derive_fault_seed`` / ``derive_net_seed``),
making the whole grid deterministic: same seed and rates, byte-identical
tables (asserted in ``tests/test_experiments_crash.py``). Both profiles
are frozen dataclasses inside the task parameters, so they participate
in the result-cache key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import ClusterConfig
from ..faults import FaultProfile, derive_fault_seed
from ..metrics import format_table
from ..net import NetProfile, derive_net_seed
from .common import DEFAULT_SEED, PAPER_CLUSTER
from .runner import SimTask, TaskRunner, execute

#: Daemon crashes per 1000 simulated seconds (0 = the paper's baseline).
#: The quick-scale queue drains in ~250 simulated seconds, so rates
#: below ~4/ks usually draw zero crashes before the pool goes idle —
#: the sweep starts where crash-restart cycles actually land mid-burn.
DEFAULT_RATES = (0.0, 5.0, 10.0, 20.0)

_CONFIGURATIONS = ("MC", "MCC", "MCCK")


@dataclass
class CrashResult:
    job_count: int
    rates: tuple[float, ...]
    #: configuration -> per-rate cell dicts (aligned with ``rates``).
    cells: dict[str, list[dict]]

    def goodput(self, configuration: str) -> list[float]:
        """Completed jobs per simulated hour, per crash rate."""
        out = []
        for cell in self.cells[configuration]:
            makespan = cell["makespan"]
            out.append(
                3600.0 * cell["completed"] / makespan if makespan > 0 else 0.0
            )
        return out


def _profile(
    rate: float, crashes: tuple[tuple[float, str], ...] = ()
) -> Optional[FaultProfile]:
    """Fault profile for one crash column; ``None`` keeps the baseline."""
    if rate <= 0 and not crashes:
        return None
    return FaultProfile(daemon_crash_rate=rate, crashes=crashes)


def tasks(
    jobs: int = 200,
    rates: tuple[float, ...] = DEFAULT_RATES,
    crashes: tuple[tuple[float, str], ...] = (),
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> list[SimTask]:
    workload = ("table1", jobs, seed)
    fault_seed = derive_fault_seed(seed)
    net_seed = derive_net_seed(seed)
    grid: list[SimTask] = []
    for rate in rates:
        faults = _profile(rate, crashes)
        for configuration in _CONFIGURATIONS:
            grid.append(
                SimTask.make(
                    "ext-crash",
                    "sim-crash",
                    label=f"{configuration}@{rate:g}/ks",
                    configuration=configuration,
                    config=config,
                    workload=workload,
                    faults=faults,
                    fault_seed=fault_seed,
                    # Crash cells need the fabric (daemon downtime is
                    # endpoint downtime); the default profile is quiet
                    # and reliable, isolating the cost of the crashes.
                    net=None if faults is None else NetProfile(),
                    net_seed=net_seed,
                )
            )
    return grid


def merge(
    values: list,
    jobs: int = 200,
    rates: tuple[float, ...] = DEFAULT_RATES,
    crashes: tuple[tuple[float, str], ...] = (),
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> CrashResult:
    cursor = iter(values)
    cells: dict[str, list[dict]] = {c: [] for c in _CONFIGURATIONS}
    for _rate in rates:
        for configuration in _CONFIGURATIONS:
            cells[configuration].append(next(cursor))
    return CrashResult(job_count=jobs, rates=rates, cells=cells)


def run(
    jobs: int = 200,
    rates: tuple[float, ...] = DEFAULT_RATES,
    crashes: tuple[tuple[float, str], ...] = (),
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    runner: Optional[TaskRunner] = None,
) -> CrashResult:
    grid = tasks(
        jobs=jobs, rates=rates, crashes=crashes, config=config, seed=seed
    )
    values = execute(grid, runner)
    return merge(
        values, jobs=jobs, rates=rates, crashes=crashes, config=config,
        seed=seed,
    )


def render(result: CrashResult) -> str:
    headers = [
        "rate/ks", "config", "goodput/h", "makespan", "completed",
        "crashes", "recoveries", "wal-replayed", "readopted", "retried",
    ]
    rows = []
    for i, rate in enumerate(result.rates):
        for configuration in _CONFIGURATIONS:
            cell = result.cells[configuration][i]
            rows.append(
                [
                    f"{rate:g}",
                    configuration,
                    f"{result.goodput(configuration)[i]:.0f}",
                    f"{cell['makespan']:.0f}",
                    cell["completed"],
                    cell["crashes"],
                    cell["recoveries"],
                    cell["wal_replayed"],
                    cell["readopted"],
                    cell["retried"],
                ]
            )
    table = format_table(
        headers,
        rows,
        title=(
            f"X8: goodput under daemon crash–recovery "
            f"({result.job_count} Table-I jobs, {PAPER_CLUSTER.nodes} nodes)"
        ),
    )
    return table + (
        "\nRate 0 runs without the recovery subsystem and reproduces the"
        "\npaper's tables exactly. Under crashes, the schedd journals its"
        "\nqueue to a write-ahead log, replays it on restart, and"
        "\nreconciles in-flight claims against startd leases: still-live"
        "\nruns are re-adopted by claim token, lost ones flow through the"
        "\nretry/backoff path. The collector rebuilds statelessly from"
        "\nforced re-advertisement; the negotiator restarts cold. No job"
        "\nis lost or completed twice (asserted by --audit)."
    )
