"""X1 — extension: device memory capacity sweep (8 GB vs 16 GB cards).

§II notes Xeon Phi cards shipped with 8-16 GB. The evaluation uses 8 GB;
this extension asks how much of the sharing gain was memory-bound: with
16 GB cards the knapsack can co-schedule roughly twice the jobs, but
sub-linear sharing efficiency and the thread budget cap the return.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..cluster import ClusterConfig
from ..metrics import format_series
from ..phi import XeonPhiSpec
from .common import DEFAULT_SEED, PAPER_CLUSTER
from .runner import SimTask, TaskRunner, execute, sim_task

DEFAULT_CAPACITIES_MB = (4096, 8192, 12288, 16384)

_CONFIGURATIONS = ("MC", "MCC", "MCCK")


@dataclass
class CapacityResult:
    job_count: int
    capacities_mb: tuple[int, ...]
    makespans: dict[str, list[float]]  # configuration -> aligned values


def tasks(
    jobs: int = 400,
    capacities_mb: tuple[int, ...] = DEFAULT_CAPACITIES_MB,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> list[SimTask]:
    workload = ("table1", jobs, seed)
    grid: list[SimTask] = []
    for capacity in capacities_mb:
        spec = XeonPhiSpec(
            cores=config.spec.cores,
            threads_per_core=config.spec.threads_per_core,
            memory_mb=capacity,
        )
        sized = replace(config, spec=spec)
        for configuration in _CONFIGURATIONS:
            grid.append(
                sim_task(
                    "ext-capacity", configuration, sized, workload,
                    label=f"{configuration}@{capacity // 1024}GB",
                )
            )
    return grid


def merge(
    values: list,
    jobs: int = 400,
    capacities_mb: tuple[int, ...] = DEFAULT_CAPACITIES_MB,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> CapacityResult:
    cursor = iter(values)
    makespans: dict[str, list[float]] = {c: [] for c in _CONFIGURATIONS}
    for _capacity in capacities_mb:
        for configuration in _CONFIGURATIONS:
            makespans[configuration].append(next(cursor)["makespan"])
    return CapacityResult(
        job_count=jobs, capacities_mb=capacities_mb, makespans=makespans
    )


def run(
    jobs: int = 400,
    capacities_mb: tuple[int, ...] = DEFAULT_CAPACITIES_MB,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    runner: Optional[TaskRunner] = None,
) -> CapacityResult:
    grid = tasks(jobs=jobs, capacities_mb=capacities_mb, config=config, seed=seed)
    values = execute(grid, runner)
    return merge(
        values, jobs=jobs, capacities_mb=capacities_mb, config=config, seed=seed
    )


def render(result: CapacityResult) -> str:
    table = format_series(
        "card memory",
        [f"{mb // 1024}GB" for mb in result.capacities_mb],
        result.makespans,
        title=(
            f"X1: makespan vs device memory capacity "
            f"({result.job_count} Table-I jobs, 8 nodes)"
        ),
    )
    return table + (
        "\nMC is capacity-insensitive (one job per card regardless); the"
        "\nsharing stacks gain with capacity until the thread budget and"
        "\nsub-linear sharing efficiency take over."
    )
