"""X1 — extension: device memory capacity sweep (8 GB vs 16 GB cards).

§II notes Xeon Phi cards shipped with 8-16 GB. The evaluation uses 8 GB;
this extension asks how much of the sharing gain was memory-bound: with
16 GB cards the knapsack can co-schedule roughly twice the jobs, but
sub-linear sharing efficiency and the thread budget cap the return.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cluster import ClusterConfig, run_mc, run_mcc, run_mcck
from ..metrics import format_series
from ..phi import XeonPhiSpec
from ..workloads import generate_table1_jobs
from .common import DEFAULT_SEED, PAPER_CLUSTER

DEFAULT_CAPACITIES_MB = (4096, 8192, 12288, 16384)


@dataclass
class CapacityResult:
    job_count: int
    capacities_mb: tuple[int, ...]
    makespans: dict[str, list[float]]  # configuration -> aligned values


def run(
    jobs: int = 400,
    capacities_mb: tuple[int, ...] = DEFAULT_CAPACITIES_MB,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> CapacityResult:
    job_set = generate_table1_jobs(jobs, seed=seed)
    makespans: dict[str, list[float]] = {"MC": [], "MCC": [], "MCCK": []}
    for capacity in capacities_mb:
        spec = XeonPhiSpec(
            cores=config.spec.cores,
            threads_per_core=config.spec.threads_per_core,
            memory_mb=capacity,
        )
        sized = replace(config, spec=spec)
        makespans["MC"].append(run_mc(job_set, sized).makespan)
        makespans["MCC"].append(run_mcc(job_set, sized).makespan)
        makespans["MCCK"].append(run_mcck(job_set, sized).makespan)
    return CapacityResult(
        job_count=jobs, capacities_mb=capacities_mb, makespans=makespans
    )


def render(result: CapacityResult) -> str:
    table = format_series(
        "card memory",
        [f"{mb // 1024}GB" for mb in result.capacities_mb],
        result.makespans,
        title=(
            f"X1: makespan vs device memory capacity "
            f"({result.job_count} Table-I jobs, 8 nodes)"
        ),
    )
    return table + (
        "\nMC is capacity-insensitive (one job per card regardless); the"
        "\nsharing stacks gain with capacity until the thread budget and"
        "\nsub-linear sharing efficiency take over."
    )
