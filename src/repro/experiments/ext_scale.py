"""X7 — extension: cluster-scale fast path (cost tracks activity, not size).

The paper's pool has 8 nodes; the ROADMAP's north star asks what the
simulator pays to model the *cluster-scale* version of the same story —
1000 nodes, most of them idle at any instant. This extension runs one
fixed workload on geometrically growing pools and reports two tables:

* **simulated** (deterministic) — makespan, completions, negotiation
  cycles, events fired. Byte-stable for a fixed seed and code version;
  the 8-node row must match a plain 8-node run exactly (asserted in
  ``tests/test_scale_invariance.py`` and the CI scale-smoke job).
* **host performance** (machine-dependent) — wall-clock, events/sec,
  ms per negotiation cycle, peak RSS. These rows are the point of the
  sweep: with delta-maintained live sets, lazily materialized nodes and
  the bucketed pending index, per-cycle cost follows the *active* node
  count, so the 1024-node column stays within a small factor of the
  64-node one (floor asserted in
  ``benchmarks/test_bench_cluster_scale.py``).

Because the host table is wall-clock, this experiment is **excluded
from** ``python -m repro.experiments all`` (whose output is asserted
byte-identical across runs) and is best run with ``--no-cache`` — a
cache hit would replay stale timings. Run it by name::

    python -m repro.experiments ext-scale --no-cache
"""

from __future__ import annotations

import resource
import time
from dataclasses import dataclass

from ..cluster import run_configuration
from ..metrics import format_table
from ..sim import profile as sim_profile
from .common import DEFAULT_SEED, PAPER_CLUSTER, make_workload

#: Pool sizes swept by default (the paper's 8 up to the north-star 1024).
DEFAULT_NODE_COUNTS = (8, 64, 256, 1024)


@dataclass
class ScaleResult:
    job_count: int
    configuration: str
    node_counts: tuple[int, ...]
    #: One dict per node count; simulated keys (makespan, completed,
    #: cycles, events) are deterministic, host keys (wall_s,
    #: events_per_s, ms_per_cycle, peak_rss_mb) are machine-dependent.
    rows: list[dict]


def _peak_rss_mb() -> float:
    """Process-lifetime peak RSS in MB (monotone across the sweep)."""
    kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return kb / 1024.0


def run(
    jobs: int = 64,
    node_counts: tuple[int, ...] = DEFAULT_NODE_COUNTS,
    configuration: str = "MCCK",
    seed: int = DEFAULT_SEED,
) -> ScaleResult:
    job_set = make_workload(("table1", jobs, seed))
    rows: list[dict] = []
    for nodes in node_counts:
        config = PAPER_CLUSTER.resized(nodes)
        # A private profiler per pool size supplies the event and cycle
        # counts; the previously active one (e.g. the CLI's --profile)
        # is restored afterwards.
        previous = sim_profile.ACTIVE
        prof = sim_profile.SimProfiler()
        sim_profile.ACTIVE = prof
        try:
            prof.start()
            started = time.perf_counter()
            result = run_configuration(configuration, job_set, config)
            wall = time.perf_counter() - started
            prof.stop()
        finally:
            sim_profile.ACTIVE = previous
        cycles = prof.negotiation_cycles
        rows.append(
            {
                "nodes": nodes,
                "makespan": result.makespan,
                "completed": result.completed_jobs,
                "cycles": cycles,
                "events": prof.total_fired,
                "wall_s": wall,
                "events_per_s": prof.total_fired / wall if wall > 0 else 0.0,
                "ms_per_cycle": 1e3 * wall / cycles if cycles else 0.0,
                "peak_rss_mb": _peak_rss_mb(),
            }
        )
    return ScaleResult(
        job_count=jobs,
        configuration=configuration,
        node_counts=tuple(node_counts),
        rows=rows,
    )


def render_deterministic(result: ScaleResult) -> str:
    """The simulated table only — byte-stable, used by the CI smoke."""
    rows = [
        [
            row["nodes"],
            result.job_count,
            f"{row['makespan']:.1f}",
            row["completed"],
            row["cycles"],
            f"{row['events']:,}",
        ]
        for row in result.rows
    ]
    return format_table(
        ["nodes", "jobs", "makespan", "completed", "cycles", "events"],
        rows,
        title=(
            f"X7: {result.configuration} simulated outcomes vs pool size "
            f"({result.job_count} Table-I jobs)"
        ),
    )


def render(result: ScaleResult) -> str:
    host_rows = [
        [
            row["nodes"],
            f"{row['wall_s']:.2f}",
            f"{row['events_per_s']:,.0f}",
            f"{row['ms_per_cycle']:.2f}",
            f"{row['peak_rss_mb']:.0f}",
        ]
        for row in result.rows
    ]
    host = format_table(
        ["nodes", "wall s", "events/s", "ms/cycle", "peak RSS MB"],
        host_rows,
        title="X7: host performance (machine-dependent; RSS is process peak)",
    )
    return (
        render_deterministic(result)
        + "\n\n"
        + host
        + (
            "\nThe simulated table is deterministic; the host table is not"
            "\n(and keeps ext-scale out of `all`). Idle nodes schedule no"
            "\nevents and materialize no device stack, so events and cycle"
            "\ncost follow the active-node count, not the pool size."
        )
    )
