"""A1 — ablation: the knapsack value function (Eq. 1 vs alternatives).

The paper sets v_i = 1 - (t_i/240)^2 so low-thread jobs pack together.
This ablation swaps that for the registered alternatives (linear penalty,
count-first, thread-blind constant, and Eq. 1 with the positive floor)
and measures MCCK makespan on the real mix and a normal synthetic set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import ClusterConfig, run_mcck
from ..core import DevicePacker, get_value_function, value_function_names
from ..metrics import format_table
from .common import DEFAULT_SEED, PAPER_CLUSTER, make_workload
from .runner import SimTask, TaskRunner, execute

_WORKLOADS = ("table1", "normal")


def _workload_spec(workload: str, jobs: int, seed: int) -> tuple:
    if workload == "table1":
        return ("table1", jobs, seed)
    return ("synthetic", jobs, workload, seed)


@dataclass
class ValueAblationResult:
    job_count: int
    #: makespans[value_fn_name][workload] -> seconds
    makespans: dict[str, dict[str, float]]


def tasks(
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    thread_capacity: int | None = 240,
) -> list[SimTask]:
    return [
        SimTask.make(
            "ablation-value", "ablation-value.cell",
            label=f"{name}/{workload}",
            value_fn=name,
            thread_capacity=thread_capacity,
            config=config,
            workload=_workload_spec(workload, jobs, seed),
        )
        for name in value_function_names()
        for workload in _WORKLOADS
    ]


def compute(task: SimTask) -> float:
    p = task.kwargs()
    packer = DevicePacker(
        value_fn=get_value_function(p["value_fn"]),
        thread_capacity=p["thread_capacity"],
    )
    job_set = make_workload(p["workload"])
    return run_mcck(job_set, p["config"], packer=packer).makespan


def merge(
    values: list,
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    thread_capacity: int | None = 240,
) -> ValueAblationResult:
    cursor = iter(values)
    makespans = {
        name: {workload: next(cursor) for workload in _WORKLOADS}
        for name in value_function_names()
    }
    return ValueAblationResult(job_count=jobs, makespans=makespans)


def run(
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    thread_capacity: int | None = 240,
    runner: Optional[TaskRunner] = None,
) -> ValueAblationResult:
    grid = tasks(
        jobs=jobs, config=config, seed=seed, thread_capacity=thread_capacity
    )
    values = execute(grid, runner)
    return merge(
        values, jobs=jobs, config=config, seed=seed,
        thread_capacity=thread_capacity,
    )


def render(result: ValueAblationResult) -> str:
    rows = [
        [name, f"{by_wl['table1']:.0f}", f"{by_wl['normal']:.0f}"]
        for name, by_wl in result.makespans.items()
    ]
    return format_table(
        ["value function", "Table-I mix (s)", "normal synthetic (s)"],
        rows,
        title=(
            f"A1: MCCK makespan by knapsack value function "
            f"({result.job_count} jobs, 8 nodes)"
        ),
    )
