"""A1 — ablation: the knapsack value function (Eq. 1 vs alternatives).

The paper sets v_i = 1 - (t_i/240)^2 so low-thread jobs pack together.
This ablation swaps that for the registered alternatives (linear penalty,
count-first, thread-blind constant, and Eq. 1 with the positive floor)
and measures MCCK makespan on the real mix and a normal synthetic set.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import ClusterConfig, run_mcck
from ..core import DevicePacker, get_value_function, value_function_names
from ..metrics import format_table
from ..workloads import generate_synthetic_jobs, generate_table1_jobs
from .common import DEFAULT_SEED, PAPER_CLUSTER


@dataclass
class ValueAblationResult:
    job_count: int
    #: makespans[value_fn_name][workload] -> seconds
    makespans: dict[str, dict[str, float]]


def run(
    jobs: int = 400,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    thread_capacity: int | None = 240,
) -> ValueAblationResult:
    workloads = {
        "table1": generate_table1_jobs(jobs, seed=seed),
        "normal": generate_synthetic_jobs(jobs, "normal", seed=seed),
    }
    makespans: dict[str, dict[str, float]] = {}
    for name in value_function_names():
        packer = DevicePacker(
            value_fn=get_value_function(name), thread_capacity=thread_capacity
        )
        makespans[name] = {
            workload: run_mcck(job_set, config, packer=packer).makespan
            for workload, job_set in workloads.items()
        }
    return ValueAblationResult(job_count=jobs, makespans=makespans)


def render(result: ValueAblationResult) -> str:
    rows = [
        [name, f"{by_wl['table1']:.0f}", f"{by_wl['normal']:.0f}"]
        for name, by_wl in result.makespans.items()
    ]
    return format_table(
        ["value function", "Table-I mix (s)", "normal synthetic (s)"],
        rows,
        title=(
            f"A1: MCCK makespan by knapsack value function "
            f"({result.job_count} jobs, 8 nodes)"
        ),
    )
